//! Out-of-core execution: a graph larger than GPU memory (paper §3.1).
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```
//!
//! Runs the same workload on a device with plenty of memory and on one too
//! small to hold the graph, showing the hybrid engine streaming adjacency
//! over the (modeled) PCIe link with identical results — plus the
//! multi-GPU engine splitting the same work across two devices (§5.4).

use glp_suite::core::engine::{HybridEngine, MultiGpuEngine};
use glp_suite::core::{ClassicLp, Engine, LpProgram, RunOptions};
use glp_suite::gpusim::{Device, DeviceConfig};
use glp_suite::graph::gen::{community_powerlaw, CommunityPowerLawConfig};

fn main() {
    let graph = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: 60_000,
        avg_degree: 20.0,
        ..Default::default()
    });
    let graph_mb = graph.size_bytes() as f64 / 1e6;
    println!(
        "graph: {} vertices, {} edges, {:.1} MB CSR",
        graph.num_vertices(),
        graph.num_edges(),
        graph_mb
    );

    // 1. Roomy device: everything resident.
    let opts = RunOptions::default();
    let mut roomy = HybridEngine::new(Device::titan_v());
    let mut p1 = ClassicLp::new(graph.num_vertices());
    let r1 = roomy.run(&graph, &mut p1, &opts).expect("healthy device");
    println!(
        "\nroomy device   : in-core, {:.3} ms modeled, transfer share {:.1}%",
        r1.modeled_seconds * 1e3,
        100.0 * r1.transfer_fraction()
    );

    // 2. Tiny device: one quarter of the graph fits; the rest streams.
    let tiny_cfg = DeviceConfig::tiny(graph.size_bytes() / 4);
    let mut tiny = HybridEngine::new(Device::new(tiny_cfg));
    println!(
        "tiny device    : {:.1} MB memory, dense plan would need {} chunks",
        (graph.size_bytes() / 4) as f64 / 1e6,
        tiny.plan_chunks(&graph)
    );
    let mut p2 = ClassicLp::new(graph.num_vertices());
    let r2 = tiny.run(&graph, &mut p2, &opts).expect("healthy device");
    println!(
        "                 streamed, {:.3} ms modeled, transfer share {:.1}%",
        r2.modeled_seconds * 1e3,
        100.0 * r2.transfer_fraction()
    );
    assert_eq!(p1.labels(), p2.labels(), "identical results either way");
    println!("                 labels identical to the in-core run ✓");

    // 3. Two GPUs.
    let mut multi = MultiGpuEngine::titan_v(2);
    let mut p3 = ClassicLp::new(graph.num_vertices());
    let r3 = multi.run(&graph, &mut p3, &opts).expect("healthy device");
    assert_eq!(p1.labels(), p3.labels());
    println!(
        "two GPUs       : {:.3} ms modeled ({:.2}x vs one roomy GPU)",
        r3.modeled_seconds * 1e3,
        r1.modeled_seconds / r3.modeled_seconds
    );
}
