//! LLP as a compression preprocessor (the Figure 5 workload's real job).
//!
//! ```text
//! cargo run --release --example compression_ordering
//! ```
//!
//! Boldi et al.'s layered LP — the LLP the paper benchmarks in Figure 5 —
//! exists to reorder vertices so gap-encoded adjacency compresses well.
//! This example runs the γ sweep on a social-style graph and compares the
//! bits-per-edge a gap encoder would pay under three orderings.

use glp_suite::core::ordering::{avg_log_gap, llp_ordering};
use glp_suite::graph::gen::{community_powerlaw, CommunityPowerLawConfig};
use glp_suite::graph::VertexId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let graph = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: 30_000,
        avg_degree: 12.0,
        num_communities: 200,
        mixing: 0.06,
        seed: 11,
        ..Default::default()
    });
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let identity: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let mut random = identity.clone();
    random.shuffle(&mut StdRng::seed_from_u64(5));
    let llp = llp_ordering(&graph, &[0.25, 1.0, 4.0, 16.0], 15);

    println!("\ngap-encoding cost (mean log2 gap per edge — lower compresses better):");
    for (name, order) in [
        ("random order", &random),
        ("generator order", &identity),
        ("LLP ordering", &llp),
    ] {
        println!("  {name:<16} {:.2} bits/edge", avg_log_gap(&graph, order));
    }
    println!("\n(the γ sweep is exactly what Figure 5 benchmarks the engines on)");
}
