//! Live fraud scoring: the always-on service end to end.
//!
//! ```text
//! cargo run --release --example live_scoring
//! ```
//!
//! Starts the `glp-serve` scoring service (batcher + recluster threads),
//! replays a transaction stream through its bounded ingest queue, and
//! queries verdicts *while the service is still ingesting and
//! reclustering* — the serving-path counterpart of the offline
//! `fraud_pipeline` example. Finishes by printing the telemetry block:
//! ingest lag, batch sizes, recluster wall time, query latency
//! percentiles, and shed counts.

use glp_suite::fraud::{TxConfig, TxStream};
use glp_suite::serve::{FraudScorer, FraudService, ServeConfig, Verdict};
use std::time::Duration;

fn main() {
    // 1. A transaction stream with injected wash-trading rings; a slice
    //    of each ring is already black-listed (the LP seeds).
    let stream = TxStream::generate(&TxConfig {
        num_users: 5_000,
        num_items: 2_000,
        days: 30,
        tx_per_day: 3_000,
        num_rings: 6,
        ring_size: 15,
        ring_tx_per_day: 40,
        blacklist_fraction: 0.25,
        ..Default::default()
    });
    println!(
        "stream: {} transactions over {} days, {} ring accounts, {} seeds",
        stream.transactions.len(),
        stream.config.days,
        stream.fraudulent_users().len(),
        stream.blacklist.len()
    );

    // 2. Start the service: 10-day window, micro-batches of up to 256
    //    transactions or 2 ms, recluster every 8 batches.
    let cfg = ServeConfig {
        max_batch: 256,
        batch_budget: Duration::from_millis(2),
        recluster_every_batches: 8,
        ..ServeConfig::default()
    }
    .with_window_days(10);
    let service = FraudService::start(cfg, stream.blacklist.clone());
    let handle = service.handle();

    // 3. Replay the stream through the ingest gate, peeking at verdicts
    //    mid-flight: scoring runs concurrently with ingestion.
    let probe: u32 = stream.fraudulent_users()[0];
    for (i, t) in stream.window(0, stream.config.days).enumerate() {
        service
            .submit(*t)
            .expect("service accepts while running (or sheds, counted)");
        if i % 20_000 == 19_999 {
            let snap = handle.snapshot();
            println!(
                "  after {:>6} tx: window end day {:>2}, {} users known, {} flagged, ring probe {:?}",
                i + 1,
                snap.window_end,
                snap.known_users.len(),
                snap.num_flagged(),
                handle.score(probe)
            );
        }
    }

    // 4. Shut down: drains the queue, runs a final recluster, joins.
    let report = service.shutdown();
    assert!(report.clean(), "no faults expected in this example");
    let core = report.core;
    let snap = core.snapshot();
    println!(
        "\nfinal snapshot: window [{}..{}), {} users, {} flagged",
        snap.window_end.saturating_sub(10),
        snap.window_end,
        snap.known_users.len(),
        snap.num_flagged()
    );

    // 5. How did the service do against the ground truth?
    let ring: Vec<u32> = stream
        .fraudulent_users()
        .iter()
        .copied()
        .filter(|&u| snap.known_users.binary_search(&u).is_ok())
        .collect();
    let caught = ring
        .iter()
        .filter(|&&u| matches!(snap.verdict(u), Verdict::Flagged { .. }))
        .count();
    println!(
        "ring members in window: {}, flagged: {} ({:.0}%)",
        ring.len(),
        caught,
        100.0 * caught as f64 / ring.len().max(1) as f64
    );

    // 6. The telemetry block the service would export to a dashboard.
    println!(
        "\ntelemetry:\n{}",
        serde_json::to_string_pretty(&core.telemetry().to_json()).expect("serializable")
    );
}
