//! Writing a custom LP variant with the Table 1 APIs.
//!
//! ```text
//! cargo run --release --example custom_variant
//! ```
//!
//! The paper's pitch is programmability: data engineers deploy new LP
//! strategies against evolving fraud patterns without touching GPU code.
//! This example implements **hop-capped LP** — a containment variant where
//! a vertex may adopt a label only within `max_hops` propagation rounds of
//! its source seed, keeping clusters tight — purely through the
//! `LpProgram` trait. The engine's kernels (warp packing, CMS+HT, the
//! dispatch machinery) are reused untouched.

use glp_suite::core::api::{LpProgram, NeighborContribution};
use glp_suite::core::engine::GpuEngine;
use glp_suite::core::{Engine, RunOptions};
use glp_suite::graph::gen::caveman;
use glp_suite::graph::{EdgeId, Label, VertexId, INVALID_LABEL};

/// Hop-capped seeded propagation: labels carry a hop budget; a vertex
/// adopting a label at distance `d` from its seed re-broadcasts it only
/// while `d < max_hops`.
struct HopCappedLp {
    labels: Vec<Label>,
    hops: Vec<u32>,
    max_hops: u32,
    max_iterations: u32,
    /// Hop distance assigned to vertices labeled this round: the BSP
    /// schedule guarantees a vertex first adopts a label at hop
    /// `iteration + 1`.
    current_hop: u32,
}

impl HopCappedLp {
    fn new(num_vertices: usize, seeds: &[VertexId], max_hops: u32) -> Self {
        let mut labels = vec![INVALID_LABEL; num_vertices];
        let mut hops = vec![u32::MAX; num_vertices];
        for &s in seeds {
            labels[s as usize] = s;
            hops[s as usize] = 0;
        }
        Self {
            labels,
            hops,
            max_hops,
            max_iterations: 20,
            current_hop: 1,
        }
    }
}

impl LpProgram for HopCappedLp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    // PickLabel: speak only while the hop budget lasts.
    fn pick_label(&self, v: VertexId) -> Label {
        if self.hops[v as usize] < self.max_hops {
            self.labels[v as usize]
        } else {
            INVALID_LABEL
        }
    }

    // LoadNeighbor: silent vertices contribute nothing.
    fn load_neighbor(
        &self,
        _v: VertexId,
        _u: VertexId,
        _edge: EdgeId,
        label: Label,
    ) -> NeighborContribution {
        let weight = if label == INVALID_LABEL { 0.0 } else { 1.0 };
        NeighborContribution { label, weight }
    }

    // LabelScore: plain frequency; the invalid label can never win.
    fn label_score(&self, _v: VertexId, l: Label, freq: f64) -> f64 {
        if l == INVALID_LABEL {
            f64::MIN
        } else {
            freq
        }
    }

    // UpdateVertex: adopt and extend the hop distance.
    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, score)) if l != INVALID_LABEL && score > 0.0 => {
                let vi = v as usize;
                if self.labels[vi] == INVALID_LABEL {
                    self.labels[vi] = l;
                    self.hops[vi] = self.current_hop;
                    true
                } else {
                    false // containment: never relabel
                }
            }
            _ => false,
        }
    }

    fn begin_iteration(&mut self, iteration: u32) {
        self.current_hop = iteration + 1;
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    fn sparse_activation(&self) -> bool {
        true
    }
}

fn main() {
    // A ring of 12 caves; seed one vertex in cave 0 and one in cave 6.
    let graph = caveman(12, 10);
    let seeds = [0u32, 60];

    for max_hops in [1, 2, 4] {
        let mut prog = HopCappedLp::new(graph.num_vertices(), &seeds, max_hops);
        let report = GpuEngine::titan_v()
            .run(&graph, &mut prog, &RunOptions::default())
            .expect("healthy device");
        let labeled = prog
            .labels()
            .iter()
            .filter(|&&l| l != INVALID_LABEL)
            .count();
        println!(
            "max_hops {max_hops}: {labeled}/{} vertices captured in {} iterations ({:.1} µs modeled)",
            graph.num_vertices(),
            report.iterations,
            report.modeled_seconds * 1e6
        );
    }
    println!("\nsame kernels, different strategy — no GPU code touched.");
}
