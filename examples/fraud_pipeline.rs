//! The TaoBao-style fraud-detection pipeline end to end (paper Figure 1).
//!
//! ```text
//! cargo run --release --example fraud_pipeline
//! ```
//!
//! Generates an e-commerce transaction stream with injected wash-trading
//! rings, runs the pipeline (window graph → LP clustering → cluster
//! scoring) twice — once with the simulated in-house distributed LP and
//! once with GLP — and shows both the detection quality and how the LP
//! stage's share of the pipeline collapses (the paper's whole motivation:
//! LP was 75% of pipeline time).

use glp_suite::core::engine::GpuEngine;
use glp_suite::core::RunOptions;
use glp_suite::fraud::{FraudPipeline, InHouseLp, PipelineConfig, TxConfig, TxStream};

fn main() {
    // 1. Thirty days of transactions: 10k users, 8 fraud rings of 20
    //    accounts each hammering their target items; 20% of each ring is
    //    already black-listed.
    let stream = TxStream::generate(&TxConfig {
        num_users: 10_000,
        num_items: 4_000,
        days: 40,
        tx_per_day: 5_000,
        skew: 0.7,
        num_rings: 8,
        ring_size: 20,
        ring_tx_per_day: 50,
        blacklist_fraction: 0.2,
        seed: 99,
    });
    println!(
        "stream: {} transactions, {} ring accounts, {} black-listed seeds",
        stream.transactions.len(),
        stream.fraudulent_users().len(),
        stream.blacklist.len()
    );

    let pipe = FraudPipeline::new(PipelineConfig {
        window_days: 30,
        ..Default::default()
    });

    // 2. The pipeline with the legacy in-house distributed LP.
    let legacy = pipe
        .run(
            &stream,
            &mut InHouseLp::taobao_scaled(1_000.0),
            &RunOptions::default(),
        )
        .expect("healthy device");
    // 3. The same pipeline with GLP.
    let glp = pipe
        .run(&stream, &mut GpuEngine::titan_v(), &RunOptions::default())
        .expect("healthy device");

    println!(
        "\nwindow graph: {} vertices, {} edges, {} seeds present",
        glp.graph_vertices, glp.graph_edges, glp.num_seeds
    );
    println!(
        "\ndetection quality (identical for both LP engines):\n  {} clusters flagged, precision {:.0}%, recall {:.0}%",
        glp.flagged.len(),
        100.0 * glp.precision,
        100.0 * glp.recall
    );
    for c in glp.flagged.iter().take(3) {
        println!(
            "  e.g. cluster {}: {} accounts + {} items, score {:.2}",
            c.label,
            c.users.len(),
            c.items.len(),
            c.score
        );
    }

    println!("\npipeline stage breakdown (modeled):");
    for (name, r) in [("in-house LP", &legacy), ("GLP", &glp)] {
        let s = r.stages;
        println!(
            "  {name:<12} build {:.2} ms | LP {:.2} ms | score {:.2} ms | LP share {:.0}%",
            s.construction * 1e3,
            s.lp * 1e3,
            s.scoring * 1e3,
            100.0 * s.lp_fraction()
        );
    }
    println!(
        "\nswapping in GLP cuts the LP stage {:.1}x (the paper reports 8.2x at production scale)",
        legacy.stages.lp / glp.stages.lp
    );
}
