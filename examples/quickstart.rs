//! Quickstart: run classic label propagation on the GLP engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic social graph with planted communities, runs classic
//! LP on the modeled GPU, and prints what the engine found and what it
//! cost — the five-minute tour of the whole workspace.

use glp_suite::core::community::{community_sizes, intra_edge_fraction, num_communities};
use glp_suite::core::engine::GpuEngine;
use glp_suite::core::{ClassicLp, Engine, LpProgram, RunOptions};
use glp_suite::graph::gen::{community_powerlaw, CommunityPowerLawConfig};

fn main() {
    // 1. A 20k-vertex power-law graph with 150 planted communities.
    let graph = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: 20_000,
        avg_degree: 12.0,
        gamma: 2.3,
        num_communities: 150,
        mixing: 0.05,
        seed: 7,
    });
    println!(
        "graph: {} vertices, {} directed edges, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // 2. Classic LP (every vertex starts unique, adopts the most frequent
    //    neighbor label) on a modeled Titan V.
    let mut engine = GpuEngine::titan_v();
    let mut program = ClassicLp::new(graph.num_vertices());
    let report = engine
        .run(&graph, &mut program, &RunOptions::default())
        .expect("healthy device");

    // 3. What it found.
    let labels = program.labels();
    let sizes = community_sizes(labels);
    println!(
        "\nfound {} communities after {} iterations",
        num_communities(labels),
        report.iterations
    );
    println!("largest five: {:?}", &sizes[..sizes.len().min(5)]);
    println!(
        "fraction of edges inside a community: {:.1}%",
        100.0 * intra_edge_fraction(&graph, labels)
    );

    // 4. What it cost (modeled GPU time from the cost model).
    println!("\nmodeled GPU time: {:.3} ms", report.modeled_seconds * 1e3);
    println!(
        "global memory moved: {:.1} MB in {} kernel launches",
        report.gpu_counters.global_bytes() as f64 / 1e6,
        report.gpu_counters.kernel_launches
    );
    println!(
        "high-degree CMS+HT fallback rate: {:.3}% (Theorem 1 bounds this)",
        100.0 * report.fallback_rate()
    );
}
