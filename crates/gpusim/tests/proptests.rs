//! Property-based invariants of the GPU model: coalescing bounds, warp
//! intrinsic algebra, cost-model monotonicity.

use glp_gpusim::warp::{ballot_sync, match_any_sync, popc, warp_reduce_max, WARP_SIZE};
use glp_gpusim::{CostModel, DeviceConfig, KernelCounters, KernelCtx};
use proptest::prelude::*;

proptest! {
    /// A warp access of n addresses coalesces to between 1 and n sectors.
    #[test]
    fn coalescing_bounds(addrs in prop::collection::vec(0u64..1_000_000, 1..32)) {
        let cfg = DeviceConfig::titan_v();
        let mut ctx = KernelCtx::new(&cfg);
        ctx.global_read(&addrs);
        let sectors = ctx.counters.global_read_sectors;
        prop_assert!(sectors >= 1);
        prop_assert!(sectors <= addrs.len() as u64);
    }

    /// Sequential reads touch exactly the covered sector range.
    #[test]
    fn seq_read_sector_count(base in 0u64..10_000, count in 1u64..10_000) {
        let cfg = DeviceConfig::titan_v();
        let mut ctx = KernelCtx::new(&cfg);
        ctx.global_read_seq(base, count, 4);
        let first = base / 32;
        let last = (base + count * 4 - 1) / 32;
        prop_assert_eq!(ctx.counters.global_read_sectors, last - first + 1);
    }

    /// match_any partitions the active lanes: every active lane is in
    /// exactly its own mask, masks of equal values are identical, masks of
    /// different values are disjoint.
    #[test]
    fn match_any_partitions(vals in prop::collection::vec(0u64..5, 32), active_bits in any::<u32>()) {
        let mut arr = [0u64; WARP_SIZE];
        arr.copy_from_slice(&vals);
        let masks = match_any_sync(active_bits, &arr);
        let mut union = 0u32;
        for lane in 0..WARP_SIZE {
            if (active_bits >> lane) & 1 == 0 {
                prop_assert_eq!(masks[lane], 0);
                continue;
            }
            prop_assert!(masks[lane] & (1 << lane) != 0, "lane not in own mask");
            union |= masks[lane];
            for peer in 0..WARP_SIZE {
                if (active_bits >> peer) & 1 == 1 {
                    let same = arr[peer] == arr[lane];
                    prop_assert_eq!(
                        (masks[lane] >> peer) & 1 == 1,
                        same,
                        "lane {} peer {}",
                        lane,
                        peer
                    );
                }
            }
        }
        prop_assert_eq!(union, active_bits);
    }

    /// Ballot's popcount equals the number of active-and-true lanes.
    #[test]
    fn ballot_popc_counts(preds in prop::collection::vec(any::<bool>(), 32), active in any::<u32>()) {
        let mut arr = [false; WARP_SIZE];
        arr.copy_from_slice(&preds);
        let mask = ballot_sync(active, &arr);
        let expect = (0..32)
            .filter(|&i| arr[i] && (active >> i) & 1 == 1)
            .count() as u32;
        prop_assert_eq!(popc(mask), expect);
        prop_assert_eq!(mask & !active, 0, "ballot leaked inactive lanes");
    }

    /// warp_reduce_max returns the true maximum over active lanes.
    #[test]
    fn reduce_max_is_max(keys in prop::collection::vec(-100.0f64..100.0, 32), active in 1u32..) {
        let mut arr = [0.0f64; WARP_SIZE];
        arr.copy_from_slice(&keys);
        let got = warp_reduce_max(active, &arr);
        let expect = (0..32)
            .filter(|&i| (active >> i) & 1 == 1)
            .map(|i| arr[i])
            .fold(f64::MIN, f64::max);
        prop_assert_eq!(got.unwrap().0, expect);
    }

    /// More counted events never make a kernel cheaper (cost monotonicity).
    #[test]
    fn cost_model_monotone(
        a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000,
        da in 0u64..10_000, db in 0u64..10_000, dc in 0u64..10_000,
    ) {
        let cfg = DeviceConfig::titan_v();
        let m = CostModel::default();
        let base = KernelCounters {
            global_read_sectors: a,
            alu_instructions: b,
            shared_atomics: c,
            ..Default::default()
        };
        let more = KernelCounters {
            global_read_sectors: a + da,
            alu_instructions: b + db,
            shared_atomics: c + dc,
            ..Default::default()
        };
        prop_assert!(m.kernel_seconds(&cfg, &more) >= m.kernel_seconds(&cfg, &base));
    }
}
