//! Profiler-style reporting: aggregate a device's kernel log into the
//! per-kernel table an `nvprof`/`nsys` run would show — the tool one uses
//! to see *where* an LP iteration's modeled time goes (gather vs count vs
//! update, §5.3's discussion).

use crate::counters::KernelCounters;
use crate::device::Device;
use std::collections::HashMap;
use std::fmt;

/// Aggregated statistics for one kernel name.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Number of launches.
    pub launches: u64,
    /// Total modeled seconds.
    pub seconds: f64,
    /// Summed event counts.
    pub counters: KernelCounters,
}

impl KernelProfile {
    /// Average modeled time per launch.
    pub fn seconds_per_launch(&self) -> f64 {
        self.seconds / (self.launches.max(1) as f64)
    }
}

/// A whole device's profile: per-kernel aggregates, sorted by total time.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Per-kernel rows, descending by time.
    pub kernels: Vec<KernelProfile>,
    /// Total modeled kernel seconds (excludes transfers).
    pub kernel_seconds: f64,
    /// Modeled transfer seconds.
    pub transfer_seconds: f64,
}

impl DeviceProfile {
    /// Builds the profile from a device's kernel log.
    pub fn of(device: &Device) -> Self {
        let mut by_name: HashMap<&'static str, KernelProfile> = HashMap::new();
        let mut kernel_seconds = 0.0;
        for rec in device.kernel_log() {
            let e = by_name.entry(rec.name).or_insert_with(|| KernelProfile {
                name: rec.name.to_string(),
                ..Default::default()
            });
            e.launches += 1;
            e.seconds += rec.seconds;
            e.counters.merge(&rec.counters);
            kernel_seconds += rec.seconds;
        }
        let mut kernels: Vec<KernelProfile> = by_name.into_values().collect();
        // total_cmp: a NaN in a cost model (e.g. a corrupted calibration
        // constant) must not panic the profiler that would diagnose it.
        kernels.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
        Self {
            kernels,
            kernel_seconds,
            transfer_seconds: device.transfer_seconds(),
        }
    }

    /// The aggregate row for kernel `name`, if it was ever launched.
    pub fn kernel(&self, name: &str) -> Option<&KernelProfile> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Share of kernel time spent in `name` (0 when never launched).
    pub fn time_share(&self, name: &str) -> f64 {
        if self.kernel_seconds == 0.0 {
            return 0.0;
        }
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .map_or(0.0, |k| k.seconds / self.kernel_seconds)
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>9} {:>12} {:>8} {:>12} {:>12} {:>6}",
            "kernel", "launches", "time", "share", "GB moved", "warps", "util"
        )?;
        for k in &self.kernels {
            let util = k.counters.warp_utilization();
            writeln!(
                f,
                "{:<22} {:>9} {:>9.3} ms {:>7.1}% {:>12.4} {:>12} {:>5.0}%",
                k.name,
                k.launches,
                k.seconds * 1e3,
                100.0 * k.seconds / self.kernel_seconds.max(f64::MIN_POSITIVE),
                k.counters.global_bytes() as f64 / 1e9,
                k.counters.warps_launched,
                100.0 * util,
            )?;
        }
        writeln!(
            f,
            "kernels {:.3} ms + transfers {:.3} ms",
            self.kernel_seconds * 1e3,
            self.transfer_seconds * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_device() -> Device {
        let mut d = Device::titan_v();
        d.launch("gather", |ctx| {
            ctx.global_read_seq(0, 1 << 20, 4);
            ctx.warps_launched(100);
        })
        .unwrap();
        d.launch("gather", |ctx| {
            ctx.global_read_seq(0, 1 << 20, 4);
            ctx.warps_launched(100);
        })
        .unwrap();
        d.launch("update", |ctx| {
            ctx.alu(1000);
        })
        .unwrap();
        d.upload(1 << 20).unwrap();
        d
    }

    #[test]
    fn aggregates_by_name() {
        let d = sample_device();
        let p = DeviceProfile::of(&d);
        assert_eq!(p.kernels.len(), 2);
        // Graceful lookup: a kernel that never launched is None, not a
        // panic deep in a diagnostics path.
        assert!(p.kernel("never_launched").is_none());
        let Some(gather) = p.kernel("gather") else {
            panic!("gather was launched twice");
        };
        assert_eq!(gather.launches, 2);
        assert_eq!(gather.counters.warps_launched, 200);
        assert!(gather.seconds_per_launch() > 0.0);
    }

    #[test]
    fn sorted_by_time_and_shares_sum() {
        let d = sample_device();
        let p = DeviceProfile::of(&d);
        assert!(p.kernels[0].seconds >= p.kernels[1].seconds);
        let total: f64 = p.kernels.iter().map(|k| p.time_share(&k.name)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(p.time_share("nonexistent"), 0.0);
    }

    #[test]
    fn display_renders_every_kernel() {
        let d = sample_device();
        let text = DeviceProfile::of(&d).to_string();
        assert!(text.contains("gather"));
        assert!(text.contains("update"));
        assert!(text.contains("transfers"));
    }

    #[test]
    fn transfer_time_captured() {
        let d = sample_device();
        let p = DeviceProfile::of(&d);
        assert!(p.transfer_seconds > 0.0);
    }
}
