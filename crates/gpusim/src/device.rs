//! One simulated GPU: kernel launches, transfers, and the modeled clock.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::counters::KernelCounters;
use crate::error::DeviceError;
use crate::kernel::KernelCtx;
use glp_trace::{Category, Clock, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

/// Process-unique device ids, so fault plans and error reports can name a
/// specific card even when tests construct devices concurrently.
static NEXT_DEVICE_ID: AtomicU32 = AtomicU32::new(0);

/// A simulated GPU accumulating modeled time and event totals.
///
/// Every launch and upload is fallible: faults injected through
/// [`faults`](crate::faults) (feature `fault-injection`), a natural
/// device-memory overflow, a panicking kernel shard, or a device already
/// marked lost all surface as [`DeviceError`]s instead of panics, so the
/// engine layer above can retry, resume, or degrade.
///
/// ```
/// use glp_gpusim::Device;
/// let mut device = Device::titan_v();
/// let sum = device
///     .launch("reduce", |ctx| {
///         ctx.global_read_seq(0, 1 << 20, 4); // stream 4 MiB
///         ctx.alu(1 << 15);
///         42u64
///     })
///     .expect("healthy device");
/// assert_eq!(sum, 42);
/// assert!(device.elapsed_seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    id: u32,
    cfg: DeviceConfig,
    cost: CostModel,
    totals: KernelCounters,
    elapsed_s: f64,
    transfer_s: f64,
    resident_bytes: u64,
    lost: bool,
    kernel_log: Vec<KernelRecord>,
    tracer: Option<Tracer>,
}

/// One entry of the per-device kernel log.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Kernel name as passed to [`Device::launch`].
    pub name: &'static str,
    /// Modeled seconds this launch took.
    pub seconds: f64,
    /// Event counts of this launch.
    pub counters: KernelCounters,
}

impl Device {
    /// A device with the given configuration and the default cost model.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self {
            id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
            cfg,
            cost: CostModel::default(),
            totals: KernelCounters::default(),
            elapsed_s: 0.0,
            transfer_s: 0.0,
            resident_bytes: 0,
            lost: false,
            kernel_log: Vec::new(),
            tracer: None,
        }
    }

    /// The paper's device: a modeled Titan V.
    pub fn titan_v() -> Self {
        Self::new(DeviceConfig::titan_v())
    }

    /// Process-unique device id (what fault plans and errors reference).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Whether the device has fallen off the bus. Sticky: lost devices
    /// fail every later launch/upload with [`DeviceError::Lost`].
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Marks the device lost (what [`FaultKind::DeviceLost`]
    /// (crate::faults::FaultKind) does at the launch boundary; exposed so
    /// tests and simulations can force a loss directly).
    pub fn mark_lost(&mut self) {
        self.lost = true;
    }

    /// Attaches (or detaches, with `None`) a tracer. While attached, every
    /// committed kernel launch and every modeled transfer records a
    /// [`Clock::Modeled`] span whose duration is the cost model's charge —
    /// simulated time, not wall time. Tracing only *observes* the clock:
    /// modeled seconds, counters, and the kernel log are byte-identical
    /// with and without a tracer.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// Rendering track for this device's spans (0 is the host/engine
    /// thread, so devices are offset by one).
    fn track(&self) -> u32 {
        self.id + 1
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (for calibration experiments).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Checks the launch boundary: lost devices and armed failure plans
    /// turn into errors before any kernel code runs.
    fn pre_launch(&mut self, kernel: &'static str) -> Result<(), DeviceError> {
        let _ = kernel;
        if self.lost {
            return Err(DeviceError::Lost { device: self.id });
        }
        #[cfg(feature = "fault-injection")]
        if let Some(kind) = crate::faults::take_launch_fault(self.id) {
            use crate::faults::FaultKind;
            return Err(match kind {
                FaultKind::LaunchFail => DeviceError::LaunchFailed {
                    device: self.id,
                    kernel,
                },
                FaultKind::Timeout => DeviceError::Timeout {
                    device: self.id,
                    kernel,
                },
                FaultKind::DeviceLost => {
                    self.lost = true;
                    DeviceError::Lost { device: self.id }
                }
                FaultKind::ShardPanic => DeviceError::ShardPanicked {
                    device: self.id,
                    shard: 0,
                },
                FaultKind::Oom => unreachable!("OOM plans fire at the upload boundary"),
            });
        }
        Ok(())
    }

    /// Runs one kernel: `f` executes immediately on the calling thread with
    /// a fresh [`KernelCtx`]; its counters are charged to this device's
    /// modeled clock. A panic inside `f` is captured and surfaced as
    /// [`DeviceError::ShardPanicked`] — no time is charged for a launch
    /// that produced no result.
    pub fn launch<R>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut KernelCtx) -> R,
    ) -> Result<R, DeviceError> {
        self.pre_launch(name)?;
        let cfg = &self.cfg;
        match catch_unwind(AssertUnwindSafe(move || {
            let mut ctx = KernelCtx::new(cfg);
            let r = f(&mut ctx);
            (ctx.counters, r)
        })) {
            Ok((counters, r)) => {
                self.commit(name, counters);
                Ok(r)
            }
            Err(_) => Err(DeviceError::ShardPanicked {
                device: self.id,
                shard: 0,
            }),
        }
    }

    /// Runs a kernel *fragment* fused into an adjacent launch: `f`'s
    /// counters are charged to the modeled clock (memory traffic, ALU,
    /// reductions) but no per-launch overhead is added — the fragment
    /// rides in a kernel that was already going to launch. This models
    /// the standard direction-optimization trick of computing frontier
    /// statistics as a byproduct of the pass that produces the frontier
    /// flags, rather than paying a dedicated launch for a tiny
    /// reduction. The fragment still appears in the kernel log under its
    /// own name so traces and profiles can attribute its cost.
    pub fn launch_fused<R>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut KernelCtx) -> R,
    ) -> Result<R, DeviceError> {
        self.pre_launch(name)?;
        let cfg = &self.cfg;
        match catch_unwind(AssertUnwindSafe(move || {
            let mut ctx = KernelCtx::shard(cfg);
            let r = f(&mut ctx);
            (ctx.counters, r)
        })) {
            Ok((counters, r)) => {
                self.commit(name, counters);
                Ok(r)
            }
            Err(_) => Err(DeviceError::ShardPanicked {
                device: self.id,
                shard: 0,
            }),
        }
    }

    /// Runs one kernel sharded across `shards` OS threads (harness-side
    /// parallelism only — the modeled time is identical to a serial launch).
    /// `f(shard_index, ctx)` must partition work by shard index; the
    /// per-shard return values come back in shard order. A panic in any
    /// shard is captured at the join boundary and surfaced as
    /// [`DeviceError::ShardPanicked`] carrying the first panicked shard's
    /// index; the launch then charges nothing.
    pub fn launch_parallel<R, F>(
        &mut self,
        name: &'static str,
        shards: usize,
        f: F,
    ) -> Result<Vec<R>, DeviceError>
    where
        R: Send,
        F: Fn(usize, &mut KernelCtx) -> R + Sync,
    {
        assert!(shards >= 1, "need at least one shard");
        self.pre_launch(name)?;
        if shards == 1 {
            let cfg = &self.cfg;
            return match catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = KernelCtx::new(cfg);
                let r = f(0, &mut ctx);
                (ctx.counters, r)
            })) {
                Ok((counters, r)) => {
                    self.commit(name, counters);
                    Ok(vec![r])
                }
                Err(_) => Err(DeviceError::ShardPanicked {
                    device: self.id,
                    shard: 0,
                }),
            };
        }
        let cfg = &self.cfg;
        let mut merged = KernelCounters {
            kernel_launches: 1,
            ..Default::default()
        };
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|i| {
                    let f = &f;
                    scope.spawn(move || {
                        let mut ctx = KernelCtx::shard(cfg);
                        let r = f(i, &mut ctx);
                        (ctx.counters, r)
                    })
                })
                .collect();
            // The join boundary is the panic-capture point: a panicking
            // shard surfaces as Err here instead of tearing the process
            // down (the old `.expect("kernel shard panicked")`).
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<std::thread::Result<_>>>()
        });
        let mut out = Vec::with_capacity(results.len());
        for (shard, res) in results.into_iter().enumerate() {
            match res {
                Ok((c, r)) => {
                    merged.merge(&c);
                    out.push(r);
                }
                Err(_) => {
                    return Err(DeviceError::ShardPanicked {
                        device: self.id,
                        shard,
                    })
                }
            }
        }
        self.commit(name, merged);
        Ok(out)
    }

    fn commit(&mut self, name: &'static str, counters: KernelCounters) {
        let seconds = self.cost.kernel_seconds(&self.cfg, &counters);
        self.totals.merge(&counters);
        if let Some(t) = &self.tracer {
            // Commit runs once per launch on the calling thread (even for
            // sharded launches), so span order is deterministic and the
            // span nests under whatever the engine thread has open.
            t.complete_on(
                Category::Kernel,
                name,
                Clock::Modeled,
                self.track(),
                self.elapsed_s,
                seconds,
            );
        }
        self.elapsed_s += seconds;
        self.kernel_log.push(KernelRecord {
            name,
            seconds,
            counters,
        });
    }

    /// Models a host→device copy: charges PCIe time and tracks residency.
    ///
    /// Fails with [`DeviceError::OutOfMemory`] when the copy would exceed
    /// device memory — callers should fall back to the hybrid out-of-core
    /// mode (that is the paper's own rule) — and with
    /// [`DeviceError::Lost`] on a lost device. Under `fault-injection`, an
    /// armed [`FaultKind::Oom`](crate::faults::FaultKind) plan fails the
    /// upload even when the bytes would fit (simulated fragmentation /
    /// exhaustion by a co-tenant).
    pub fn upload(&mut self, bytes: u64) -> Result<(), DeviceError> {
        if self.lost {
            return Err(DeviceError::Lost { device: self.id });
        }
        #[cfg(feature = "fault-injection")]
        if crate::faults::take_upload_fault(self.id).is_some() {
            return Err(DeviceError::OutOfMemory {
                device: self.id,
                requested: bytes,
                resident: self.resident_bytes,
                capacity: self.cfg.global_mem_bytes,
            });
        }
        if self.resident_bytes + bytes > self.cfg.global_mem_bytes {
            return Err(DeviceError::OutOfMemory {
                device: self.id,
                requested: bytes,
                resident: self.resident_bytes,
                capacity: self.cfg.global_mem_bytes,
            });
        }
        self.resident_bytes += bytes;
        let s = self.cost.transfer_seconds(&self.cfg, bytes);
        if let Some(t) = &self.tracer {
            t.complete_on(
                Category::Transfer,
                "upload",
                Clock::Modeled,
                self.track(),
                self.elapsed_s,
                s,
            );
        }
        self.elapsed_s += s;
        self.transfer_s += s;
        Ok(())
    }

    /// Models a device→host copy (no residency change).
    pub fn download(&mut self, bytes: u64) {
        let s = self.cost.transfer_seconds(&self.cfg, bytes);
        if let Some(t) = &self.tracer {
            t.complete_on(
                Category::Transfer,
                "download",
                Clock::Modeled,
                self.track(),
                self.elapsed_s,
                s,
            );
        }
        self.elapsed_s += s;
        self.transfer_s += s;
    }

    /// Frees `bytes` of device residency (chunk eviction in hybrid mode).
    pub fn free(&mut self, bytes: u64) {
        assert!(bytes <= self.resident_bytes, "freeing more than resident");
        self.resident_bytes -= bytes;
    }

    /// Frees everything resident (engine cleanup after a failed run).
    pub fn free_all(&mut self) {
        self.resident_bytes = 0;
    }

    /// Whether `bytes` more would still fit in device memory.
    pub fn fits(&self, bytes: u64) -> bool {
        self.resident_bytes + bytes <= self.cfg.global_mem_bytes
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Total modeled elapsed seconds (kernels + transfers).
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_s
    }

    /// Modeled seconds spent on PCIe transfers alone (the paper reports
    /// transfer overhead is <10% of hybrid-mode runtime — we verify that).
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_s
    }

    /// Aggregated event counts across all launches.
    pub fn totals(&self) -> &KernelCounters {
        &self.totals
    }

    /// Per-launch log.
    pub fn kernel_log(&self) -> &[KernelRecord] {
        &self.kernel_log
    }

    /// Advances the modeled clock without events (used by multi-GPU sync).
    pub fn advance_clock(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the modeled clock");
        self.elapsed_s += seconds;
    }

    /// Clears clock, counters, log, and residency. Does *not* revive a
    /// lost device — a card that fell off the bus stays gone.
    pub fn reset(&mut self) {
        self.totals = KernelCounters::default();
        self.elapsed_s = 0.0;
        self.transfer_s = 0.0;
        self.resident_bytes = 0;
        self.kernel_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn launch_accumulates_time_and_counters() {
        let mut d = Device::titan_v();
        let out = d
            .launch("k", |ctx| {
                ctx.alu(1000);
                ctx.global_read_seq(0, 1 << 20, 4);
                42
            })
            .unwrap();
        assert_eq!(out, 42);
        assert!(d.elapsed_seconds() > 0.0);
        assert_eq!(d.totals().kernel_launches, 1);
        assert_eq!(d.kernel_log().len(), 1);
        assert_eq!(d.kernel_log()[0].name, "k");
    }

    #[test]
    fn parallel_launch_counts_once() {
        let mut serial = Device::titan_v();
        serial
            .launch("k", |ctx| {
                for i in 0..8u64 {
                    ctx.alu(100);
                    ctx.global_read_seq(i * 4096, 64, 4);
                }
            })
            .unwrap();
        let mut par = Device::titan_v();
        par.launch_parallel("k", 4, |shard, ctx| {
            for i in (shard as u64..8).step_by(4) {
                ctx.alu(100);
                ctx.global_read_seq(i * 4096, 64, 4);
            }
        })
        .unwrap();
        assert_eq!(serial.totals(), par.totals());
        assert!((serial.elapsed_seconds() - par.elapsed_seconds()).abs() < 1e-15);
    }

    #[test]
    fn device_ids_are_unique() {
        let a = Device::titan_v();
        let b = Device::titan_v();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn upload_charges_pcie_and_residency() {
        let mut d = Device::new(DeviceConfig::tiny(1000));
        d.upload(600).unwrap();
        assert!(!d.fits(600));
        assert!(d.fits(400));
        assert!(d.transfer_seconds() > 0.0);
        d.free(600);
        assert!(d.fits(1000));
    }

    #[test]
    fn oversized_upload_is_out_of_memory() {
        let mut d = Device::new(DeviceConfig::tiny(100));
        let err = d.upload(101).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                capacity,
                ..
            } => {
                assert_eq!(requested, 101);
                assert_eq!(capacity, 100);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        // The failed upload charged nothing and left no residency.
        assert_eq!(d.resident_bytes(), 0);
        assert_eq!(d.transfer_seconds(), 0.0);
    }

    #[test]
    fn lost_device_fails_everything_and_stays_lost() {
        let mut d = Device::titan_v();
        d.mark_lost();
        assert!(d.is_lost());
        assert_eq!(
            d.launch("k", |_| 1).unwrap_err(),
            DeviceError::Lost { device: d.id() }
        );
        assert_eq!(
            d.upload(4).unwrap_err(),
            DeviceError::Lost { device: d.id() }
        );
        d.reset();
        assert!(d.is_lost(), "reset must not revive a lost card");
    }

    #[test]
    fn panicking_kernel_is_captured_not_fatal() {
        let mut d = Device::titan_v();
        let err = d
            .launch("boom", |_ctx| -> u32 { panic!("injected kernel bug") })
            .unwrap_err();
        assert_eq!(
            err,
            DeviceError::ShardPanicked {
                device: d.id(),
                shard: 0
            }
        );
        // Nothing was charged for the failed launch, and the device is
        // still usable afterwards.
        assert_eq!(d.kernel_log().len(), 0);
        assert_eq!(d.launch("ok", |_| 7).unwrap(), 7);
    }

    #[test]
    fn panicking_shard_reports_its_index() {
        let mut d = Device::titan_v();
        let err = d
            .launch_parallel("boom", 4, |shard, ctx| {
                ctx.alu(10);
                assert!(shard != 2, "shard 2 panics");
                shard
            })
            .unwrap_err();
        assert_eq!(
            err,
            DeviceError::ShardPanicked {
                device: d.id(),
                shard: 2
            }
        );
        assert_eq!(d.kernel_log().len(), 0, "failed launch charges nothing");
    }

    #[test]
    fn tracer_observes_without_changing_the_clock() {
        let run = |tracer: Option<Tracer>| {
            let mut d = Device::titan_v();
            d.set_tracer(tracer);
            d.upload(1 << 20).unwrap();
            d.launch("k", |ctx| ctx.alu(1000)).unwrap();
            d.download(1 << 10);
            (
                d.elapsed_seconds(),
                d.transfer_seconds(),
                d.kernel_log().len(),
            )
        };
        let tracer = Tracer::new();
        let traced = run(Some(tracer.clone()));
        let bare = run(None);
        assert_eq!(traced, bare, "tracing must not perturb the cost model");
        let trace = tracer.finish();
        assert_eq!(trace.events.len(), 3, "upload + kernel + download");
        let spans =
            trace.category_seconds(Category::Kernel) + trace.category_seconds(Category::Transfer);
        assert!(
            (spans - traced.0).abs() < 1e-12,
            "span seconds {spans} vs clock {}",
            traced.0
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = Device::titan_v();
        d.launch("k", |ctx| ctx.alu(5)).unwrap();
        d.upload(100).unwrap();
        d.reset();
        assert_eq!(d.elapsed_seconds(), 0.0);
        assert_eq!(d.resident_bytes(), 0);
        assert!(d.kernel_log().is_empty());
    }
}
