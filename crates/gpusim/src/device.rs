//! One simulated GPU: kernel launches, transfers, and the modeled clock.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::counters::KernelCounters;
use crate::kernel::KernelCtx;

/// A simulated GPU accumulating modeled time and event totals.
///
/// ```
/// use glp_gpusim::Device;
/// let mut device = Device::titan_v();
/// let sum = device.launch("reduce", |ctx| {
///     ctx.global_read_seq(0, 1 << 20, 4); // stream 4 MiB
///     ctx.alu(1 << 15);
///     42u64
/// });
/// assert_eq!(sum, 42);
/// assert!(device.elapsed_seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    cfg: DeviceConfig,
    cost: CostModel,
    totals: KernelCounters,
    elapsed_s: f64,
    transfer_s: f64,
    resident_bytes: u64,
    kernel_log: Vec<KernelRecord>,
}

/// One entry of the per-device kernel log.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Kernel name as passed to [`Device::launch`].
    pub name: &'static str,
    /// Modeled seconds this launch took.
    pub seconds: f64,
    /// Event counts of this launch.
    pub counters: KernelCounters,
}

impl Device {
    /// A device with the given configuration and the default cost model.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self {
            cfg,
            cost: CostModel::default(),
            totals: KernelCounters::default(),
            elapsed_s: 0.0,
            transfer_s: 0.0,
            resident_bytes: 0,
            kernel_log: Vec::new(),
        }
    }

    /// The paper's device: a modeled Titan V.
    pub fn titan_v() -> Self {
        Self::new(DeviceConfig::titan_v())
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (for calibration experiments).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Runs one kernel: `f` executes immediately on the calling thread with
    /// a fresh [`KernelCtx`]; its counters are charged to this device's
    /// modeled clock.
    pub fn launch<R>(&mut self, name: &'static str, f: impl FnOnce(&mut KernelCtx) -> R) -> R {
        let mut ctx = KernelCtx::new(&self.cfg);
        let r = f(&mut ctx);
        self.commit(name, ctx.counters);
        r
    }

    /// Runs one kernel sharded across `shards` OS threads (harness-side
    /// parallelism only — the modeled time is identical to a serial launch).
    /// `f(shard_index, ctx)` must partition work by shard index; the
    /// per-shard return values come back in shard order.
    pub fn launch_parallel<R, F>(&mut self, name: &'static str, shards: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut KernelCtx) -> R + Sync,
    {
        assert!(shards >= 1, "need at least one shard");
        if shards == 1 {
            let mut ctx = KernelCtx::new(&self.cfg);
            let r = f(0, &mut ctx);
            self.commit(name, ctx.counters);
            return vec![r];
        }
        let cfg = &self.cfg;
        let mut merged = KernelCounters {
            kernel_launches: 1,
            ..Default::default()
        };
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|i| {
                    let f = &f;
                    scope.spawn(move || {
                        let mut ctx = KernelCtx::shard(cfg);
                        let r = f(i, &mut ctx);
                        (ctx.counters, r)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kernel shard panicked"))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(results.len());
        for (c, r) in results {
            merged.merge(&c);
            out.push(r);
        }
        self.commit(name, merged);
        out
    }

    fn commit(&mut self, name: &'static str, counters: KernelCounters) {
        let seconds = self.cost.kernel_seconds(&self.cfg, &counters);
        self.totals.merge(&counters);
        self.elapsed_s += seconds;
        self.kernel_log.push(KernelRecord {
            name,
            seconds,
            counters,
        });
    }

    /// Models a host→device copy: charges PCIe time and tracks residency.
    ///
    /// # Panics
    /// Panics if the copy would exceed device memory — callers must use the
    /// hybrid out-of-core mode instead (that is the paper's own rule).
    pub fn upload(&mut self, bytes: u64) {
        assert!(
            self.resident_bytes + bytes <= self.cfg.global_mem_bytes,
            "device memory overflow: {} + {bytes} > {}; use hybrid mode",
            self.resident_bytes,
            self.cfg.global_mem_bytes
        );
        self.resident_bytes += bytes;
        let s = self.cost.transfer_seconds(&self.cfg, bytes);
        self.elapsed_s += s;
        self.transfer_s += s;
    }

    /// Models a device→host copy (no residency change).
    pub fn download(&mut self, bytes: u64) {
        let s = self.cost.transfer_seconds(&self.cfg, bytes);
        self.elapsed_s += s;
        self.transfer_s += s;
    }

    /// Frees `bytes` of device residency (chunk eviction in hybrid mode).
    pub fn free(&mut self, bytes: u64) {
        assert!(bytes <= self.resident_bytes, "freeing more than resident");
        self.resident_bytes -= bytes;
    }

    /// Whether `bytes` more would still fit in device memory.
    pub fn fits(&self, bytes: u64) -> bool {
        self.resident_bytes + bytes <= self.cfg.global_mem_bytes
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Total modeled elapsed seconds (kernels + transfers).
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_s
    }

    /// Modeled seconds spent on PCIe transfers alone (the paper reports
    /// transfer overhead is <10% of hybrid-mode runtime — we verify that).
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_s
    }

    /// Aggregated event counts across all launches.
    pub fn totals(&self) -> &KernelCounters {
        &self.totals
    }

    /// Per-launch log.
    pub fn kernel_log(&self) -> &[KernelRecord] {
        &self.kernel_log
    }

    /// Advances the modeled clock without events (used by multi-GPU sync).
    pub fn advance_clock(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the modeled clock");
        self.elapsed_s += seconds;
    }

    /// Clears clock, counters, log, and residency.
    pub fn reset(&mut self) {
        self.totals = KernelCounters::default();
        self.elapsed_s = 0.0;
        self.transfer_s = 0.0;
        self.resident_bytes = 0;
        self.kernel_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn launch_accumulates_time_and_counters() {
        let mut d = Device::titan_v();
        let out = d.launch("k", |ctx| {
            ctx.alu(1000);
            ctx.global_read_seq(0, 1 << 20, 4);
            42
        });
        assert_eq!(out, 42);
        assert!(d.elapsed_seconds() > 0.0);
        assert_eq!(d.totals().kernel_launches, 1);
        assert_eq!(d.kernel_log().len(), 1);
        assert_eq!(d.kernel_log()[0].name, "k");
    }

    #[test]
    fn parallel_launch_counts_once() {
        let mut serial = Device::titan_v();
        serial.launch("k", |ctx| {
            for i in 0..8u64 {
                ctx.alu(100);
                ctx.global_read_seq(i * 4096, 64, 4);
            }
        });
        let mut par = Device::titan_v();
        par.launch_parallel("k", 4, |shard, ctx| {
            for i in (shard as u64..8).step_by(4) {
                ctx.alu(100);
                ctx.global_read_seq(i * 4096, 64, 4);
            }
        });
        assert_eq!(serial.totals(), par.totals());
        assert!((serial.elapsed_seconds() - par.elapsed_seconds()).abs() < 1e-15);
    }

    #[test]
    fn upload_charges_pcie_and_residency() {
        let mut d = Device::new(DeviceConfig::tiny(1000));
        d.upload(600);
        assert!(!d.fits(600));
        assert!(d.fits(400));
        assert!(d.transfer_seconds() > 0.0);
        d.free(600);
        assert!(d.fits(1000));
    }

    #[test]
    #[should_panic(expected = "device memory overflow")]
    fn oversized_upload_panics() {
        let mut d = Device::new(DeviceConfig::tiny(100));
        d.upload(101);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = Device::titan_v();
        d.launch("k", |ctx| ctx.alu(5));
        d.upload(100);
        d.reset();
        assert_eq!(d.elapsed_seconds(), 0.0);
        assert_eq!(d.resident_bytes(), 0);
        assert!(d.kernel_log().is_empty());
    }
}
