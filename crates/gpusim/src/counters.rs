//! Architectural event counters.
//!
//! Every kernel accumulates one [`KernelCounters`]; the cost model converts
//! the counts into modeled time. Counters are plain `u64`s updated
//! single-threaded inside a kernel launch (kernels may shard work across OS
//! threads, each with its own counters, merged at the end).

use serde::{Deserialize, Serialize};

/// Event counts for one kernel launch (or an aggregation of launches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// 32-byte global read sectors moved (after coalescing).
    pub global_read_sectors: u64,
    /// 32-byte global write sectors moved (after coalescing).
    pub global_write_sectors: u64,
    /// Global atomic operations issued.
    pub global_atomics: u64,
    /// Extra serialization steps from same-address atomics within a warp.
    pub global_atomic_conflicts: u64,
    /// Warp-wide shared-memory accesses.
    pub shared_accesses: u64,
    /// Extra shared-memory cycles from bank conflicts.
    pub shared_bank_conflicts: u64,
    /// Shared-memory atomic operations.
    pub shared_atomics: u64,
    /// Plain warp ALU/control instructions issued.
    pub alu_instructions: u64,
    /// Warp-intrinsic operations (`ballot`, `match_any`, `popc`, shuffles).
    pub warp_intrinsics: u64,
    /// Block-wide reductions (each costs log2(block threads) intrinsic steps).
    pub block_reductions: u64,
    /// Warps that executed (utilization denominator in reports).
    pub warps_launched: u64,
    /// Useful lane-units of work performed (utilization numerator: a warp
    /// with 3 active lanes contributes 3 against a capacity of 32).
    pub lanes_active: u64,
    /// Kernel launches (fixed overhead each).
    pub kernel_launches: u64,
}

impl KernelCounters {
    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.global_read_sectors += other.global_read_sectors;
        self.global_write_sectors += other.global_write_sectors;
        self.global_atomics += other.global_atomics;
        self.global_atomic_conflicts += other.global_atomic_conflicts;
        self.shared_accesses += other.shared_accesses;
        self.shared_bank_conflicts += other.shared_bank_conflicts;
        self.shared_atomics += other.shared_atomics;
        self.alu_instructions += other.alu_instructions;
        self.warp_intrinsics += other.warp_intrinsics;
        self.block_reductions += other.block_reductions;
        self.warps_launched += other.warps_launched;
        self.lanes_active += other.lanes_active;
        self.kernel_launches += other.kernel_launches;
    }

    /// Mean active lanes per warp-capacity unit: `lanes_active /
    /// (32 × warps_launched)`. The §4.2 utilization story in one number —
    /// one-warp-one-vertex on a road network sits near 0.09, the packed
    /// schedule near 1.0.
    pub fn warp_utilization(&self) -> f64 {
        if self.warps_launched == 0 {
            return 0.0;
        }
        self.lanes_active as f64 / (32.0 * self.warps_launched as f64)
    }

    /// Total 32-byte sectors moved through global memory (reads + writes +
    /// one sector per atomic).
    pub fn global_sectors(&self) -> u64 {
        self.global_read_sectors + self.global_write_sectors + self.global_atomics
    }

    /// Total bytes moved through global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_sectors() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = KernelCounters {
            global_read_sectors: 3,
            alu_instructions: 10,
            ..Default::default()
        };
        let b = KernelCounters {
            global_read_sectors: 5,
            warps_launched: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_read_sectors, 8);
        assert_eq!(a.alu_instructions, 10);
        assert_eq!(a.warps_launched, 2);
    }

    #[test]
    fn global_bytes_counts_all_traffic() {
        let c = KernelCounters {
            global_read_sectors: 2,
            global_write_sectors: 1,
            global_atomics: 1,
            ..Default::default()
        };
        assert_eq!(c.global_sectors(), 4);
        assert_eq!(c.global_bytes(), 128);
    }
}
