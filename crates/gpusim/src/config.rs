//! Device configuration.
//!
//! Defaults model the NVIDIA Titan V used in the paper's experiments (§5.1):
//! Volta GV100, 80 SMs, 12 GiB HBM2, 652.8 GB/s, up to 96 KiB shared memory
//! per SM (48 KiB per block by default), PCIe 3.0 x16 host link.

use serde::{Deserialize, Serialize};

/// Static hardware description of one simulated GPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in GHz (sustained, not peak boost).
    pub clock_ghz: f64,
    /// Warp instructions issued per SM per cycle, sustained. Volta has four
    /// schedulers per SM but memory-bound graph kernels sustain ~1.
    pub issue_per_sm_cycle: f64,
    /// Shared memory available to one thread block, in bytes.
    pub shared_mem_per_block: usize,
    /// Threads per block used by LP kernels (the paper's kernels use one
    /// block per high-degree vertex).
    pub threads_per_block: u32,
    /// Global memory capacity in bytes (12 GiB on Titan V). Graphs larger
    /// than this trigger the CPU–GPU hybrid mode.
    pub global_mem_bytes: u64,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Modeled L2 capacity in bytes — only used by the G-Hash baseline's
    /// cache-hit model (§4.1: "relies on the built-in caching mechanism").
    pub l2_bytes: u64,
    /// Host link (PCIe 3.0 x16) sustained bandwidth in GB/s.
    pub pcie_gbps: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
}

impl DeviceConfig {
    /// The paper's GPU: NVIDIA Titan V (Volta GV100).
    pub fn titan_v() -> Self {
        Self {
            name: "NVIDIA Titan V (modeled)".to_string(),
            num_sms: 80,
            clock_ghz: 1.2,
            issue_per_sm_cycle: 1.0,
            shared_mem_per_block: 48 * 1024,
            threads_per_block: 256,
            global_mem_bytes: 12 * (1 << 30),
            mem_bandwidth_gbps: 652.8,
            l2_bytes: 4608 * 1024,
            pcie_gbps: 12.0,
            kernel_launch_us: 4.0,
        }
    }

    /// Tesla V100 (SXM2): the datacenter sibling of the Titan V — same
    /// GV100 silicon, higher bandwidth bin, 16 GiB, NVLink-class host
    /// numbers folded into PCIe for this model.
    pub fn v100() -> Self {
        Self {
            name: "NVIDIA Tesla V100 (modeled)".to_string(),
            num_sms: 80,
            clock_ghz: 1.38,
            global_mem_bytes: 16 * (1 << 30),
            mem_bandwidth_gbps: 900.0,
            l2_bytes: 6 * 1024 * 1024,
            ..Self::titan_v()
        }
    }

    /// A100 (SXM4, 40 GiB): the next-generation part — more SMs, HBM2e.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100 (modeled)".to_string(),
            num_sms: 108,
            clock_ghz: 1.27,
            shared_mem_per_block: 96 * 1024,
            global_mem_bytes: 40 * (1 << 30),
            mem_bandwidth_gbps: 1555.0,
            l2_bytes: 40 * 1024 * 1024,
            pcie_gbps: 24.0, // PCIe 4.0 x16
            ..Self::titan_v()
        }
    }

    /// GeForce RTX 2080 Ti: the consumer part a smaller shop would buy.
    pub fn rtx2080ti() -> Self {
        Self {
            name: "NVIDIA RTX 2080 Ti (modeled)".to_string(),
            num_sms: 68,
            clock_ghz: 1.545,
            global_mem_bytes: 11 * (1 << 30),
            mem_bandwidth_gbps: 616.0,
            l2_bytes: 5632 * 1024,
            ..Self::titan_v()
        }
    }

    /// A deliberately tiny device for out-of-core tests: graphs overflow its
    /// memory at laughably small sizes so hybrid-mode paths get exercised.
    pub fn tiny(global_mem_bytes: u64) -> Self {
        Self {
            name: "tiny test device".to_string(),
            global_mem_bytes,
            ..Self::titan_v()
        }
    }

    /// Warps per thread block.
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block
            .div_ceil(crate::warp::WARP_SIZE as u32)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::titan_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_datasheet_shape() {
        let c = DeviceConfig::titan_v();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.global_mem_bytes, 12 << 30);
        assert_eq!(c.warps_per_block(), 8);
    }

    #[test]
    fn presets_scale_sensibly() {
        let titan = DeviceConfig::titan_v();
        let a100 = DeviceConfig::a100();
        let v100 = DeviceConfig::v100();
        assert!(a100.mem_bandwidth_gbps > v100.mem_bandwidth_gbps);
        assert!(v100.mem_bandwidth_gbps > titan.mem_bandwidth_gbps);
        assert!(a100.num_sms > titan.num_sms);
        assert!(DeviceConfig::rtx2080ti().global_mem_bytes < titan.global_mem_bytes);
    }

    #[test]
    fn tiny_device_overrides_memory_only() {
        let c = DeviceConfig::tiny(1024);
        assert_eq!(c.global_mem_bytes, 1024);
        assert_eq!(c.num_sms, DeviceConfig::titan_v().num_sms);
    }
}
