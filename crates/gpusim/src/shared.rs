//! Per-block shared-memory arena.
//!
//! Shared memory is the scarce resource the paper's high-degree optimization
//! (§4.1) is built around: the CMS and the bounded HT must *together* fit in
//! one block's allocation (48 KiB on the modeled Titan V). This arena hands
//! out capacity and panics on overflow, so a kernel that silently assumes
//! more shared memory than the hardware has fails loudly in tests.
//!
//! The arena tracks *bytes*, not values — the actual data structures live in
//! ordinary Rust types owned by the kernel; they call [`SharedMem::alloc`]
//! to declare their footprint.

/// Tracks one thread block's shared-memory budget.
#[derive(Debug)]
pub struct SharedMem {
    capacity: usize,
    used: usize,
}

impl SharedMem {
    /// A fresh arena of `capacity` bytes (use
    /// [`DeviceConfig::shared_mem_per_block`](crate::DeviceConfig::shared_mem_per_block)).
    pub fn new(capacity: usize) -> Self {
        Self { capacity, used: 0 }
    }

    /// Declares an allocation of `bytes`. Returns the offset (for
    /// bank-conflict math) or `None` if the block budget is exhausted.
    pub fn try_alloc(&mut self, bytes: usize) -> Option<usize> {
        if self.used + bytes > self.capacity {
            return None;
        }
        let off = self.used;
        self.used += bytes;
        Some(off)
    }

    /// Declares an allocation that must fit.
    ///
    /// # Panics
    /// Panics if the block budget would be exceeded — a kernel
    /// configuration bug.
    pub fn alloc(&mut self, bytes: usize) -> usize {
        self.try_alloc(bytes).unwrap_or_else(|| {
            panic!(
                "shared memory overflow: requested {bytes} B with {} of {} B used",
                self.used, self.capacity
            )
        })
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Releases everything (block retirement).
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_offsets() {
        let mut s = SharedMem::new(100);
        assert_eq!(s.alloc(40), 0);
        assert_eq!(s.alloc(60), 40);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn try_alloc_returns_none_on_overflow() {
        let mut s = SharedMem::new(10);
        assert!(s.try_alloc(11).is_none());
        assert_eq!(s.try_alloc(10), Some(0));
        assert!(s.try_alloc(1).is_none());
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn alloc_panics_on_overflow() {
        SharedMem::new(8).alloc(9);
    }

    #[test]
    fn reset_reclaims() {
        let mut s = SharedMem::new(8);
        s.alloc(8);
        s.reset();
        assert_eq!(s.alloc(8), 0);
    }
}
