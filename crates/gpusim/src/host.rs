//! Host-side hardware models: CPUs and the distributed cluster.
//!
//! Figures 4–6 compare GPU approaches against multicore CPU baselines, and
//! Figure 7 against a 32-machine cluster. To keep every reported time in
//! the same modeled unit as the GPU times, CPU baselines are also charged
//! through a cost model (a CPU roofline: instruction throughput vs random
//! access vs sequential bandwidth), and the in-house distributed solution
//! adds a BSP network model on top.
//!
//! Calibration sources: Intel ARK datasheets for the two CPUs the paper
//! names (§5.1), standard DDR4 channel bandwidths, ~80 ns DRAM random
//! access latency with ~10-deep memory-level parallelism per core.

use serde::{Deserialize, Serialize};

/// Static description of one CPU (all sockets of one machine combined).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Physical cores (all sockets).
    pub cores: u32,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// Sustained instructions per cycle per core on pointer-heavy graph
    /// code (not peak width).
    pub ipc: f64,
    /// Sustained memory bandwidth in GB/s (all channels).
    pub mem_bandwidth_gbps: f64,
    /// DRAM random-access latency in nanoseconds.
    pub random_access_ns: f64,
    /// Outstanding misses per core (memory-level parallelism).
    pub mlp: f64,
}

impl CpuConfig {
    /// Intel Xeon W-2133 — the workstation CPU of the single-machine setup
    /// (§5.1): 6 cores, 3.6 GHz, 4-channel DDR4-2666.
    pub fn xeon_w2133() -> Self {
        Self {
            name: "Intel Xeon W-2133".to_string(),
            cores: 6,
            clock_ghz: 3.6,
            ipc: 1.5,
            mem_bandwidth_gbps: 60.0,
            random_access_ns: 80.0,
            mlp: 10.0,
        }
    }

    /// 4× Intel Xeon Platinum 8168 — one machine of the in-house cluster
    /// (§5.4): 4 sockets × 24 cores, 2.7 GHz, 6-channel DDR4 each.
    pub fn quad_xeon_8168() -> Self {
        Self {
            name: "4x Intel Xeon Platinum 8168".to_string(),
            cores: 96,
            clock_ghz: 2.7,
            ipc: 1.5,
            mem_bandwidth_gbps: 400.0,
            random_access_ns: 90.0, // NUMA hops raise the average
            mlp: 10.0,
        }
    }
}

/// Work performed by a CPU execution (the CPU-side analogue of
/// [`crate::KernelCounters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuCounters {
    /// Retired instructions (approximate, counted by the baseline code).
    pub instructions: u64,
    /// Cache-missing random memory accesses.
    pub random_accesses: u64,
    /// Sequentially streamed bytes.
    pub seq_bytes: u64,
}

impl CpuCounters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &CpuCounters) {
        self.instructions += other.instructions;
        self.random_accesses += other.random_accesses;
        self.seq_bytes += other.seq_bytes;
    }
}

impl CpuConfig {
    /// Modeled seconds for `c` using up to `threads` software threads
    /// (capped at physical cores — hyperthread gains are folded into `ipc`).
    pub fn seconds(&self, c: &CpuCounters, threads: u32) -> f64 {
        let par = f64::from(threads.clamp(1, self.cores));
        let compute = c.instructions as f64 / (par * self.ipc * self.clock_ghz * 1e9);
        let random = c.random_accesses as f64 * self.random_access_ns * 1e-9 / (par * self.mlp);
        let seq = c.seq_bytes as f64 / (self.mem_bandwidth_gbps * 1e9);
        compute.max(random).max(seq)
    }
}

/// The in-house distributed deployment: machines, interconnect, and BSP
/// coordination overheads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: u32,
    /// CPU complement of each machine.
    pub machine_cpu: CpuConfig,
    /// Per-machine network bandwidth in Gb/s (bits!).
    pub network_gbits: f64,
    /// Fixed per-superstep coordination latency in seconds (barrier, task
    /// (re)scheduling, heartbeat — what production BSP frameworks pay).
    pub superstep_latency_s: f64,
    /// Straggler multiplier on the slowest machine's compute (skewed
    /// partitions and multi-tenant noise).
    pub straggler_factor: f64,
    /// Per cross-machine message framework overhead in nanoseconds:
    /// serialization, shuffle buffering and spill that production
    /// MapReduce/BSP stacks pay per record. This — not raw FLOPs or NIC
    /// bandwidth — is why a 3072-core cluster can lose 8.2x to one GPU
    /// (§5.4): on paper specs the cluster's aggregate compute and network
    /// would win easily.
    pub message_overhead_ns: f64,
    /// Serialized on-the-wire size of one label message in bytes. Legacy
    /// frameworks ship framed key-value records (ids, job/epoch headers,
    /// object envelopes), not raw 8-byte tuples.
    pub message_bytes: u64,
    /// Fraction of NIC line rate a production all-to-all shuffle actually
    /// sustains (TCP incast, skew, disk-backed spill).
    pub network_efficiency: f64,
}

impl ClusterConfig {
    /// The paper's in-house setup (§5.1/§5.4): 32 machines, each with
    /// 4× Xeon Platinum 8168 and 512 GB RAM, datacenter 10 GbE.
    pub fn taobao_inhouse() -> Self {
        Self {
            machines: 32,
            machine_cpu: CpuConfig::quad_xeon_8168(),
            network_gbits: 10.0,
            superstep_latency_s: 0.25,
            straggler_factor: 1.4,
            message_overhead_ns: 2_000.0,
            message_bytes: 32,
            network_efficiency: 0.3,
        }
    }

    /// Modeled seconds for one BSP superstep in which the slowest machine
    /// performs `max_machine_work`, every machine exchanges
    /// `bytes_per_machine` of messages, and `messages_per_machine` records
    /// pass through the framework's shuffle.
    pub fn superstep_seconds(
        &self,
        max_machine_work: &CpuCounters,
        bytes_per_machine: u64,
        messages_per_machine: u64,
    ) -> f64 {
        let compute = self
            .machine_cpu
            .seconds(max_machine_work, self.machine_cpu.cores)
            * self.straggler_factor;
        let network =
            bytes_per_machine as f64 * 8.0 / (self.network_gbits * self.network_efficiency * 1e9);
        // Shuffle/serialization parallelizes across the machine's cores.
        let shuffle = messages_per_machine as f64 * self.message_overhead_ns * 1e-9
            / f64::from(self.machine_cpu.cores);
        // Compute and communication overlap poorly in practice; charge the
        // max plus the fixed coordination latency.
        compute.max(network).max(shuffle) + self.superstep_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_scales_with_threads() {
        let cpu = CpuConfig::xeon_w2133();
        let c = CpuCounters {
            instructions: 10_000_000_000,
            ..Default::default()
        };
        let t1 = cpu.seconds(&c, 1);
        let t6 = cpu.seconds(&c, 6);
        assert!((t1 / t6 - 6.0).abs() < 1e-9);
        // More threads than cores does not help further.
        assert_eq!(t6, cpu.seconds(&c, 64));
    }

    #[test]
    fn random_access_dominates_pointer_chasing() {
        let cpu = CpuConfig::xeon_w2133();
        let c = CpuCounters {
            instructions: 1_000_000,
            random_accesses: 100_000_000,
            ..Default::default()
        };
        let s = cpu.seconds(&c, 6);
        let expect = 1e8 * 80e-9 / (6.0 * 10.0);
        assert!((s - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn bandwidth_bound_ignores_thread_count() {
        let cpu = CpuConfig::xeon_w2133();
        let c = CpuCounters {
            seq_bytes: 60_000_000_000,
            ..Default::default()
        };
        assert!((cpu.seconds(&c, 1) - 1.0).abs() < 1e-9);
        assert!((cpu.seconds(&c, 6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn superstep_includes_fixed_latency() {
        let cluster = ClusterConfig::taobao_inhouse();
        let s = cluster.superstep_seconds(&CpuCounters::default(), 0, 0);
        assert!((s - cluster.superstep_latency_s).abs() < 1e-12);
    }

    #[test]
    fn superstep_network_term() {
        let mut cluster = ClusterConfig::taobao_inhouse();
        cluster.network_efficiency = 1.0;
        // 10 Gbit/s => 1.25 GB/s; 1.25 GB of messages => 1 s + latency.
        let s = cluster.superstep_seconds(&CpuCounters::default(), 1_250_000_000, 0);
        assert!((s - (1.0 + cluster.superstep_latency_s)).abs() < 1e-9);
    }

    #[test]
    fn network_efficiency_slows_shuffle() {
        let cluster = ClusterConfig::taobao_inhouse();
        let s = cluster.superstep_seconds(&CpuCounters::default(), 1_250_000_000, 0);
        let expect = 1.0 / cluster.network_efficiency + cluster.superstep_latency_s;
        assert!((s - expect).abs() < 1e-9, "{s}");
    }

    #[test]
    fn superstep_shuffle_term() {
        let cluster = ClusterConfig::taobao_inhouse();
        // 96e6 messages x 2000 ns / 96 cores = 2 s, dominating.
        let s = cluster.superstep_seconds(&CpuCounters::default(), 0, 96_000_000);
        assert!(
            (s - (2.0 + cluster.superstep_latency_s)).abs() < 1e-9,
            "{s}"
        );
    }
}
