//! Roofline cost model: event counts → modeled seconds.
//!
//! `kernel_time = max(compute_time, memory_time) + launch_overhead`
//!
//! * compute_time — total warp-instruction cycles divided by the machine's
//!   sustained issue rate (`num_sms × issue_per_sm_cycle × clock`).
//! * memory_time — total 32-byte sectors moved divided by bandwidth.
//!   Coalescing was already applied when sectors were counted, so scattered
//!   access patterns show up here as extra sectors.
//!
//! Per-event cycle weights follow published Volta microbenchmarks
//! (Jia et al., "Dissecting the NVIDIA Volta GPU Architecture via
//! Microbenchmarking", 2018): shared-memory latency ~19 cycles but fully
//! pipelined (≈1 cycle/issue sustained, +1 per conflicting bank), shared
//! atomics ~4 cycles sustained, global atomics ~30 cycles plus
//! serialization on address conflicts, warp intrinsics 2 cycles.

use crate::config::DeviceConfig;
use crate::counters::KernelCounters;
use serde::{Deserialize, Serialize};

/// The DRAM transaction granule: a scattered lane-sized access still moves
/// a whole 32-byte sector (see `uncoalesced_traffic_costs_more_time`).
/// This 32-vs-4 asymmetry is what the direction-optimized frontier
/// crossover is derived from.
pub const SECTOR_BYTES: u64 = 32;

/// Cycle weights for each counted event class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per plain warp instruction.
    pub alu_cycles: f64,
    /// Cycles per warp-wide shared-memory access (sustained, pipelined).
    pub shared_cycles: f64,
    /// Extra cycles per bank-conflict serialization step.
    pub bank_conflict_cycles: f64,
    /// Cycles per shared-memory atomic.
    pub shared_atomic_cycles: f64,
    /// Cycles per global atomic (beyond its memory sector).
    pub global_atomic_cycles: f64,
    /// Extra cycles per same-address conflict step within a warp.
    pub atomic_conflict_cycles: f64,
    /// Cycles per warp intrinsic.
    pub intrinsic_cycles: f64,
    /// Intrinsic steps per block reduction = log2(threads_per_block); the
    /// weight here multiplies that step count.
    pub reduction_step_cycles: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alu_cycles: 1.0,
            shared_cycles: 1.0,
            bank_conflict_cycles: 1.0,
            shared_atomic_cycles: 4.0,
            // Read-modify-write round trip: ~36 cycles for L2-resident
            // atomics (Jia et al.), roughly double once the line misses to
            // DRAM — graph-scale per-vertex tables mostly miss.
            global_atomic_cycles: 60.0,
            atomic_conflict_cycles: 10.0,
            intrinsic_cycles: 2.0,
            reduction_step_cycles: 2.0,
        }
    }
}

impl CostModel {
    /// Total compute cycles implied by `c` on a device with
    /// `threads_per_block` threads per block.
    pub fn compute_cycles(&self, c: &KernelCounters, threads_per_block: u32) -> f64 {
        let reduce_steps = f64::from(32 - (threads_per_block.max(2) - 1).leading_zeros());
        c.alu_instructions as f64 * self.alu_cycles
            + c.shared_accesses as f64 * self.shared_cycles
            + c.shared_bank_conflicts as f64 * self.bank_conflict_cycles
            + c.shared_atomics as f64 * self.shared_atomic_cycles
            + c.global_atomics as f64 * self.global_atomic_cycles
            + c.global_atomic_conflicts as f64 * self.atomic_conflict_cycles
            + c.warp_intrinsics as f64 * self.intrinsic_cycles
            + c.block_reductions as f64 * reduce_steps * self.reduction_step_cycles
    }

    /// Modeled elapsed seconds for counters `c` on device `cfg`.
    pub fn kernel_seconds(&self, cfg: &DeviceConfig, c: &KernelCounters) -> f64 {
        let compute_cycles = self.compute_cycles(c, cfg.threads_per_block);
        let issue_rate = f64::from(cfg.num_sms) * cfg.issue_per_sm_cycle * cfg.clock_ghz * 1e9;
        let compute_s = compute_cycles / issue_rate;
        let mem_s = c.global_bytes() as f64 / (cfg.mem_bandwidth_gbps * 1e9);
        compute_s.max(mem_s) + c.kernel_launches as f64 * cfg.kernel_launch_us * 1e-6
    }

    /// Modeled seconds to move `bytes` across the host link (PCIe).
    pub fn transfer_seconds(&self, cfg: &DeviceConfig, bytes: u64) -> f64 {
        bytes as f64 / (cfg.pcie_gbps * 1e9)
    }

    /// Modeled DRAM bytes of a **push**-style frontier rebuild over `n`
    /// vertices with `touched_edges` scatter marks (Σ out-degree of the
    /// changed vertices): one coalesced pass over the change flags, a
    /// coalesced walk of the changed vertices' out-adjacency, and one
    /// whole [`SECTOR_BYTES`] sector per scattered bitmap mark — marks
    /// land wherever the neighbor ids point, so the coalescer almost
    /// never merges them.
    pub fn push_frontier_bytes(&self, n: u64, touched_edges: u64) -> u64 {
        4 * n + 4 * touched_edges + SECTOR_BYTES * touched_edges
    }

    /// Modeled DRAM bytes of a **pull**-style frontier rebuild over `n`
    /// vertices scanning `scan_edges` in-adjacency entries (worst case the
    /// whole edge set; the kernel early-exits at the first changed
    /// in-neighbor): coalesced flag reads, coalesced CSR target reads,
    /// and one sequential bitmap write — no scatter at all.
    pub fn pull_frontier_bytes(&self, n: u64, scan_edges: u64) -> u64 {
        4 * n + 4 * scan_edges + n.div_ceil(8)
    }

    /// The direction crossover: pull wins the next frontier rebuild iff
    /// push's scattered sectors for `touched_edges` marks outweigh a full
    /// coalesced scan of all `total_edges` in-edges. With the default
    /// weights this reduces to roughly `touched_edges > total_edges / 9`
    /// — the Beamer-style density threshold, but *derived* from the same
    /// sector accounting the kernels are charged with, so the `Auto`
    /// switch point and the measured kernel times cannot drift apart.
    /// Bandwidth cancels (both candidates are memory-bound passes on the
    /// same device), which is why this needs no [`DeviceConfig`].
    pub fn prefer_pull(&self, n: u64, touched_edges: u64, total_edges: u64) -> bool {
        self.push_frontier_bytes(n, touched_edges) > self.pull_frontier_bytes(n, total_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::titan_v()
    }

    #[test]
    fn empty_counters_cost_only_launch_overhead() {
        let m = CostModel::default();
        let c = KernelCounters {
            kernel_launches: 1,
            ..Default::default()
        };
        let s = m.kernel_seconds(&cfg(), &c);
        assert!((s - 4e-6).abs() < 1e-12, "{s}");
    }

    #[test]
    fn memory_bound_kernel_times_by_bandwidth() {
        let m = CostModel::default();
        // 1 GB of sectors, negligible compute.
        let c = KernelCounters {
            global_read_sectors: (1u64 << 30) / 32,
            ..Default::default()
        };
        let s = m.kernel_seconds(&cfg(), &c);
        let expect = (1u64 << 30) as f64 / (652.8e9);
        assert!((s - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_times_by_issue_rate() {
        let m = CostModel::default();
        let c = KernelCounters {
            alu_instructions: 96_000_000_000, // 96G instructions
            ..Default::default()
        };
        let s = m.kernel_seconds(&cfg(), &c);
        // 96e9 cycles / (80 SMs * 1.2e9) = 1.0 s
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn uncoalesced_traffic_costs_more_time() {
        let m = CostModel::default();
        // Same logical reads: 32 lanes x 4 bytes. Coalesced = 4 sectors;
        // fully scattered = 32 sectors.
        let co = KernelCounters {
            global_read_sectors: 4_000_000,
            ..Default::default()
        };
        let sc = KernelCounters {
            global_read_sectors: 32_000_000,
            ..Default::default()
        };
        assert!(m.kernel_seconds(&cfg(), &sc) > 7.0 * m.kernel_seconds(&cfg(), &co));
    }

    #[test]
    fn direction_crossover_tracks_frontier_density() {
        let m = CostModel::default();
        let (n, edges) = (10_000u64, 80_000u64);
        // Sparse tail: a handful of scatter marks is far cheaper than
        // scanning every in-edge.
        assert!(!m.prefer_pull(n, 100, edges));
        // Saturated frontier: scattering a sector per edge loses to one
        // coalesced sweep of the CSR.
        assert!(m.prefer_pull(n, edges, edges));
        // The switch point sits near edges/9 — between edges/16 (push)
        // and edges/4 (pull) — and is monotone in the scatter volume.
        assert!(!m.prefer_pull(n, edges / 16, edges));
        assert!(m.prefer_pull(n, edges / 4, edges));
        assert!(
            m.push_frontier_bytes(n, edges / 4) > m.push_frontier_bytes(n, edges / 16),
            "push bytes must grow with the scatter volume"
        );
    }

    #[test]
    fn transfer_seconds_matches_pcie_rate() {
        let m = CostModel::default();
        let s = m.transfer_seconds(&cfg(), 12_000_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
