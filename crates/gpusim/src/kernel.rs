//! Kernel execution context: the accounting surface kernels program against.
//!
//! A kernel is an ordinary Rust function receiving a `&mut KernelCtx`. It
//! computes its results directly on host slices (the simulator does not
//! shadow-copy data) and *declares* every architecturally significant event:
//! warp-wide global loads with the lane addresses (so coalescing can be
//! computed), shared accesses with their bank indices, atomics with their
//! target addresses (so conflicts can be computed), plain instructions, and
//! intrinsics.

use crate::config::DeviceConfig;
use crate::counters::KernelCounters;
use crate::warp::WARP_SIZE;

/// Bytes per global-memory sector (Volta coalesces at 32-byte granularity).
pub const SECTOR_BYTES: u64 = 32;

/// Number of shared-memory banks.
pub const NUM_BANKS: u32 = 32;

/// Mutable per-kernel accounting state.
#[derive(Debug)]
pub struct KernelCtx<'a> {
    /// Device being modeled.
    pub cfg: &'a DeviceConfig,
    /// Accumulated event counts.
    pub counters: KernelCounters,
}

/// Counts distinct 32-byte sectors among up to one warp's byte addresses.
fn distinct_sectors(addrs: &[u64]) -> u64 {
    debug_assert!(addrs.len() <= WARP_SIZE);
    let mut sectors = [0u64; WARP_SIZE];
    for (i, &a) in addrs.iter().enumerate() {
        sectors[i] = a / SECTOR_BYTES;
    }
    let s = &mut sectors[..addrs.len()];
    s.sort_unstable();
    let mut n = 0u64;
    let mut prev = u64::MAX;
    for &x in s.iter() {
        if x != prev {
            n += 1;
            prev = x;
        }
    }
    n
}

/// Sum over addresses of (multiplicity - 1): the extra serialization steps
/// atomics pay for same-address conflicts within one warp access.
fn conflict_steps(addrs: &[u64]) -> u64 {
    debug_assert!(addrs.len() <= WARP_SIZE);
    let mut sorted = [0u64; WARP_SIZE];
    sorted[..addrs.len()].copy_from_slice(addrs);
    let s = &mut sorted[..addrs.len()];
    s.sort_unstable();
    let mut extra = 0u64;
    for i in 1..s.len() {
        if s[i] == s[i - 1] {
            extra += 1;
        }
    }
    extra
}

impl<'a> KernelCtx<'a> {
    /// A fresh context for one kernel launch on `cfg`.
    pub fn new(cfg: &'a DeviceConfig) -> Self {
        #[cfg(feature = "fault-injection")]
        crate::faults::on_kernel_launch();
        Self {
            cfg,
            counters: KernelCounters {
                kernel_launches: 1,
                ..Default::default()
            },
        }
    }

    /// A context for a shard of a kernel (no extra launch overhead); used
    /// when the harness splits one kernel across OS threads.
    pub fn shard(cfg: &'a DeviceConfig) -> Self {
        Self {
            cfg,
            counters: KernelCounters::default(),
        }
    }

    /// Records `n` warps entering execution.
    #[inline]
    pub fn warps_launched(&mut self, n: u64) {
        self.counters.warps_launched += n;
    }

    /// Records `n` lane-units of useful work (utilization numerator; pair
    /// with [`Self::warps_launched`]).
    #[inline]
    pub fn lanes_active(&mut self, n: u64) {
        self.counters.lanes_active += n;
    }

    /// One warp-wide global read with explicit lane byte-addresses
    /// (≤ 32 of them). Charges the coalesced sector count.
    #[inline]
    pub fn global_read(&mut self, addrs: &[u64]) {
        self.counters.global_read_sectors += distinct_sectors(addrs);
    }

    /// One warp-wide global write with explicit lane byte-addresses.
    #[inline]
    pub fn global_write(&mut self, addrs: &[u64]) {
        self.counters.global_write_sectors += distinct_sectors(addrs);
    }

    /// Bulk *sequential* global read of `count` elements of `elem_bytes`
    /// starting at byte address `base` — the fully coalesced fast path for
    /// scanning CSR runs, charged exactly the sectors the range covers.
    #[inline]
    pub fn global_read_seq(&mut self, base: u64, count: u64, elem_bytes: u64) {
        if count == 0 {
            return;
        }
        let end = base + count * elem_bytes;
        self.counters.global_read_sectors += end.div_ceil(SECTOR_BYTES) - base / SECTOR_BYTES;
    }

    /// Bulk sequential global write (see [`Self::global_read_seq`]).
    #[inline]
    pub fn global_write_seq(&mut self, base: u64, count: u64, elem_bytes: u64) {
        if count == 0 {
            return;
        }
        let end = base + count * elem_bytes;
        self.counters.global_write_sectors += end.div_ceil(SECTOR_BYTES) - base / SECTOR_BYTES;
    }

    /// One warp-wide *random* global read where each active lane touches its
    /// own sector (the pessimal pattern of per-vertex global hash tables).
    /// Cheaper to call than [`Self::global_read`] when the caller already
    /// knows the addresses do not coalesce.
    #[inline]
    pub fn global_read_scattered(&mut self, lanes: u64) {
        self.counters.global_read_sectors += lanes;
    }

    /// Scattered warp-wide global write (see [`Self::global_read_scattered`]).
    #[inline]
    pub fn global_write_scattered(&mut self, lanes: u64) {
        self.counters.global_write_sectors += lanes;
    }

    /// One warp-wide global atomic with explicit lane target addresses:
    /// charges one sector per op plus serialization for same-address lanes.
    #[inline]
    pub fn global_atomic(&mut self, addrs: &[u64]) {
        self.counters.global_atomics += addrs.len() as u64;
        self.counters.global_atomic_conflicts += conflict_steps(addrs);
    }

    /// One warp-wide shared-memory access with the lanes' bank indices:
    /// charges 1 access plus (max bank multiplicity − 1) conflict steps.
    #[inline]
    pub fn shared_access(&mut self, banks: &[u32]) {
        debug_assert!(banks.len() <= WARP_SIZE);
        self.counters.shared_accesses += 1;
        let mut mult = [0u8; NUM_BANKS as usize];
        let mut max = 0u8;
        for &b in banks {
            let m = &mut mult[(b % NUM_BANKS) as usize];
            *m += 1;
            max = max.max(*m);
        }
        self.counters.shared_bank_conflicts += u64::from(max.saturating_sub(1));
    }

    /// `n` uniform (conflict-free) shared accesses — the fast path when the
    /// caller knows the pattern (e.g. sequential per-lane slots).
    #[inline]
    pub fn shared_access_uniform(&mut self, n: u64) {
        self.counters.shared_accesses += n;
    }

    /// One warp-wide shared-memory atomic batch of `ops` operations with
    /// `conflicts` same-slot serialization steps (callers usually obtain
    /// these from the hash-table insert results).
    #[inline]
    pub fn shared_atomic(&mut self, ops: u64, conflicts: u64) {
        self.counters.shared_atomics += ops;
        self.counters.shared_bank_conflicts += conflicts;
    }

    /// `n` plain warp instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.alu_instructions += n;
    }

    /// `n` warp intrinsics (`ballot`, `match_any`, `popc`, shuffles).
    #[inline]
    pub fn intrinsic(&mut self, n: u64) {
        self.counters.warp_intrinsics += n;
    }

    /// One block-wide reduction (costs log2(block threads) intrinsic steps
    /// in the cost model).
    #[inline]
    pub fn block_reduce(&mut self) {
        self.counters.block_reductions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cfg: &DeviceConfig) -> KernelCtx<'_> {
        KernelCtx::new(cfg)
    }

    #[test]
    fn coalesced_warp_read_is_four_sectors() {
        let cfg = DeviceConfig::titan_v();
        let mut k = ctx(&cfg);
        // 32 consecutive u32 loads = 128 contiguous bytes = 4 sectors.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        k.global_read(&addrs);
        assert_eq!(k.counters.global_read_sectors, 4);
    }

    #[test]
    fn scattered_warp_read_is_thirtytwo_sectors() {
        let cfg = DeviceConfig::titan_v();
        let mut k = ctx(&cfg);
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        k.global_read(&addrs);
        assert_eq!(k.counters.global_read_sectors, 32);
    }

    #[test]
    fn seq_read_matches_explicit_addresses() {
        let cfg = DeviceConfig::titan_v();
        let mut a = ctx(&cfg);
        let mut b = ctx(&cfg);
        // 100 u32 elements starting at byte 36: bytes [36, 436) span
        // sectors 1..=13 -> 13 sectors.
        a.global_read_seq(36, 100, 4);
        assert_eq!(a.counters.global_read_sectors, 13);
        // Issuing the same range as 4 separate warp accesses re-touches the
        // sector straddling each warp boundary, costing up to one extra
        // sector per extra warp (real hardware re-issues those too).
        for chunk in (0..100u64).collect::<Vec<_>>().chunks(32) {
            let addrs: Vec<u64> = chunk.iter().map(|i| 36 + i * 4).collect();
            b.global_read(&addrs);
        }
        let explicit = b.counters.global_read_sectors;
        assert!((13..=13 + 3).contains(&explicit), "{explicit}");
    }

    #[test]
    fn atomic_conflicts_counted() {
        let cfg = DeviceConfig::titan_v();
        let mut k = ctx(&cfg);
        k.global_atomic(&[64, 64, 64, 128]);
        assert_eq!(k.counters.global_atomics, 4);
        assert_eq!(k.counters.global_atomic_conflicts, 2);
    }

    #[test]
    fn bank_conflicts_use_max_multiplicity() {
        let cfg = DeviceConfig::titan_v();
        let mut k = ctx(&cfg);
        // banks 0,0,0,1 -> max multiplicity 3 -> 2 extra steps
        k.shared_access(&[0, 32, 64, 1]);
        assert_eq!(k.counters.shared_accesses, 1);
        assert_eq!(k.counters.shared_bank_conflicts, 2);
    }

    #[test]
    fn zero_count_seq_access_is_free() {
        let cfg = DeviceConfig::titan_v();
        let mut k = ctx(&cfg);
        k.global_read_seq(1234, 0, 4);
        k.global_write_seq(1234, 0, 4);
        assert_eq!(k.counters.global_sectors(), 0);
    }
}
