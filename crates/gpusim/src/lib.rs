//! # glp-gpusim — a deterministic software model of a CUDA-class GPU
//!
//! The GLP paper runs on an NVIDIA Titan V. This reproduction has no GPU, so
//! every "GPU" kernel in the workspace executes against this crate instead:
//! plain Rust code structured warp-centrically, with every architecturally
//! significant event **accounted** — and a calibrated cost model that turns
//! event counts into modeled elapsed time.
//!
//! What is modeled (because the paper's results hinge on it):
//!
//! * **Warp lock-step execution** — 32 lanes issue together; a warp that
//!   keeps only 3 lanes busy still pays full warp-instruction cost. This is
//!   what makes one-warp-one-vertex wasteful on road networks (§4.2).
//! * **Global-memory coalescing** — a warp-wide access is charged one
//!   32-byte sector per distinct sector touched. 32 random 4-byte reads cost
//!   8x the bytes of one contiguous 128-byte read. This is what punishes
//!   per-vertex global hash tables (§4.1).
//! * **Shared memory** — a small per-block arena with capacity enforcement
//!   and bank-conflict accounting; accesses cost ~1 cycle instead of ~400.
//! * **Atomics** — within-warp address conflicts serialize.
//! * **Warp intrinsics** — `__ballot_sync`, `__match_any_sync`, `__popc`
//!   and block-wide reduction, all a few cycles (§4.2's mechanism).
//! * **PCIe transfers** — for the hybrid out-of-core mode (§3.1, §5.4).
//! * **Host hardware** — CPU and cluster cost models for the CPU baselines
//!   and the simulated in-house distributed solution (§5.4), so every
//!   reported time is in the same modeled unit.
//!
//! What is *not* modeled: instruction pipelines, caches beyond an L2 proxy
//! for the G-Hash baseline, and warp scheduling order. The cost model is a
//! roofline — `max(compute, memory) + launch overhead` — which preserves
//! the relative behavior the paper measures. Constants live in
//! [`cost::CostModel`] with datasheet citations.

pub mod config;
pub mod cost;
pub mod counters;
pub mod device;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod host;
pub mod kernel;
pub mod multi;
pub mod profile;
pub mod shared;
pub mod warp;

pub use config::DeviceConfig;
pub use cost::{CostModel, SECTOR_BYTES};
pub use counters::KernelCounters;
pub use device::{Device, KernelRecord};
pub use error::DeviceError;
pub use kernel::KernelCtx;
pub use multi::MultiGpu;
pub use profile::DeviceProfile;
pub use shared::SharedMem;
pub use warp::{ballot_sync, lanes_init, match_any_sync, popc, WARP_SIZE};
