//! Deterministic fault injection for the simulated device (feature
//! `fault-injection` only).
//!
//! Two injector families live here:
//!
//! * **Stalls** — kernels get *slow* (a thermally throttled card, a
//!   congested PCIe link, a noisy neighbour on a shared GPU). Armed with
//!   [`inject_kernel_stall`]; served at the kernel-launch boundary every
//!   engine funnels through ([`KernelCtx::new`](crate::KernelCtx::new)).
//!   Stalls perturb *time only* — counters and results are untouched, so
//!   determinism assertions hold across stalled and unstalled runs.
//! * **Failures** — kernels *die* ([`FaultKind`]): a launch is rejected, a
//!   watchdog fires, a device falls off the bus, an upload exhausts device
//!   memory, a harness shard panics. Armed per device with
//!   [`inject_fault`] (or derived from a seed with [`seeded_fault`]);
//!   consumed by [`Device`](crate::Device) at its fallible launch/upload
//!   boundaries and surfaced as
//!   [`DeviceError`](crate::DeviceError) `Result`s, so the whole path
//!   above (engine retry, degradation ladder, recluster worker, health
//!   reporting) experiences the fault exactly as it would experience real
//!   failing hardware.
//!
//! Plans target a specific [`Device::id`](crate::Device::id), so
//! concurrently running tests do not trip each other's faults. Always
//! [`clear`] (or [`clear_device`]) in tests that arm anything.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static STALL_LAUNCHES: AtomicU32 = AtomicU32::new(0);
static STALL_MICROS: AtomicU64 = AtomicU64::new(0);
static STALLS_SERVED: AtomicU64 = AtomicU64::new(0);

/// Arms the injector: the next `launches` kernel launches each sleep for
/// `micros` microseconds before executing.
pub fn inject_kernel_stall(launches: u32, micros: u64) {
    STALL_MICROS.store(micros, Ordering::Release);
    STALL_LAUNCHES.store(launches, Ordering::Release);
}

/// Disarms every injector: pending stalls and every armed failure plan.
pub fn clear() {
    STALL_LAUNCHES.store(0, Ordering::Release);
    STALL_MICROS.store(0, Ordering::Release);
    PLANS.lock().expect("fault registry").clear();
}

/// Stalls served since process start (diagnostic; lets tests assert the
/// hook actually fired).
pub fn stalls_served() -> u64 {
    STALLS_SERVED.load(Ordering::Acquire)
}

/// Called by [`KernelCtx::new`](crate::KernelCtx::new) on every kernel
/// launch; sleeps if a stall is armed.
pub(crate) fn on_kernel_launch() {
    // Decrement-if-positive without underflow: lost races just mean a
    // stall fewer, which only ever shortens the injected delay.
    let mut left = STALL_LAUNCHES.load(Ordering::Acquire);
    while left > 0 {
        match STALL_LAUNCHES.compare_exchange_weak(
            left,
            left - 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                let micros = STALL_MICROS.load(Ordering::Acquire);
                if micros > 0 {
                    std::thread::sleep(Duration::from_micros(micros));
                }
                STALLS_SERVED.fetch_add(1, Ordering::AcqRel);
                return;
            }
            Err(now) => left = now,
        }
    }
}

/// The failing-fault taxonomy. `LaunchFail`, `Timeout` and `ShardPanic`
/// are transient (the next attempt may succeed); `DeviceLost` is sticky on
/// the targeted device; `Oom` is consumed by the next upload instead of
/// the next launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The Nth kernel launch is rejected.
    LaunchFail,
    /// The Nth kernel launch trips the watchdog timeout.
    Timeout,
    /// The Nth kernel launch finds the device gone; the device stays lost.
    DeviceLost,
    /// One harness shard of the Nth (parallel) kernel launch panics.
    ShardPanic,
    /// The Nth *upload* on the device exceeds simulated device memory.
    Oom,
}

/// One armed failure: fires on the `after`-th subsequent launch (or
/// upload, for [`FaultKind::Oom`]) observed on `device`, 0-based — i.e.
/// `after` operations succeed first.
#[derive(Clone, Copy, Debug)]
struct Plan {
    device: u32,
    kind: FaultKind,
    after: u32,
}

static PLANS: Mutex<Vec<Plan>> = Mutex::new(Vec::new());
static FAULTS_SERVED: AtomicU64 = AtomicU64::new(0);

/// Arms one failure against device `device`
/// ([`Device::id`](crate::Device::id)): `after` launches (uploads for
/// [`FaultKind::Oom`]) succeed, then the next one fails with `kind`.
/// One-shot — the plan is removed when it fires.
pub fn inject_fault(device: u32, kind: FaultKind, after: u32) {
    PLANS.lock().expect("fault registry").push(Plan {
        device,
        kind,
        after,
    });
}

/// Derives a failure deterministically from `seed` — the kind from the
/// low bits, the launch index uniformly in `0..window` — arms it against
/// `device`, and returns it so the test can assert against the drawn plan.
pub fn seeded_fault(device: u32, seed: u64, window: u32) -> (FaultKind, u32) {
    // splitmix64: the workspace's stateless mixing function of choice.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let kind = match z % 4 {
        0 => FaultKind::LaunchFail,
        1 => FaultKind::Timeout,
        2 => FaultKind::DeviceLost,
        _ => FaultKind::ShardPanic,
    };
    let after = ((z >> 32) % u64::from(window.max(1))) as u32;
    inject_fault(device, kind, after);
    (kind, after)
}

/// Removes every armed failure against `device` (stalls are global and
/// unaffected).
pub fn clear_device(device: u32) {
    PLANS
        .lock()
        .expect("fault registry")
        .retain(|p| p.device != device);
}

/// Failures fired since process start (diagnostic; lets tests assert the
/// injection actually happened).
pub fn faults_served() -> u64 {
    FAULTS_SERVED.load(Ordering::Acquire)
}

/// Consumes the first due launch-boundary failure for `device`, advancing
/// every other armed launch plan on that device by one observed launch.
pub(crate) fn take_launch_fault(device: u32) -> Option<FaultKind> {
    take_fault(device, false)
}

/// Consumes the first due upload-boundary ([`FaultKind::Oom`]) failure for
/// `device`, advancing other armed upload plans on that device.
pub(crate) fn take_upload_fault(device: u32) -> Option<FaultKind> {
    take_fault(device, true)
}

fn take_fault(device: u32, upload: bool) -> Option<FaultKind> {
    let mut plans = PLANS.lock().expect("fault registry");
    let mut fired: Option<FaultKind> = None;
    let mut fired_at: Option<usize> = None;
    for (i, p) in plans.iter_mut().enumerate() {
        if p.device != device || (p.kind == FaultKind::Oom) != upload {
            continue;
        }
        if p.after == 0 {
            if fired.is_none() {
                fired = Some(p.kind);
                fired_at = Some(i);
            }
        } else {
            p.after -= 1;
        }
    }
    if let Some(i) = fired_at {
        plans.remove(i);
        FAULTS_SERVED.fetch_add(1, Ordering::AcqRel);
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::KernelCtx;
    use std::time::Instant;

    #[test]
    fn armed_stall_delays_exactly_n_launches() {
        clear();
        let cfg = DeviceConfig::default();
        inject_kernel_stall(2, 20_000);
        let before = stalls_served();
        let t0 = Instant::now();
        let _a = KernelCtx::new(&cfg);
        let _b = KernelCtx::new(&cfg);
        let stalled = t0.elapsed();
        assert!(stalled >= Duration::from_millis(30), "stalls not served");
        assert_eq!(stalls_served() - before, 2);
        // Disarmed now: further launches are unaffected.
        let t1 = Instant::now();
        let _c = KernelCtx::new(&cfg);
        assert!(t1.elapsed() < Duration::from_millis(15));
        clear();
    }

    #[test]
    fn plan_fires_on_the_nth_launch_and_only_there() {
        // Use an id far outside what Device's counter hands out in any
        // realistic test run so concurrent tests never observe this plan.
        let dev = 0xFAB0_0001;
        inject_fault(dev, FaultKind::LaunchFail, 2);
        assert_eq!(take_launch_fault(dev), None);
        assert_eq!(take_launch_fault(dev), None);
        let before = faults_served();
        assert_eq!(take_launch_fault(dev), Some(FaultKind::LaunchFail));
        assert_eq!(faults_served(), before + 1);
        // One-shot: the plan is gone.
        assert_eq!(take_launch_fault(dev), None);
    }

    #[test]
    fn plans_are_per_device_and_per_boundary() {
        let a = 0xFAB0_0002;
        let b = 0xFAB0_0003;
        inject_fault(a, FaultKind::Oom, 0);
        inject_fault(b, FaultKind::Timeout, 0);
        // Launches never consume OOM plans; uploads never consume launch
        // plans; device a never sees device b's plan.
        assert_eq!(take_launch_fault(a), None);
        assert_eq!(take_upload_fault(b), None);
        assert_eq!(take_upload_fault(a), Some(FaultKind::Oom));
        assert_eq!(take_launch_fault(b), Some(FaultKind::Timeout));
    }

    #[test]
    fn seeded_fault_is_deterministic() {
        let dev = 0xFAB0_0004;
        let (k1, n1) = seeded_fault(dev, 42, 10);
        clear_device(dev);
        let (k2, n2) = seeded_fault(dev, 42, 10);
        assert_eq!((k1, n1), (k2, n2));
        assert!(n1 < 10);
        clear_device(dev);
        assert_eq!(take_launch_fault(dev), None);
        assert_eq!(take_upload_fault(dev), None);
    }
}
