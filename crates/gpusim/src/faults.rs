//! Deterministic fault injection for the simulated device (feature
//! `fault-injection` only).
//!
//! The serving stack needs to rehearse *slow hardware*: a recluster whose
//! LP kernels suddenly take orders of magnitude longer (a thermally
//! throttled card, a congested PCIe link, a noisy neighbour on a shared
//! GPU). Rather than sleeping somewhere in the serving layer — which
//! would test nothing below it — the stall is injected here, at the
//! kernel-launch boundary every engine in the workspace funnels through
//! ([`KernelCtx::new`](crate::KernelCtx::new)), so the whole path above
//! (engine sharding, recluster worker, staleness gate, health reporting)
//! experiences it exactly as it would experience a real slow device.
//!
//! The injector is a pair of process-global atomics: arm it with
//! [`inject_kernel_stall`] and the next `launches` kernel launches each
//! sleep for `micros` microseconds. Stalls perturb *time only* — counters
//! and results are untouched, so determinism assertions hold across
//! stalled and unstalled runs. Always [`clear`] in tests that arm it.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

static STALL_LAUNCHES: AtomicU32 = AtomicU32::new(0);
static STALL_MICROS: AtomicU64 = AtomicU64::new(0);
static STALLS_SERVED: AtomicU64 = AtomicU64::new(0);

/// Arms the injector: the next `launches` kernel launches each sleep for
/// `micros` microseconds before executing.
pub fn inject_kernel_stall(launches: u32, micros: u64) {
    STALL_MICROS.store(micros, Ordering::Release);
    STALL_LAUNCHES.store(launches, Ordering::Release);
}

/// Disarms the injector.
pub fn clear() {
    STALL_LAUNCHES.store(0, Ordering::Release);
    STALL_MICROS.store(0, Ordering::Release);
}

/// Stalls served since process start (diagnostic; lets tests assert the
/// hook actually fired).
pub fn stalls_served() -> u64 {
    STALLS_SERVED.load(Ordering::Acquire)
}

/// Called by [`KernelCtx::new`](crate::KernelCtx::new) on every kernel
/// launch; sleeps if a stall is armed.
pub(crate) fn on_kernel_launch() {
    // Decrement-if-positive without underflow: lost races just mean a
    // stall fewer, which only ever shortens the injected delay.
    let mut left = STALL_LAUNCHES.load(Ordering::Acquire);
    while left > 0 {
        match STALL_LAUNCHES.compare_exchange_weak(
            left,
            left - 1,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                let micros = STALL_MICROS.load(Ordering::Acquire);
                if micros > 0 {
                    std::thread::sleep(Duration::from_micros(micros));
                }
                STALLS_SERVED.fetch_add(1, Ordering::AcqRel);
                return;
            }
            Err(now) => left = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::KernelCtx;
    use std::time::Instant;

    #[test]
    fn armed_stall_delays_exactly_n_launches() {
        clear();
        let cfg = DeviceConfig::default();
        inject_kernel_stall(2, 20_000);
        let before = stalls_served();
        let t0 = Instant::now();
        let _a = KernelCtx::new(&cfg);
        let _b = KernelCtx::new(&cfg);
        let stalled = t0.elapsed();
        assert!(stalled >= Duration::from_millis(30), "stalls not served");
        assert_eq!(stalls_served() - before, 2);
        // Disarmed now: further launches are unaffected.
        let t1 = Instant::now();
        let _c = KernelCtx::new(&cfg);
        assert!(t1.elapsed() < Duration::from_millis(15));
        clear();
    }
}
