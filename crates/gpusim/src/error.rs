//! Typed device faults surfaced at the launch/transfer boundaries.
//!
//! Real LP fleets lose cards, trip kernel watchdogs, and run out of device
//! memory; a simulator that can only make kernels *slow* (the stall
//! injector in [`faults`](crate::faults)) cannot rehearse any of that.
//! Every fallible entry point of [`Device`](crate::Device) —
//! [`launch`](crate::Device::launch),
//! [`launch_parallel`](crate::Device::launch_parallel) and
//! [`upload`](crate::Device::upload) — returns one of these errors, which
//! the engine layer converts into its own `EngineError`.

use std::fmt;

/// A fault raised by one simulated device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The device fell off the bus. Sticky: every later operation on the
    /// same device fails with `Lost` until the device object is dropped —
    /// a lost card does not come back.
    Lost {
        /// Process-unique device id ([`Device::id`](crate::Device::id)).
        device: u32,
    },
    /// One kernel launch was rejected (driver error, transient). The next
    /// launch may succeed.
    LaunchFailed {
        /// Device the launch targeted.
        device: u32,
        /// Kernel name as passed to `launch`.
        kernel: &'static str,
    },
    /// The watchdog killed a kernel that ran too long (transient: the
    /// relaunched kernel gets a fresh budget).
    Timeout {
        /// Device the kernel ran on.
        device: u32,
        /// Kernel name as passed to `launch`.
        kernel: &'static str,
    },
    /// An allocation did not fit in device memory.
    OutOfMemory {
        /// Device the upload targeted.
        device: u32,
        /// Bytes the failing upload requested.
        requested: u64,
        /// Bytes resident before the upload.
        resident: u64,
        /// Device memory capacity.
        capacity: u64,
    },
    /// A harness shard of a parallel launch panicked; the launch produced
    /// no result (transient from the device's point of view — the card
    /// itself is fine).
    ShardPanicked {
        /// Device the launch targeted.
        device: u32,
        /// Index of the first shard that panicked.
        shard: usize,
    },
}

impl DeviceError {
    /// The id of the device that raised the fault.
    pub fn device(&self) -> u32 {
        match *self {
            DeviceError::Lost { device }
            | DeviceError::LaunchFailed { device, .. }
            | DeviceError::Timeout { device, .. }
            | DeviceError::OutOfMemory { device, .. }
            | DeviceError::ShardPanicked { device, .. } => device,
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeviceError::Lost { device } => write!(f, "device {device} lost"),
            DeviceError::LaunchFailed { device, kernel } => {
                write!(f, "kernel `{kernel}` launch failed on device {device}")
            }
            DeviceError::Timeout { device, kernel } => {
                write!(
                    f,
                    "kernel `{kernel}` hit the watchdog timeout on device {device}"
                )
            }
            DeviceError::OutOfMemory {
                device,
                requested,
                resident,
                capacity,
            } => write!(
                f,
                "device {device} out of memory: {requested} B requested, \
                 {resident}/{capacity} B resident"
            ),
            DeviceError::ShardPanicked { device, shard } => {
                write!(f, "kernel shard {shard} panicked on device {device}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_device() {
        let e = DeviceError::Lost { device: 3 };
        assert_eq!(e.to_string(), "device 3 lost");
        assert_eq!(e.device(), 3);
        let e = DeviceError::OutOfMemory {
            device: 1,
            requested: 10,
            resident: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("10 B requested"));
        assert_eq!(e.device(), 1);
    }
}
