//! Warp-level primitives.
//!
//! A warp is 32 lanes executing in lock-step. Kernels in this workspace are
//! written warp-centrically: per-lane state lives in `[T; WARP_SIZE]` arrays
//! and the intrinsics below operate on whole lane arrays at once, exactly
//! mirroring their CUDA counterparts (`__ballot_sync`, `__match_any_sync`,
//! `__popc` — paper §4.2, Figure 3).
//!
//! These functions are *pure*; the caller accounts their cost through
//! [`crate::kernel::KernelCtx::intrinsic`].

/// Lanes per warp.
pub const WARP_SIZE: usize = 32;

/// A full-warp participation mask.
pub const FULL_MASK: u32 = u32::MAX;

/// Builds a lane array initialized to `val` (the idiom for declaring
/// per-lane registers).
#[inline]
pub fn lanes_init<T: Copy>(val: T) -> [T; WARP_SIZE] {
    [val; WARP_SIZE]
}

/// `__ballot_sync`: returns the bit mask of lanes in `active` whose
/// predicate is true. Bit `i` corresponds to lane `i`.
#[inline]
pub fn ballot_sync(active: u32, preds: &[bool; WARP_SIZE]) -> u32 {
    let mut mask = 0u32;
    for (lane, &p) in preds.iter().enumerate() {
        if p && (active >> lane) & 1 == 1 {
            mask |= 1 << lane;
        }
    }
    mask
}

/// `__match_any_sync`: for each active lane, the bit mask of active lanes
/// holding the same value. Inactive lanes receive 0.
#[inline]
pub fn match_any_sync(active: u32, vals: &[u64; WARP_SIZE]) -> [u32; WARP_SIZE] {
    let mut out = [0u32; WARP_SIZE];
    for lane in 0..WARP_SIZE {
        if (active >> lane) & 1 == 0 {
            continue;
        }
        if out[lane] != 0 {
            continue; // already filled by an earlier matching lane
        }
        let mut mask = 0u32;
        for peer in lane..WARP_SIZE {
            if (active >> peer) & 1 == 1 && vals[peer] == vals[lane] {
                mask |= 1 << peer;
            }
        }
        // All lanes in the group receive the same mask.
        let mut rest = mask;
        while rest != 0 {
            let l = rest.trailing_zeros() as usize;
            out[l] = mask;
            rest &= rest - 1;
        }
    }
    out
}

/// `__popc`: population count.
#[inline]
pub fn popc(x: u32) -> u32 {
    x.count_ones()
}

/// `__shfl_down`-style warp max-reduction over the active lanes; returns the
/// maximum of `(key, lane)` pairs so callers can also learn *which* lane won
/// (ties broken toward the lower lane). Returns `None` if no lane is active.
#[inline]
pub fn warp_reduce_max(active: u32, keys: &[f64; WARP_SIZE]) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (lane, &key) in keys.iter().enumerate() {
        if (active >> lane) & 1 == 1 {
            let better = match best {
                None => true,
                Some((bk, _)) => key > bk,
            };
            if better {
                best = Some((key, lane));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_respects_active_mask() {
        let mut preds = [true; WARP_SIZE];
        preds[3] = false;
        // Only lanes 0..=4 active; lane 3's predicate is false.
        let m = ballot_sync(0b1_1111, &preds);
        assert_eq!(m, 0b1_0111);
    }

    #[test]
    fn match_any_groups_equal_values() {
        // Figure 3's example shape: lanes 0,1 hold vertex 1; lanes 2,3,4
        // hold vertex 2; lane 5 idle.
        let mut vals = [0u64; WARP_SIZE];
        vals[0] = 1;
        vals[1] = 1;
        vals[2] = 2;
        vals[3] = 2;
        vals[4] = 2;
        let active = 0b1_1111;
        let masks = match_any_sync(active, &vals);
        assert_eq!(masks[0], 0b0_0011);
        assert_eq!(masks[1], 0b0_0011);
        assert_eq!(masks[2], 0b1_1100);
        assert_eq!(masks[4], 0b1_1100);
        assert_eq!(masks[5], 0); // inactive lane
    }

    #[test]
    fn match_any_frequency_via_popc() {
        // Paper Figure 3 step 4: label frequency = popcount of lmask.
        let mut vals = [99u64; WARP_SIZE];
        vals[2] = 7;
        vals[4] = 7;
        let masks = match_any_sync(FULL_MASK, &vals);
        assert_eq!(popc(masks[2]), 2);
        assert_eq!(popc(masks[0]), 30);
    }

    #[test]
    fn reduce_max_picks_lowest_lane_on_tie() {
        let mut keys = [f64::MIN; WARP_SIZE];
        keys[5] = 3.0;
        keys[9] = 3.0;
        keys[1] = 1.0;
        let (k, lane) = warp_reduce_max(FULL_MASK, &keys).unwrap();
        assert_eq!(k, 3.0);
        assert_eq!(lane, 5);
    }

    #[test]
    fn reduce_max_none_when_inactive() {
        let keys = [0.0; WARP_SIZE];
        assert!(warp_reduce_max(0, &keys).is_none());
    }
}
