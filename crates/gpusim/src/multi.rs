//! Multiple simulated GPUs in one machine (§5.4's two-Titan-V setup).
//!
//! Devices execute independently; at iteration barriers the modeled clocks
//! align to the slowest device plus a synchronization overhead (peer label
//! exchange goes over PCIe and is charged explicitly by the engine).

use crate::config::DeviceConfig;
use crate::device::Device;

/// A set of simulated GPUs with barrier-style synchronization.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Device>,
    /// Fixed per-barrier overhead in seconds (driver + event sync).
    pub sync_overhead_s: f64,
}

impl MultiGpu {
    /// `n` identical devices.
    pub fn new(n: usize, cfg: DeviceConfig) -> Self {
        assert!(n >= 1, "need at least one device");
        Self {
            devices: (0..n).map(|_| Device::new(cfg.clone())).collect(),
            sync_overhead_s: 10e-6,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are present (never for constructed values).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Mutable access to device `i`.
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    /// Shared access to device `i`.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// Iterates over devices.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Mutable iteration over devices.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Device> {
        self.devices.iter_mut()
    }

    /// Barrier: every *surviving* device's modeled clock advances to the
    /// slowest survivor's clock plus the sync overhead. Lost devices are
    /// skipped — their clocks froze when they fell off the bus, and no
    /// barrier waits for them.
    pub fn sync(&mut self) {
        let max = self.elapsed_seconds();
        for d in &mut self.devices {
            if d.is_lost() {
                continue;
            }
            let behind = max - d.elapsed_seconds();
            d.advance_clock(behind + self.sync_overhead_s);
        }
    }

    /// The set's modeled elapsed time: the slowest device still on the
    /// bus (all devices, when every one is lost).
    pub fn elapsed_seconds(&self) -> f64 {
        let alive = self
            .devices
            .iter()
            .filter(|d| !d.is_lost())
            .map(Device::elapsed_seconds)
            .fold(f64::NEG_INFINITY, f64::max);
        if alive.is_finite() {
            alive
        } else {
            self.devices
                .iter()
                .map(Device::elapsed_seconds)
                .fold(0.0, f64::max)
        }
    }

    /// Indices of devices still on the bus.
    pub fn survivors(&self) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_lost())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of devices still on the bus.
    pub fn alive(&self) -> usize {
        self.devices.iter().filter(|d| !d.is_lost()).count()
    }

    /// Resets all devices.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_aligns_clocks_to_slowest() {
        let mut m = MultiGpu::new(2, DeviceConfig::titan_v());
        m.device_mut(0)
            .launch("big", |ctx| ctx.alu(1_000_000_000))
            .unwrap();
        m.device_mut(1)
            .launch("small", |ctx| ctx.alu(1_000))
            .unwrap();
        let slow = m.device(0).elapsed_seconds();
        m.sync();
        let expect = slow + m.sync_overhead_s;
        assert!((m.device(0).elapsed_seconds() - expect).abs() < 1e-12);
        assert!((m.device(1).elapsed_seconds() - expect).abs() < 1e-12);
    }

    #[test]
    fn elapsed_is_max_over_devices() {
        let mut m = MultiGpu::new(3, DeviceConfig::titan_v());
        m.device_mut(2)
            .launch("k", |ctx| ctx.alu(5_000_000))
            .unwrap();
        assert_eq!(m.elapsed_seconds(), m.device(2).elapsed_seconds());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        MultiGpu::new(0, DeviceConfig::titan_v());
    }

    #[test]
    fn sync_and_elapsed_skip_lost_devices() {
        let mut m = MultiGpu::new(3, DeviceConfig::titan_v());
        m.device_mut(0)
            .launch("big", |ctx| ctx.alu(1_000_000_000))
            .unwrap();
        let frozen = m.device(0).elapsed_seconds();
        m.device_mut(0).mark_lost();
        m.device_mut(1)
            .launch("small", |ctx| ctx.alu(1_000))
            .unwrap();
        assert_eq!(m.survivors(), vec![1, 2]);
        assert_eq!(m.alive(), 2);
        // The set's clock follows the slowest survivor, not the (faster)
        // frozen clock of the lost card... unless everyone is ahead of it.
        let survivor_max = m
            .device(1)
            .elapsed_seconds()
            .max(m.device(2).elapsed_seconds());
        assert_eq!(m.elapsed_seconds(), survivor_max);
        m.sync();
        // Lost clock untouched; survivors aligned.
        assert_eq!(m.device(0).elapsed_seconds(), frozen);
        assert!((m.device(1).elapsed_seconds() - m.device(2).elapsed_seconds()).abs() < 1e-12);
    }
}
