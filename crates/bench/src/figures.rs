//! Shared runner for the speedup figures (Figures 4–6): rows are datasets,
//! columns are approaches, cells are speedups over the OMP baseline, the
//! paper's presentation.

use crate::approaches::{run_algo, Algo, Approach};
use crate::cli::Args;
use crate::table::{fmt_seconds, print_table};
use glp_graph::datasets::{by_name, table2, DatasetSpec};

/// Datasets selected by `--datasets a,b,c` (default: all of Table 2) at
/// `--scale-mul k` times the registry's default scale divisor (default 4,
/// so default runs stay laptop-quick; use `--scale-mul 1` for the full
/// reproduction sizes).
pub fn selected_datasets(args: &Args) -> Vec<(DatasetSpec, u64)> {
    let scale_mul: u64 = args.get("scale-mul", 4);
    assert!(scale_mul >= 1, "--scale-mul must be at least 1");
    let specs: Vec<DatasetSpec> = match args.get_str("datasets") {
        Some(names) => names
            .split(',')
            .map(|n| by_name(n.trim()).unwrap_or_else(|| panic!("unknown dataset {n:?}")))
            .collect(),
        None => table2(),
    };
    specs
        .into_iter()
        .map(|s| {
            let scale = s.default_scale * scale_mul;
            (s, scale)
        })
        .collect()
}

/// Runs one speedup figure: every approach × every selected dataset,
/// summing modeled time over `algos` (the LLP figure sums its γ sweep),
/// and prints speedups over OMP.
pub fn run_speedup_figure(title: &str, algos: &[Algo], args: &Args) {
    let iterations: u32 = args.get("iters", 20);
    let datasets = selected_datasets(args);
    println!("{title}");
    println!(
        "(modeled time; speedup over OMP; {} iterations per algorithm run)",
        iterations
    );

    let approaches = Approach::all();
    let mut rows = Vec::new();
    for (spec, scale) in &datasets {
        eprintln!("... {} (scale 1/{scale})", spec.name);
        let g = spec.generate_scaled(*scale);
        let mut seconds = vec![None::<f64>; approaches.len()];
        for (i, a) in approaches.iter().enumerate() {
            if algos.iter().any(|&al| !a.supports(al)) {
                continue;
            }
            let total: f64 = algos
                .iter()
                .map(|&al| run_algo(*a, &g, al, iterations).modeled_seconds)
                .sum();
            seconds[i] = Some(total);
        }
        let omp = seconds[2].expect("OMP always runs");
        let mut row = vec![
            spec.name.to_string(),
            format!("{}", g.num_vertices()),
            format!("{}", g.num_edges()),
            fmt_seconds(omp),
        ];
        for s in &seconds {
            row.push(match s {
                Some(s) => format!("{:.1}x", omp / s),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["dataset", "|V|", "|E|", "OMP time"];
    headers.extend(approaches.iter().map(|a| a.name()));
    print_table(&headers, &rows);

    // Structured output for downstream tooling.
    if let Some(path) = args.get_str("json") {
        let doc = serde_json::json!({
            "title": title,
            "iterations": iterations,
            "headers": headers,
            "rows": rows.clone(),
        });
        std::fs::write(
            path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        )
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    // The paper's headline averages: GLP over G-Sort and G-Hash.
    let avg = |num: usize, den: usize| -> Option<f64> {
        let ratios: Vec<f64> = rows
            .iter()
            .filter_map(|r| {
                let a: f64 = r[4 + num].strip_suffix('x')?.parse().ok()?;
                let b: f64 = r[4 + den].strip_suffix('x')?.parse().ok()?;
                (b > 0.0).then_some(a / b)
            })
            .collect();
        (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
    };
    if let (Some(vs_gsort), Some(vs_ghash)) = (avg(5, 3), avg(5, 4)) {
        println!("\nGLP average speedup: {vs_gsort:.1}x over G-Sort, {vs_ghash:.1}x over G-Hash");
        println!("(paper: 4.5x over G-Sort, 7x over G-Hash on classic LP)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn default_selection_is_all_eight_scaled() {
        let sel = selected_datasets(&args(""));
        assert_eq!(sel.len(), 8);
        for (spec, scale) in &sel {
            assert_eq!(*scale, spec.default_scale * 4);
        }
    }

    #[test]
    fn explicit_selection_and_scale() {
        let sel = selected_datasets(&args("--datasets dblp,twitter --scale-mul 8"));
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].0.name, "dblp");
        assert_eq!(sel[0].1, 8);
        assert_eq!(sel[1].0.name, "twitter");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_rejected() {
        selected_datasets(&args("--datasets orkut"));
    }
}
