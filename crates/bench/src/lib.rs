//! # glp-bench — harness regenerating every table and figure of the paper
//!
//! One binary per experiment (see `DESIGN.md`'s experiment index):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table2_datasets` | Table 2 — dataset statistics |
//! | `fig4_classic`    | Figure 4 — classic-LP speedups over OMP |
//! | `fig5_llp`        | Figure 5 — LLP speedups over OMP |
//! | `fig6_slp`        | Figure 6 — SLP speedups over OMP |
//! | `table3_ablation` | Table 3 — smem / smem+warp speedups over global |
//! | `table4_windows`  | Table 4 — sliding-window workload sizes |
//! | `fig7_pipeline`   | Figure 7 — GLP (1 & 2 GPUs) vs the in-house cluster |
//! | `ablation_sketch` | extra: HT/CMS geometry sweep (Theorem 1 in practice) |
//! | `ablation_thresholds` | extra: degree-dispatch threshold sweep |
//! | `quality_sweep`   | extra: detection quality (NMI/purity/modularity) vs mixing; LLP resolution effect |
//! | `glp`             | the CLI: generate / run / profile / info |
//!
//! Every time printed is **modeled time** from the workspace cost models
//! (GPU, CPU, cluster) — deterministic and unit-consistent across
//! approaches; see `DESIGN.md` for the calibration story. Host wall-clock
//! of the simulation itself is reported separately where useful.

pub mod approaches;
pub mod cli;
pub mod figures;
pub mod table;
pub mod workloads;

pub use approaches::{run_algo, Algo, Approach};
pub use cli::Args;
pub use table::print_table;
