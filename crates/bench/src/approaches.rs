//! Unified dispatch over the six compared approaches and three LP
//! algorithms of §5.1–5.2.

use glp_baselines::{CpuLp, CpuLpConfig, GHashLp, GSortLp};
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Llp, LpProgram, LpRunReport, Slp};
use glp_graph::Graph;

/// The compared approaches of §5.1 in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// TigerGraph on multicore CPUs (classic LP only).
    Tg,
    /// Ligra on multicore CPUs.
    Ligra,
    /// OpenMP parallel-for LP (the speedup baseline of Figures 4–6).
    Omp,
    /// Segmented-sort GPU LP.
    GSort,
    /// Per-vertex global-hash GPU LP.
    GHash,
    /// This paper's system.
    Glp,
}

impl Approach {
    /// All six, in the paper's presentation order.
    pub fn all() -> [Approach; 6] {
        [
            Approach::Tg,
            Approach::Ligra,
            Approach::Omp,
            Approach::GSort,
            Approach::GHash,
            Approach::Glp,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Tg => "TG",
            Approach::Ligra => "Ligra",
            Approach::Omp => "OMP",
            Approach::GSort => "G-Sort",
            Approach::GHash => "G-Hash",
            Approach::Glp => "GLP",
        }
    }

    /// Whether the approach supports non-classic variants (§5.1: "TG only
    /// supports the classic LP").
    pub fn supports(&self, algo: Algo) -> bool {
        !matches!((self, algo), (Approach::Tg, Algo::Llp(_) | Algo::Slp(_)))
    }
}

/// The evaluated LP algorithms with their benchmark parameters (§5.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algo {
    /// Classic LP, 20 iterations.
    Classic,
    /// LLP with resolution γ, 20 iterations per γ.
    Llp(f64),
    /// SLP, ≤5 labels per vertex, 20 iterations, given draw seed.
    Slp(u64),
}

fn run_with<P: LpProgram>(approach: Approach, g: &Graph, prog: &mut P) -> LpRunReport {
    match approach {
        Approach::Tg => CpuLp::tigergraph(CpuLpConfig::default()).run(g, prog),
        Approach::Ligra => CpuLp::ligra(CpuLpConfig::default()).run(g, prog),
        Approach::Omp => CpuLp::omp(CpuLpConfig::default()).run(g, prog),
        Approach::GSort => GSortLp::titan_v().run(g, prog),
        Approach::GHash => GHashLp::titan_v().run(g, prog),
        Approach::Glp => GpuEngine::titan_v().run(g, prog),
    }
}

/// Runs `algo` on `g` with `approach` for up to `iterations` rounds.
///
/// # Panics
/// Panics if the approach does not support the algorithm (TG + LLP/SLP).
pub fn run_algo(approach: Approach, g: &Graph, algo: Algo, iterations: u32) -> LpRunReport {
    assert!(
        approach.supports(algo),
        "{} does not support {algo:?}",
        approach.name()
    );
    let n = g.num_vertices();
    match algo {
        Algo::Classic => run_with(
            approach,
            g,
            &mut ClassicLp::with_max_iterations(n, iterations),
        ),
        Algo::Llp(gamma) => run_with(
            approach,
            g,
            &mut Llp::with_max_iterations(n, gamma, iterations),
        ),
        Algo::Slp(seed) => run_with(
            approach,
            g,
            &mut Slp::with_params(n, 5, 0.2, iterations, seed),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_graph::gen::caveman;

    #[test]
    fn every_supported_pair_runs() {
        let g = caveman(4, 6);
        for a in Approach::all() {
            for algo in [Algo::Classic, Algo::Llp(2.0), Algo::Slp(7)] {
                if a.supports(algo) {
                    let r = run_algo(a, &g, algo, 3);
                    assert!(r.iterations >= 1, "{} {algo:?}", a.name());
                    assert!(r.modeled_seconds > 0.0);
                }
            }
        }
    }

    #[test]
    fn tg_rejects_variants() {
        assert!(!Approach::Tg.supports(Algo::Llp(1.0)));
        assert!(!Approach::Tg.supports(Algo::Slp(1)));
        assert!(Approach::Tg.supports(Algo::Classic));
    }
}
