//! Unified dispatch over the six compared approaches and three LP
//! algorithms of §5.1–5.2, all driven through the [`Engine`] trait.

use glp_baselines::{CpuLp, CpuLpConfig, GHashLp, GSortLp};
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Engine, FrontierMode, Llp, LpRunReport, RunOptions, Slp};
use glp_graph::Graph;

/// The compared approaches of §5.1 in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// TigerGraph on multicore CPUs (classic LP only).
    Tg,
    /// Ligra on multicore CPUs.
    Ligra,
    /// OpenMP parallel-for LP (the speedup baseline of Figures 4–6).
    Omp,
    /// Segmented-sort GPU LP.
    GSort,
    /// Per-vertex global-hash GPU LP.
    GHash,
    /// This paper's system.
    Glp,
}

impl Approach {
    /// All six, in the paper's presentation order.
    pub fn all() -> [Approach; 6] {
        [
            Approach::Tg,
            Approach::Ligra,
            Approach::Omp,
            Approach::GSort,
            Approach::GHash,
            Approach::Glp,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::Tg => "TG",
            Approach::Ligra => "Ligra",
            Approach::Omp => "OMP",
            Approach::GSort => "G-Sort",
            Approach::GHash => "G-Hash",
            Approach::Glp => "GLP",
        }
    }

    /// Whether the approach supports non-classic variants (§5.1: "TG only
    /// supports the classic LP").
    pub fn supports(&self, algo: Algo) -> bool {
        !matches!((self, algo), (Approach::Tg, Algo::Llp(_) | Algo::Slp(_)))
    }

    /// A freshly constructed engine for this approach — the only place in
    /// the benchmark suite that names a concrete engine type.
    pub fn engine(&self) -> Box<dyn Engine> {
        match self {
            Approach::Tg => Box::new(CpuLp::tigergraph(CpuLpConfig::default())),
            Approach::Ligra => Box::new(CpuLp::ligra(CpuLpConfig::default())),
            Approach::Omp => Box::new(CpuLp::omp(CpuLpConfig::default())),
            Approach::GSort => Box::new(GSortLp::titan_v()),
            Approach::GHash => Box::new(GHashLp::titan_v()),
            Approach::Glp => Box::new(GpuEngine::titan_v()),
        }
    }

    /// The approach's historical scheduling personality: only Ligra and
    /// GLP are frontier systems; everyone else rescans every vertex every
    /// iteration (§2.2).
    pub fn frontier(&self) -> FrontierMode {
        match self {
            Approach::Ligra | Approach::Glp => FrontierMode::Auto,
            _ => FrontierMode::Dense,
        }
    }

    /// Run options matching the approach's personality with the given
    /// iteration cap.
    pub fn options(&self, iterations: u32) -> RunOptions {
        RunOptions::default()
            .with_max_iterations(iterations)
            .with_frontier(self.frontier())
    }
}

/// The evaluated LP algorithms with their benchmark parameters (§5.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algo {
    /// Classic LP, 20 iterations.
    Classic,
    /// LLP with resolution γ, 20 iterations per γ.
    Llp(f64),
    /// SLP, ≤5 labels per vertex, 20 iterations, given draw seed.
    Slp(u64),
}

/// Runs `algo` on `g` with `approach` for up to `iterations` rounds.
///
/// # Panics
/// Panics if the approach does not support the algorithm (TG + LLP/SLP).
pub fn run_algo(approach: Approach, g: &Graph, algo: Algo, iterations: u32) -> LpRunReport {
    assert!(
        approach.supports(algo),
        "{} does not support {algo:?}",
        approach.name()
    );
    let n = g.num_vertices();
    let mut engine = approach.engine();
    let opts = approach.options(iterations);
    let outcome = match algo {
        Algo::Classic => engine.run(g, &mut ClassicLp::with_max_iterations(n, iterations), &opts),
        Algo::Llp(gamma) => engine.run(
            g,
            &mut Llp::with_max_iterations(n, gamma, iterations),
            &opts,
        ),
        Algo::Slp(seed) => engine.run(g, &mut Slp::with_params(n, 5, 0.2, iterations, seed), &opts),
    };
    // The benchmark devices are healthy (no fault injection): a fault here
    // is a harness bug, not a measurement.
    outcome.unwrap_or_else(|e| panic!("{} faulted on {algo:?}: {e}", approach.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_graph::gen::caveman;

    #[test]
    fn every_supported_pair_runs() {
        let g = caveman(4, 6);
        for a in Approach::all() {
            for algo in [Algo::Classic, Algo::Llp(2.0), Algo::Slp(7)] {
                if a.supports(algo) {
                    let r = run_algo(a, &g, algo, 3);
                    assert!(r.iterations >= 1, "{} {algo:?}", a.name());
                    assert!(r.modeled_seconds > 0.0);
                }
            }
        }
    }

    #[test]
    fn tg_rejects_variants() {
        assert!(!Approach::Tg.supports(Algo::Llp(1.0)));
        assert!(!Approach::Tg.supports(Algo::Slp(1)));
        assert!(Approach::Tg.supports(Algo::Classic));
    }

    #[test]
    fn engine_names_match_legend_names() {
        for a in Approach::all() {
            assert_eq!(a.engine().name(), a.name());
        }
    }
}
