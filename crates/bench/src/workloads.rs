//! Shared workload construction for the Table 4 / Figure 7 experiments.

use glp_fraud::{TxConfig, TxStream};

/// The transaction stream behind the sliding-window experiments, at
/// `1/scale` of the harness's full bench size (which itself stands in for
/// TaoBao's production volume at roughly 1/1500 of Table 4's |V|).
/// `scale = 4` (the binaries' default) keeps a full Figure 7 run in the
/// tens of seconds.
pub fn table4_stream(scale: u64) -> TxStream {
    assert!(scale >= 1, "scale must be at least 1");
    let s = scale as u32;
    TxStream::generate(&TxConfig {
        num_users: 600_000 / s,
        num_items: 200_000 / s,
        days: 100,
        tx_per_day: 60_000 / s,
        skew: 0.7,
        num_rings: 40 / s.min(8),
        ring_size: 25,
        ring_tx_per_day: 60,
        blacklist_fraction: 0.2,
        seed: 0xFA7D,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_fraud::WindowWorkload;

    #[test]
    fn scaled_stream_has_table4_shape() {
        let s = table4_stream(32);
        let w10 = WindowWorkload::build(&s, 10);
        let w100 = WindowWorkload::build(&s, 100);
        let v_ratio = w100.graph.num_vertices() as f64 / w10.graph.num_vertices() as f64;
        let e_ratio = w100.graph.num_edges() as f64 / w10.graph.num_edges() as f64;
        // Table 4: V grows ~2.2x from 10 to 100 days, E ~6x.
        assert!((1.3..4.0).contains(&v_ratio), "V ratio {v_ratio}");
        assert!(e_ratio > 3.0, "E ratio {e_ratio}");
        assert!(v_ratio < e_ratio);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use glp_core::engine::HybridEngine;
    use glp_core::{ClassicLp, Engine, RunOptions};
    use glp_fraud::WindowWorkload;
    use glp_gpusim::{Device, DeviceConfig};

    #[test]
    #[ignore]
    fn probe_convergence() {
        let s = table4_stream(16);
        let w = WindowWorkload::build(&s, 50);
        let dev = Device::new(DeviceConfig::tiny(4 << 20));
        let mut e = HybridEngine::new(dev);
        let mut p = ClassicLp::with_max_iterations(w.graph.num_vertices(), 20);
        let r = e.run(&w.graph, &mut p, &RunOptions::default()).unwrap();
        eprintln!(
            "V={} E={} changed={:?}",
            w.graph.num_vertices(),
            w.graph.num_edges(),
            r.changed_per_iteration
        );
        eprintln!(
            "transfer={} modeled={}",
            r.transfer_seconds, r.modeled_seconds
        );
    }
}
