//! Fixed-width text tables for experiment output.

/// Prints `rows` under `headers` with per-column auto width, plus a rule
/// line, in the style of the paper's tables.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", rule.join("-+-"));
    for row in rows {
        line(row);
    }
}

/// Formats seconds with a sensible unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a speedup ratio like the paper ("4.5x").
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.345), "2.35 s");
        assert_eq!(fmt_seconds(0.00234), "2.34 ms");
        assert_eq!(fmt_seconds(0.0000021), "2.1 µs");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(8.24), "8.2x");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
