//! Regenerates **Table 2** — the evaluation datasets.
//!
//! Prints the paper's reported |V|, |E| and average degree next to the
//! synthetic equivalent actually generated at the chosen scale, plus the
//! structural signatures that matter to the optimizations (max degree,
//! low/high-degree fractions).
//!
//! Usage: `cargo run -p glp-bench --release --bin table2_datasets
//!         [--scale-mul K] [--datasets a,b]`

use glp_bench::figures::selected_datasets;
use glp_bench::table::print_table;
use glp_bench::Args;
use glp_graph::stats::degree_stats;

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();
    for (spec, scale) in selected_datasets(&args) {
        eprintln!("... generating {} (scale 1/{scale})", spec.name);
        let g = spec.generate_scaled(scale);
        let s = degree_stats(&g);
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", spec.paper_vertices),
            format!("{}", spec.paper_edges),
            format!("{:.1}", spec.paper_avg_degree()),
            format!("1/{scale}"),
            format!("{}", s.num_vertices),
            format!("{}", s.num_edges),
            format!("{:.1}", s.avg_degree),
            format!("{}", s.max_degree),
            format!("{:.0}%", 100.0 * s.frac_low_degree),
            format!("{:.1}%", 100.0 * s.frac_high_degree),
        ]);
    }
    println!("Table 2: datasets (paper vs generated equivalents)");
    print_table(
        &[
            "dataset",
            "paper |V|",
            "paper |E|",
            "paper avg-deg",
            "scale",
            "gen |V|",
            "gen |E|",
            "gen avg-deg",
            "max-deg",
            "deg<32",
            "deg>128",
        ],
        &rows,
    );
    println!("\nNote: Table 2 counts |E| as undirected pairs for the social/road/");
    println!("interaction datasets (Ave-Degree = 2|E|/|V|) and as directed edges for");
    println!("the web graphs uk-2002/wiki-en/twitter (Ave-Degree = |E|/|V|); the");
    println!("generated column always counts stored directed edges, so gen avg-deg");
    println!("is directly comparable to the paper's column.");
}
