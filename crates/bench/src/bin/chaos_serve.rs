//! chaos_serve — fault-injection sweep against the supervised scoring
//! service (`glp-serve`, feature `fault-injection`).
//!
//! Runs one scenario per fault class the fault-tolerance layer claims to
//! survive — a lossless batcher panic, a panic inside the window lock, a
//! recluster-worker panic, a device-level recluster stall, a corrupt
//! in-pipeline transaction, a failed checkpoint write, and a terminal
//! crash loop — each driven by a deterministic [`FaultPlan`] pinned to
//! logical batch/recluster indices. For every scenario it reports the
//! recovery latency (fault firing → health back to `Healthy`), caught
//! panics, supervisor restarts, shed counts, and the final health state,
//! as a table and as `BENCH_chaos.json`.
//!
//! A final fleet scenario kills one shard of a journaled fleet to Down,
//! repeatedly, and reports MTTR (kill → shard re-admitted after the
//! checkpoint + write-ahead-journal rebuild) — self-asserting that the
//! healed fleet is byte-identical to a fault-free run.
//!
//! Usage: `cargo run -p glp-bench --release --features fault-injection
//!         --bin chaos_serve [--json BENCH_chaos.json] [--users N]
//!         [--days N] [--tx-per-day N] [--seed N]`

use glp_bench::table::print_table;
use glp_bench::Args;
use glp_fraud::{Transaction, TxConfig, TxStream};
use glp_serve::{
    Fault, FaultPlan, FleetConfig, FleetCore, FraudService, HealthState, Partitioner, ServeConfig,
    ShedPolicy,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Outcome {
    scenario: &'static str,
    injected: String,
    recovery: Option<Duration>,
    panics: u64,
    restarts: u64,
    shed: u64,
    rejected_invalid: u64,
    shed_unhealthy: u64,
    checkpoint_failures: u64,
    final_state: HealthState,
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        queue_capacity: 1 << 15,
        max_batch: 256,
        batch_budget: Duration::from_millis(2),
        shed_policy: ShedPolicy::RejectNew,
        recluster_every_batches: 4,
        engine_shards: 2,
        restart_backoff: Duration::from_millis(2),
        restart_backoff_cap: Duration::from_millis(50),
        ..ServeConfig::default()
    }
    .with_window_days(10)
}

/// Drives one service under one fault plan: replays the stream once,
/// then waits (bounded) for every scheduled fault to fire and for health
/// to return to `Healthy` — or for the service to go `Down`.
fn run_scenario(
    scenario: &'static str,
    cfg: ServeConfig,
    plan: Arc<FaultPlan>,
    all: &[Transaction],
    blacklist: &[u32],
) -> Outcome {
    let injected = plan
        .scheduled()
        .iter()
        .map(|f| format!("{f:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    let service = FraudService::start_with_faults(cfg, blacklist.to_vec(), Arc::clone(&plan));
    for &t in all {
        let _ = service.submit(t); // sheds are part of the experiment
    }
    // Post-traffic wait: the queue drains, faults pinned to late indices
    // fire, recovery (or Down) becomes observable.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut recovered_at = None;
    loop {
        let h = service.health();
        if h.state == HealthState::Down {
            // Terminal: prove the gate is closed (counted) on the way out.
            let _ = service.submit(all[0]);
            break;
        }
        if plan.all_fired() && h.state == HealthState::Healthy && h.staleness_batches == 0 {
            recovered_at = Some(Instant::now());
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        // The tail of the stream may not land on the recluster cadence:
        // run one synchronously so staleness can reach 0.
        service.recluster_now();
        std::thread::sleep(Duration::from_micros(500));
    }
    let recovery = match (recovered_at, plan.fired().first()) {
        (Some(done), Some(first)) => Some(done.duration_since(first.at)),
        _ => None,
    };
    let report = service.shutdown();
    let t = report.core.telemetry();
    Outcome {
        scenario,
        injected,
        recovery,
        panics: t.worker_panics.load(Ordering::Relaxed),
        restarts: t.worker_restarts.load(Ordering::Relaxed),
        shed: t.shed_total(),
        rejected_invalid: t.rejected_invalid.load(Ordering::Relaxed),
        shed_unhealthy: t.shed_unhealthy.load(Ordering::Relaxed),
        checkpoint_failures: t.checkpoint_failures.load(Ordering::Relaxed),
        final_state: report.state,
    }
}

struct FailoverStats {
    shards: usize,
    victim: usize,
    runs: usize,
    mttr: Vec<Duration>,
    rebuild_wall: Vec<Duration>,
    replayed_total: u64,
    byte_identical: bool,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// (min, mean, max) in milliseconds.
fn duration_stats(v: &[Duration]) -> (f64, f64, f64) {
    let min = v.iter().min().copied().unwrap_or_default();
    let max = v.iter().max().copied().unwrap_or_default();
    let mean = v.iter().sum::<Duration>().as_secs_f64() * 1e3 / v.len().max(1) as f64;
    (ms(min), mean, ms(max))
}

/// The fleet scenario: walk one shard of a journaled fleet to `Down`
/// with consecutive panics, let the router rebuild it from the
/// mid-stream checkpoint + journal replay, and measure MTTR — last kill
/// fired → shard re-admitted. Repeated `runs` times for a distribution;
/// every healed run must end byte-identical to the fault-free reference.
fn run_failover(all: &[Transaction], blacklist: &[u32], seed: u64, runs: usize) -> FailoverStats {
    let shards = 3usize;
    let victim = (seed as usize) % shards;
    let fleet_cfg = || {
        FleetConfig {
            shards,
            exchange_every_batches: 8,
            ..FleetConfig::default()
        }
        .with_window_days(20)
    };
    let chunk = all.len().div_ceil(24).max(1);
    let chunks: Vec<&[Transaction]> = all.chunks(chunk).collect();

    let reference = FleetCore::new(
        fleet_cfg(),
        Partitioner::hashed(shards, seed),
        blacklist.to_vec(),
    );
    for c in &chunks {
        reference.apply_transactions(c);
    }
    reference.exchange_now();
    let want = reference.fleet_snapshot().verdicts.canonical_bytes();

    let down_after = u64::from(fleet_cfg().shard.down_after_crashes);
    let kill_from = 10u64;
    let mut mttr = Vec::new();
    let mut rebuild_wall = Vec::new();
    let mut replayed_total = 0u64;
    let mut byte_identical = true;
    for run in 0..runs {
        let base =
            std::env::temp_dir().join(format!("glp_chaos_fo_{}_{run}.ckpt", std::process::id()));
        let wal =
            std::env::temp_dir().join(format!("glp_chaos_fo_{}_{run}.wal", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal);
        let mut cfg = fleet_cfg();
        cfg.shard.checkpoint_path = Some(base.clone());
        cfg.wal_dir = Some(wal.clone());
        let plan = Arc::new(FaultPlan::new((0..down_after).map(|j| Fault::ShardPanic {
            shard: victim,
            at_batch: kill_from + j,
        })));
        let fleet = FleetCore::new(cfg, Partitioner::hashed(shards, seed), blacklist.to_vec())
            .with_faults(Arc::clone(&plan));
        for (j, c) in chunks.iter().enumerate() {
            fleet.apply_transactions(c);
            if j as u64 == 5 {
                fleet.checkpoint_all().expect("mid-stream checkpoint");
            }
        }
        fleet.exchange_now();
        assert!(plan.all_fired(), "failover: kill schedule never completed");
        let event = fleet
            .failover_events()
            .into_iter()
            .next()
            .expect("failover: the dead shard was never rebuilt");
        let killed_at = plan.fired().last().expect("fired faults recorded").at;
        mttr.push(event.completed_at.duration_since(killed_at));
        rebuild_wall.push(event.wall);
        replayed_total += event.replayed_batches;
        byte_identical &= fleet.fleet_snapshot().verdicts.canonical_bytes() == want
            && fleet.health().state == HealthState::Healthy;
        for i in 0..shards {
            let mut p = base.as_os_str().to_owned();
            p.push(format!(".shard{i}"));
            let _ = std::fs::remove_file(std::path::PathBuf::from(p));
        }
        let _ = std::fs::remove_dir_all(&wal);
    }
    FailoverStats {
        shards,
        victim,
        runs,
        mttr,
        rebuild_wall,
        replayed_total,
        byte_identical,
    }
}

fn main() {
    let args = Args::parse();
    let json_path = args.get_str("json").unwrap_or("BENCH_chaos.json");
    let seed: u64 = args.get("seed", 42);

    let tx_cfg = TxConfig {
        num_users: args.get("users", 1_500),
        num_items: args.get("items", 600),
        days: args.get("days", 20),
        tx_per_day: args.get("tx-per-day", 800),
        num_rings: 3,
        ring_size: 10,
        ring_tx_per_day: 30,
        blacklist_fraction: 0.25,
        ..Default::default()
    };
    eprintln!("... generating transaction stream ({} days)", tx_cfg.days);
    let stream = TxStream::generate(&tx_cfg);
    let all: Vec<Transaction> = stream.window(0, tx_cfg.days).copied().collect();
    eprintln!(
        "... {} transactions, seed {seed}, one service per scenario",
        all.len()
    );

    let ckpt_path = std::env::temp_dir().join(format!("glp_chaos_{}.ckpt", std::process::id()));
    let mut ckpt_cfg = base_cfg();
    ckpt_cfg.checkpoint_path = Some(ckpt_path.clone());
    ckpt_cfg.checkpoint_every_batches = 4;
    let mut down_cfg = base_cfg();
    down_cfg.shedding_after_crashes = 2;
    down_cfg.down_after_crashes = 3;

    // SplitMix-free seeding: derive per-scenario indices from the seed
    // via FaultPlan::seeded where the class supports it, and pin the
    // structurally-constrained ones (crash loop) explicitly.
    let scenarios: Vec<(&'static str, ServeConfig, Arc<FaultPlan>)> = vec![
        (
            "batcher-panic",
            base_cfg(),
            Arc::new(FaultPlan::seeded(
                seed,
                &glp_serve::FaultSpec {
                    batcher_panics: 1,
                    batch_horizon: 8,
                    ..glp_serve::FaultSpec::default()
                },
            )),
        ),
        (
            "panic-in-apply",
            base_cfg(),
            Arc::new(FaultPlan::new([Fault::PanicInApply { at_batch: 2 }])),
        ),
        (
            "recluster-panic",
            base_cfg(),
            Arc::new(FaultPlan::new([Fault::ReclusterPanic { at_recluster: 1 }])),
        ),
        (
            "recluster-stall",
            base_cfg(),
            Arc::new(FaultPlan::new([Fault::ReclusterStall {
                at_recluster: 1,
                millis: 200,
            }])),
        ),
        (
            "corrupt-tx",
            base_cfg(),
            Arc::new(FaultPlan::new([Fault::CorruptTx { at_batch: 2 }])),
        ),
        (
            "checkpoint-fail",
            ckpt_cfg,
            Arc::new(FaultPlan::new([Fault::CheckpointFail { at_batch: 4 }])),
        ),
        (
            "crash-loop",
            down_cfg,
            Arc::new(FaultPlan::new([
                Fault::BatcherPanic { at_batch: 0 },
                Fault::BatcherPanic { at_batch: 0 },
                Fault::BatcherPanic { at_batch: 0 },
            ])),
        ),
    ];

    let mut outcomes = Vec::new();
    for (name, cfg, plan) in scenarios {
        eprintln!("... scenario {name}: {:?}", plan.scheduled());
        outcomes.push(run_scenario(name, cfg, plan, &all, &stream.blacklist));
    }
    std::fs::remove_file(&ckpt_path).ok();

    let failover_runs: usize = args.get("failover-runs", 5);
    eprintln!("... scenario shard-failover: {failover_runs} killed-shard rebuilds");
    let failover = run_failover(&all, &stream.blacklist, seed, failover_runs);

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.scenario.to_string(),
                match o.recovery {
                    Some(d) => format!("{:.1} ms", d.as_secs_f64() * 1e3),
                    None => "-".to_string(),
                },
                o.panics.to_string(),
                o.restarts.to_string(),
                o.shed.to_string(),
                o.shed_unhealthy.to_string(),
                o.rejected_invalid.to_string(),
                o.checkpoint_failures.to_string(),
                o.final_state.as_str().to_string(),
            ]
        })
        .collect();
    println!("\nchaos_serve — recovery under injected faults (seed {seed})\n");
    print_table(
        &[
            "scenario",
            "recovery",
            "panics",
            "restarts",
            "shed",
            "shed-unhealthy",
            "rejected-invalid",
            "ckpt-fail",
            "final",
        ],
        &rows,
    );

    let (mttr_min, mttr_mean, mttr_max) = duration_stats(&failover.mttr);
    let (_, wall_mean, _) = duration_stats(&failover.rebuild_wall);
    println!(
        "\nshard-failover — kill one of {} shards to Down, rebuild from checkpoint + journal ({} runs, victim {})\n",
        failover.shards, failover.runs, failover.victim
    );
    print_table(
        &[
            "mttr-min",
            "mttr-mean",
            "mttr-max",
            "rebuild-wall-mean",
            "replayed-batches",
            "byte-identical",
        ],
        &[vec![
            format!("{mttr_min:.2} ms"),
            format!("{mttr_mean:.2} ms"),
            format!("{mttr_max:.2} ms"),
            format!("{wall_mean:.2} ms"),
            failover.replayed_total.to_string(),
            failover.byte_identical.to_string(),
        ]],
    );

    let mttr_json = serde_json::json!({
        "min": mttr_min,
        "mean": mttr_mean,
        "max": mttr_max,
    });
    let failover_json = serde_json::json!({
        "shards": failover.shards,
        "victim": failover.victim,
        "runs": failover.runs,
        "mttr_ms": mttr_json,
        "rebuild_wall_ms_mean": wall_mean,
        "replayed_batches_total": failover.replayed_total,
        "byte_identical": failover.byte_identical,
    });
    let json = serde_json::json!({
        "bench": "chaos_serve",
        "seed": seed,
        "transactions": all.len(),
        "scenarios": outcomes.iter().map(|o| serde_json::json!({
            "scenario": o.scenario,
            "injected": o.injected.clone(),
            "recovery_ms": o.recovery.map(|d| d.as_secs_f64() * 1e3),
            "worker_panics": o.panics,
            "worker_restarts": o.restarts,
            "shed": o.shed,
            "shed_unhealthy": o.shed_unhealthy,
            "rejected_invalid": o.rejected_invalid,
            "checkpoint_failures": o.checkpoint_failures,
            "final_state": o.final_state.as_str(),
        })).collect::<Vec<_>>(),
        "failover": failover_json,
    });
    std::fs::write(
        json_path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write json");
    eprintln!("... wrote {json_path}");

    // The bin doubles as a smoke check in CI: fail loudly if any
    // recoverable scenario did not recover or the crash loop did not
    // reach Down.
    for o in &outcomes {
        if o.scenario == "crash-loop" {
            assert_eq!(o.final_state, HealthState::Down, "crash loop must go Down");
        } else {
            assert!(
                o.recovery.is_some(),
                "scenario {} never recovered to Healthy",
                o.scenario
            );
        }
    }
    assert!(
        failover.byte_identical,
        "a healed fleet diverged from the fault-free reference"
    );
    assert_eq!(failover.mttr.len(), failover.runs, "every run must heal");
    eprintln!("... all scenarios behaved as specified");
}
