//! Extra ablation: hardware sensitivity.
//!
//! Runs the same GLP workload across modeled GPU generations to show how
//! the modeled time tracks memory bandwidth (LP is bandwidth-bound once
//! the §4 optimizations remove the atomic/sort overheads) — the
//! forward-looking question a deployment team asks after reading §5.4.
//!
//! Usage: `cargo run -p glp-bench --release --bin ablation_hardware
//!         [--scale-mul K] [--iters N]`

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Engine, RunOptions};
use glp_gpusim::{Device, DeviceConfig};
use glp_graph::datasets::by_name;

fn main() {
    let args = Args::parse();
    let iters: u32 = args.get("iters", 20);
    let scale_mul: u64 = args.get("scale-mul", 4);
    let spec = by_name("twitter").expect("registry");
    let g = spec.generate_scaled(spec.default_scale * scale_mul);
    eprintln!(
        "twitter substitute: |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    let mut baseline = None;
    for cfg in [
        DeviceConfig::rtx2080ti(),
        DeviceConfig::titan_v(),
        DeviceConfig::v100(),
        DeviceConfig::a100(),
    ] {
        let name = cfg.name.clone();
        let bw = cfg.mem_bandwidth_gbps;
        let mut engine = GpuEngine::new(Device::new(cfg));
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
        let r = engine
            .run(
                &g,
                &mut prog,
                &RunOptions::default().with_max_iterations(iters),
            )
            .expect("healthy device");
        let base = *baseline.get_or_insert(r.modeled_seconds);
        rows.push(vec![
            name,
            format!("{bw:.0} GB/s"),
            fmt_seconds(r.modeled_seconds),
            format!("{:.2}x", base / r.modeled_seconds),
        ]);
    }
    println!("Hardware sweep (classic LP, twitter substitute, {iters} iterations)");
    print_table(
        &["device", "bandwidth", "modeled time", "vs 2080 Ti"],
        &rows,
    );
}
