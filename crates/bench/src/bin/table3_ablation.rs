//! Regenerates **Table 3** — effectiveness of the proposed optimizations.
//!
//! Runs classic LP under the three MFL strategies of §5.3 on every dataset
//! and reports speedups over `global`:
//!
//! * `global` — per-vertex global-memory hash tables;
//! * `smem` — shared-memory CMS+HT for degree > 128 (§4.1);
//! * `smem+warp` — plus one-warp-multi-vertices for degree < 32 (§4.2).
//!
//! Also prints the CMS+HT global-fallback rate, the quantity Theorem 1
//! bounds.
//!
//! Usage: `cargo run -p glp-bench --release --bin table3_ablation
//!         [--scale-mul K] [--datasets a,b] [--iters N]`

use glp_bench::figures::selected_datasets;
use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::{GpuEngine, MflStrategy};
use glp_core::{ClassicLp, Engine, LpRunReport, RunOptions};
use glp_graph::Graph;

fn run(strategy: MflStrategy, g: &Graph, iters: u32) -> LpRunReport {
    let opts = RunOptions::default()
        .with_max_iterations(iters)
        .with_strategy(strategy);
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
    engine.run(g, &mut prog, &opts).expect("healthy device")
}

fn main() {
    let args = Args::parse();
    let iters: u32 = args.get("iters", 20);
    let mut rows = Vec::new();
    for (spec, scale) in selected_datasets(&args) {
        eprintln!("... {} (scale 1/{scale})", spec.name);
        let g = spec.generate_scaled(scale);
        let global = run(MflStrategy::Global, &g, iters);
        let smem = run(MflStrategy::Smem, &g, iters);
        let both = run(MflStrategy::SmemWarp, &g, iters);
        rows.push(vec![
            spec.name.to_string(),
            fmt_seconds(global.modeled_seconds),
            format!("{:.1}x", global.modeled_seconds / smem.modeled_seconds),
            format!("{:.1}x", global.modeled_seconds / both.modeled_seconds),
            format!("{:.2}%", 100.0 * both.fallback_rate()),
        ]);
    }
    println!("Table 3: effectiveness of the proposed optimizations");
    println!("(speedup over the `global` strategy, classic LP, {iters} iterations)");
    print_table(
        &[
            "dataset",
            "global time",
            "smem",
            "smem+warp",
            "CMS+HT fallback rate",
        ],
        &rows,
    );
    println!("\n(paper: smem 1.2x-7.4x, smem+warp 3.3x-13.2x; biggest smem win on");
    println!("aligraph — densest graph; biggest warp win on roadNet — constant low degree)");
}
