//! resilience_recovery — cost and correctness of engine-level fault
//! recovery (feature `fault-injection`).
//!
//! Four scenarios against the same community graph, each compared with a
//! fault-free reference run:
//!
//! * `baseline`     — the resilient ladder with no fault armed: what the
//!   per-barrier checkpoint snapshots cost (`snapshot_fraction`).
//! * `transient`    — a kernel launch rejected mid-run: one same-tier
//!   retry resuming at the failed iteration.
//! * `device_lost`  — the GPU and the hybrid card both fall off the bus:
//!   the ladder finishes on the host BSP engine.
//! * `multi_gpu`    — one of four devices lost mid-run: the multi-GPU
//!   engine repartitions across the three survivors.
//!
//! Every scenario must reproduce the reference labels bit-for-bit, and
//! the recovery scenarios must salvage at least one completed iteration
//! (resume, not restart) — the run aborts otherwise. Results go to
//! stdout and `BENCH_resilience.json`.
//!
//! Usage: `cargo run -p glp-bench --release --features fault-injection
//!         --bin resilience_recovery [--smoke] [--vertices N]
//!         [--iters N] [--json BENCH_resilience.json]`

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::{BarrierHook, GpuEngine, HybridEngine, MultiGpuEngine, SequentialEngine};
use glp_core::{ClassicLp, Engine, LpProgram, LpRunReport, ResilientEngine, RunOptions};
use glp_gpusim::faults::{self, FaultKind};
use glp_graph::gen::{community_powerlaw, CommunityPowerLawConfig};
use glp_graph::Graph;
use std::time::Duration;

struct Outcome {
    scenario: &'static str,
    tier: &'static str,
    retries: u32,
    degradations: u32,
    salvaged: u64,
    faults: Vec<String>,
    report: LpRunReport,
    labels_identical: bool,
}

/// Runs one scenario on a fresh GPU → hybrid → host ladder. `arm` gets
/// the GPU and hybrid tier device ids and plants whatever faults the
/// scenario calls for before the run starts.
fn run_ladder(
    scenario: &'static str,
    g: &Graph,
    opts: &RunOptions,
    reference: &[u32],
    arm: impl FnOnce(u32, u32),
) -> Outcome {
    let gpu = GpuEngine::titan_v();
    let hybrid = HybridEngine::titan_v();
    let (gpu_dev, hybrid_dev) = (gpu.device().id(), hybrid.device().id());
    let mut engine = ResilientEngine::new(vec![
        Box::new(gpu),
        Box::new(hybrid),
        Box::new(SequentialEngine::bsp()),
    ])
    .with_backoff(Duration::from_micros(100), Duration::from_millis(5));
    arm(gpu_dev, hybrid_dev);

    let mut prog = ClassicLp::new(g.num_vertices());
    let report = engine
        .run(g, &mut prog, opts)
        .expect("recovery must succeed");
    faults::clear_device(gpu_dev);
    faults::clear_device(hybrid_dev);
    let stats = engine.resilience();
    Outcome {
        scenario,
        tier: stats.tier.unwrap_or("?"),
        retries: stats.retries,
        degradations: stats.degradations,
        salvaged: stats.iterations_salvaged,
        faults: stats.faults.iter().map(|e| e.to_string()).collect(),
        report,
        labels_identical: prog.labels() == reference,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let vertices: usize = args.get("vertices", if smoke { 4_000 } else { 20_000 });
    let iters: u32 = args.get("iters", 20);
    let json_path = args.get_str("json").unwrap_or("BENCH_resilience.json");

    let g = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: vertices,
        avg_degree: 8.0,
        num_communities: (vertices / 400).max(4),
        mixing: 0.05,
        ..Default::default()
    });
    let opts = RunOptions::default().with_max_iterations(iters);
    eprintln!(
        "... workload: {} vertices, {} edges, <= {iters} iterations",
        g.num_vertices(),
        g.num_edges()
    );

    // Fault-free reference on the bare GPU engine.
    let mut ref_prog = ClassicLp::new(g.num_vertices());
    let ref_report = GpuEngine::titan_v()
        .run(&g, &mut ref_prog, &opts)
        .expect("healthy reference device");
    let reference = ref_prog.labels().to_vec();

    // Launches one checkpointed iteration costs, measured on a probe run
    // so the injected faults land mid-run regardless of kernel schedule.
    let per_iter = {
        let mut probe = GpuEngine::titan_v();
        let mut prog = ClassicLp::new(g.num_vertices());
        let hooked = opts.clone().with_barrier_hook(BarrierHook::new(|_| {}));
        let r = probe.run(&g, &mut prog, &hooked).expect("healthy probe");
        assert!(r.iterations >= 3, "workload converges too fast to salvage");
        (probe.device().kernel_log().len() as u64 / u64::from(r.iterations)) as u32
    };

    let mut outcomes = Vec::new();

    outcomes.push(run_ladder("baseline", &g, &opts, &reference, |_, _| {}));

    outcomes.push(run_ladder("transient", &g, &opts, &reference, |gpu, _| {
        faults::inject_fault(gpu, FaultKind::LaunchFail, 2 * per_iter + 1);
    }));

    // Lose the GPU mid-run and the hybrid card on its first kernel: only
    // the host tier can finish.
    outcomes.push(run_ladder(
        "device_lost",
        &g,
        &opts,
        &reference,
        |gpu, hybrid| {
            faults::inject_fault(gpu, FaultKind::DeviceLost, 2 * per_iter + 1);
            faults::inject_fault(hybrid, FaultKind::DeviceLost, 0);
        },
    ));

    outcomes.push({
        let mut engine = MultiGpuEngine::titan_v(4);
        let victim = engine.gpus().device(1).id();
        faults::inject_fault(victim, FaultKind::DeviceLost, 2 * per_iter);
        let mut prog = ClassicLp::new(g.num_vertices());
        let report = engine
            .run(&g, &mut prog, &opts)
            .expect("survivors must finish");
        faults::clear_device(victim);
        let survivors = engine.gpus().survivors().len();
        assert_eq!(survivors, 3, "exactly one device should be lost");
        Outcome {
            scenario: "multi_gpu",
            tier: "GLP-multi",
            retries: 0,
            degradations: 0,
            // The multi engine recovers inside one run: every barrier
            // committed before the loss is kept, which the unchanged
            // traces prove; it does not thread a salvage counter.
            salvaged: 0,
            faults: vec![format!("device {victim} lost (1 of 4)")],
            report,
            labels_identical: prog.labels() == reference,
        }
    });

    // Self-checks: recovery must mean *resume*. Labels bit-identical
    // everywhere; the retry and ladder scenarios salvage completed work.
    for o in &outcomes {
        assert!(o.labels_identical, "{}: labels diverged", o.scenario);
        assert_eq!(
            o.report.changed_per_iteration, ref_report.changed_per_iteration,
            "{}: convergence trace diverged",
            o.scenario
        );
    }
    let salvaged_total: u64 = outcomes.iter().map(|o| o.salvaged).sum();
    assert!(
        salvaged_total >= 1,
        "no scenario salvaged a completed iteration — recovery restarted from scratch"
    );

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.scenario.to_string(),
                o.tier.to_string(),
                o.retries.to_string(),
                o.degradations.to_string(),
                o.salvaged.to_string(),
                fmt_seconds(o.report.modeled_seconds),
                format!("{:.1}%", o.report.snapshot_fraction() * 100.0),
                if o.labels_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario",
            "final tier",
            "retries",
            "degradations",
            "salvaged iters",
            "modeled",
            "snapshot %",
            "labels ok",
        ],
        &rows,
    );

    let doc = serde_json::json!({
        "bench": "resilience_recovery",
        "workload": serde_json::json!({
            "vertices": g.num_vertices(),
            "edges": g.num_edges(),
            "iterations": ref_report.iterations,
        }),
        "reference_modeled_seconds": ref_report.modeled_seconds,
        "scenarios": outcomes.iter().map(|o| serde_json::json!({
            "scenario": o.scenario,
            "final_tier": o.tier,
            "retries": o.retries,
            "degradations": o.degradations,
            "iterations_salvaged": o.salvaged,
            "faults": o.faults.clone(),
            "modeled_seconds": o.report.modeled_seconds,
            "snapshot_seconds": o.report.snapshot_seconds,
            "snapshot_fraction": o.report.snapshot_fraction(),
            "labels_identical": o.labels_identical,
        })).collect::<Vec<_>>(),
        "iterations_salvaged_total": salvaged_total,
    });
    std::fs::write(
        json_path,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .expect("write json");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(json_path).expect("read json"))
            .expect("BENCH_resilience.json must parse");
    assert!(parsed["iterations_salvaged_total"].as_u64().expect("total") >= 1);
    eprintln!("... wrote {json_path}");
}
