//! `glp` — command-line front end to the whole workspace.
//!
//! ```text
//! glp generate --dataset dblp --scale-mul 8 --out dblp.glpg
//! glp run --dataset youtube --algo classic --engine glp --iters 20
//! glp run --graph dblp.glpg --algo llp --gamma 16
//! glp profile --dataset aligraph --scale-mul 8
//! glp info --graph dblp.glpg
//! ```
//!
//! Subcommands:
//! * `generate` — synthesize a Table 2 dataset and save it (`.glpg`
//!   binary snapshot or `.el` edge list, chosen by extension).
//! * `run` — run an LP algorithm (`classic|llp|slp|seeded`) on a dataset
//!   or graph file with any engine
//!   (`glp|global|smem|omp|ligra|tg|gsort|ghash|inhouse`).
//! * `profile` — run GLP and print the per-kernel profiler table.
//! * `info` — print a graph's degree statistics.

use glp_baselines::{CpuLp, CpuLpConfig, GHashLp, GSortLp};
use glp_bench::table::fmt_seconds;
use glp_bench::Args;
use glp_core::community::{modularity, num_communities};
use glp_core::engine::{GpuEngine, MflStrategy};
use glp_core::{
    ClassicLp, Engine, FrontierMode, Llp, LpProgram, LpRunReport, RunOptions, SeededLp, Slp,
};
use glp_fraud::InHouseLp;
use glp_gpusim::DeviceProfile;
use glp_graph::datasets::by_name;
use glp_graph::io;
use glp_graph::stats::degree_stats;
use glp_graph::Graph;

/// Clean CLI error: message to stderr, exit 2 (no panic backtrace).
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn load_graph(args: &Args) -> Graph {
    if let Some(path) = args.get_str("graph") {
        if path.ends_with(".el") {
            io::read_edge_list_file(path, io::EdgeListOptions::default())
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}")))
        } else {
            io::read_binary_file(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")))
        }
    } else if let Some(name) = args.get_str("dataset") {
        let spec = by_name(name)
            .unwrap_or_else(|| die(&format!("unknown dataset {name:?} (see Table 2 names)")));
        let scale_mul: u64 = args.get("scale-mul", 4);
        eprintln!(
            "generating {name} at scale 1/{}",
            spec.default_scale * scale_mul
        );
        spec.generate_scaled(spec.default_scale * scale_mul)
    } else {
        die("pass --graph <file> or --dataset <table2 name>");
    }
}

fn run_options(args: &Args) -> RunOptions {
    let opts = RunOptions::default().with_max_iterations(args.get("iters", 20));
    match args.get_str("frontier") {
        None | Some("auto") => opts,
        Some("dense") => opts.with_frontier(FrontierMode::Dense),
        Some("push") => opts.with_frontier(FrontierMode::Push),
        Some("pull") => opts.with_frontier(FrontierMode::Pull),
        Some(other) => die(&format!(
            "unknown frontier mode {other:?} (auto|dense|push|pull)"
        )),
    }
}

fn run_program(
    engine: &str,
    g: &Graph,
    prog: &mut dyn LpProgram,
    opts: &RunOptions,
) -> LpRunReport {
    let mut opts = opts.clone();
    let mut e: Box<dyn Engine> = match engine {
        "glp" => Box::new(GpuEngine::titan_v()),
        "global" => {
            opts.strategy = MflStrategy::Global;
            Box::new(GpuEngine::titan_v())
        }
        "smem" => {
            opts.strategy = MflStrategy::Smem;
            Box::new(GpuEngine::titan_v())
        }
        "omp" => Box::new(CpuLp::omp(CpuLpConfig::default())),
        "ligra" => Box::new(CpuLp::ligra(CpuLpConfig::default())),
        "tg" => Box::new(CpuLp::tigergraph(CpuLpConfig::default())),
        "gsort" => Box::new(GSortLp::titan_v()),
        "ghash" => Box::new(GHashLp::titan_v()),
        "inhouse" => Box::new(InHouseLp::taobao()),
        other => die(&format!(
            "unknown engine {other:?} (glp|global|smem|omp|ligra|tg|gsort|ghash|inhouse)"
        )),
    };
    e.run(g, prog, &opts).unwrap_or_else(|e| {
        eprintln!("engine fault: {e}");
        std::process::exit(1);
    })
}

fn cmd_generate(args: &Args) {
    let g = load_graph(args);
    let Some(out) = args.get_str("out") else {
        die("--out <path> required");
    };
    let result = if out.ends_with(".el") {
        std::fs::File::create(out)
            .map_err(io::IoError::from)
            .and_then(|f| io::write_edge_list(&g, f))
    } else {
        io::write_binary_file(&g, out)
    };
    if let Err(e) = result {
        die(&format!("writing {out}: {e}"));
    }
    println!(
        "wrote {} vertices / {} edges to {out}",
        g.num_vertices(),
        g.num_edges()
    );
}

fn cmd_run(args: &Args) {
    let g = load_graph(args);
    let iters: u32 = args.get("iters", 20);
    let engine = args.get_str("engine").unwrap_or("glp").to_string();
    let algo = args.get_str("algo").unwrap_or("classic").to_string();
    let opts = run_options(args);
    let n = g.num_vertices();
    let (report, labels): (LpRunReport, Vec<u32>) = match algo.as_str() {
        "classic" => {
            let mut p = ClassicLp::with_max_iterations(n, iters);
            let r = run_program(&engine, &g, &mut p, &opts);
            (r, p.labels().to_vec())
        }
        "llp" => {
            let gamma: f64 = args.get("gamma", 1.0);
            let mut p = Llp::with_max_iterations(n, gamma, iters);
            let r = run_program(&engine, &g, &mut p, &opts);
            (r, p.labels().to_vec())
        }
        "slp" => {
            let seed: u64 = args.get("seed", 0x519);
            let mut p = Slp::with_params(n, 5, 0.2, iters, seed);
            let r = run_program(&engine, &g, &mut p, &opts);
            (r, p.labels().to_vec())
        }
        "seeded" => {
            let every: usize = args.get("seed-every", 100);
            let seeds: Vec<u32> = (0..n as u32).step_by(every.max(1)).collect();
            let mut p = SeededLp::with_max_iterations(n, &seeds, iters);
            let r = run_program(&engine, &g, &mut p, &opts);
            (r, p.labels().to_vec())
        }
        other => die(&format!("unknown algo {other:?} (classic|llp|slp|seeded)")),
    };
    println!(
        "{algo} on {} vertices / {} edges with {engine}:",
        g.num_vertices(),
        g.num_edges()
    );
    println!("  iterations       : {}", report.iterations);
    println!(
        "  modeled time     : {}",
        fmt_seconds(report.modeled_seconds)
    );
    println!(
        "  per iteration    : {}",
        fmt_seconds(report.seconds_per_iteration())
    );
    println!("  wall clock (sim) : {}", fmt_seconds(report.wall_seconds));
    println!("  communities      : {}", num_communities(&labels));
    if g.is_undirected() {
        println!("  modularity       : {:.4}", modularity(&g, &labels));
    }
    if report.smem_vertices > 0 {
        println!(
            "  CMS+HT fallbacks : {:.3}%",
            100.0 * report.fallback_rate()
        );
    }
}

fn cmd_profile(args: &Args) {
    let g = load_graph(args);
    let iters: u32 = args.get("iters", 20);
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
    let report = engine
        .run(
            &g,
            &mut prog,
            &RunOptions::default().with_max_iterations(iters),
        )
        .expect("healthy device");
    println!(
        "classic LP, {} iterations, {} modeled\n",
        report.iterations,
        fmt_seconds(report.modeled_seconds)
    );
    print!("{}", DeviceProfile::of(engine.device()));
}

fn cmd_info(args: &Args) {
    let g = load_graph(args);
    let s = degree_stats(&g);
    println!("vertices      : {}", s.num_vertices);
    println!("edges         : {}", s.num_edges);
    println!("avg degree    : {:.2}", s.avg_degree);
    println!("median degree : {}", s.median_degree);
    println!("max degree    : {}", s.max_degree);
    println!(
        "deg < 32      : {:.1}% (warp-packed bucket)",
        100.0 * s.frac_low_degree
    );
    println!(
        "deg > 128     : {:.1}% (CMS+HT bucket)",
        100.0 * s.frac_high_degree
    );
    println!("weighted      : {}", g.incoming().is_weighted());
    println!("undirected    : {}", g.is_undirected());
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("usage: glp <generate|run|profile|info> [--flags]");
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    let args = Args::from_iter(argv);
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "run" => cmd_run(&args),
        "profile" => cmd_profile(&args),
        "info" => cmd_info(&args),
        other => {
            eprintln!("unknown command {other:?}; try generate|run|profile|info");
            std::process::exit(2);
        }
    }
}
