//! Extra ablation: the frontier optimization (skip settled vertices).
//!
//! §2.2 criticizes prior GPU LP for reloading "label values ... repeatedly
//! but only a subset of them have their labels updated". This sweep
//! quantifies what skipping settled vertices buys GLP on each dataset —
//! big on fast-converging graphs, nothing on graphs that keep churning.
//!
//! Usage: `cargo run -p glp-bench --release --bin ablation_frontier
//!         [--scale-mul K] [--iters N] [--datasets a,b]`

use glp_bench::figures::selected_datasets;
use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Engine, FrontierMode, RunOptions};

fn main() {
    let args = Args::parse();
    let iters: u32 = args.get("iters", 20);
    let mut rows = Vec::new();
    for (spec, scale) in selected_datasets(&args) {
        eprintln!("... {} (scale 1/{scale})", spec.name);
        let g = spec.generate_scaled(scale);
        let run = |frontier: FrontierMode| {
            let opts = RunOptions::default()
                .with_max_iterations(iters)
                .with_frontier(frontier);
            let mut engine = GpuEngine::titan_v();
            let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
            engine.run(&g, &mut prog, &opts).expect("healthy device")
        };
        let dense = run(FrontierMode::Dense);
        let frontier = run(FrontierMode::Auto);
        let last_changed = *frontier.changed_per_iteration.last().unwrap_or(&0);
        rows.push(vec![
            spec.name.to_string(),
            fmt_seconds(dense.modeled_seconds),
            fmt_seconds(frontier.modeled_seconds),
            format!("{:.1}x", dense.modeled_seconds / frontier.modeled_seconds),
            format!("{}", frontier.iterations),
            format!(
                "{:.1}%",
                100.0 * last_changed as f64 / g.num_vertices() as f64
            ),
        ]);
    }
    println!("Frontier-optimization ablation (classic LP, {iters} iterations)");
    print_table(
        &[
            "dataset",
            "dense",
            "frontier",
            "speedup",
            "iters",
            "still churning",
        ],
        &rows,
    );
    println!("\n(converging graphs settle and the frontier collapses; graphs with");
    println!("synchronous-LP oscillation keep their frontier full and gain nothing)");
}
