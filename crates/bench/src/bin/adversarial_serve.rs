//! adversarial_serve — the serving stack against a workload that fights
//! back (`glp_fraud::adversary`).
//!
//! Three scenarios, one per hardening claim:
//!
//! * **evolving-rings** — fraud rings rotate members daily behind
//!   camouflage purchases. A live, reclustering service is scored by a
//!   [`DetectionProbe`] against per-day ground truth every published
//!   snapshot; a snapshot frozen on day 0 is scored against the same
//!   final truth. Self-asserts the live service's recall beats the
//!   static snapshot's — staleness, not availability, is what the
//!   rotation attack degrades.
//! * **burst-flood** — one day of the stream carries a flood of
//!   organic-shaped transactions sized far past the ingest queue. The
//!   burst detector must tighten batching and degrade (never `Down`),
//!   shed counted (the overflow roll-up equals the per-policy total),
//!   and return to `Healthy` within the run once the flood passes.
//! * **shard-identity** — the full adversarial schedule, including a
//!   mid-run label-noise retraction through `update_blacklist`, driven
//!   through 1-, 2-, and 4-shard fleets. Self-asserts every published
//!   snapshot sequence is byte-identical across shard counts.
//!
//! Reports a table per scenario and writes `BENCH_adversarial.json`
//! (re-checked by the CI `adversarial` job).
//!
//! Usage: `cargo run -p glp-bench --release --bin adversarial_serve
//!         [--json BENCH_adversarial.json] [--days N] [--tx-per-day N]
//!         [--burst-tx N]`

use glp_bench::table::print_table;
use glp_bench::Args;
use glp_fraud::{
    precision_recall, AdversarialStream, AdversaryConfig, RegionalTxConfig, Transaction,
};
use glp_serve::{
    DetectionProbe, FleetConfig, FleetCore, FraudService, HealthState, Partitioner, ProbePoint,
    ServeConfig, ServiceCore, ShedPolicy, Telemetry,
};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// The serving window every scenario runs with: long enough that the
/// statically-seeded ring members stay inside the live window (seeded LP
/// keeps finding the evolving ring), short enough that day-0 members
/// rotate out of the current truth.
const WINDOW_DAYS: u32 = 10;

fn stream(args: &Args) -> AdversarialStream {
    AdversarialStream::generate(&AdversaryConfig {
        base: RegionalTxConfig {
            regions: 4,
            users_per_region: 200,
            items_per_region: 80,
            days: args.get("days", 12),
            tx_per_day: args.get("tx-per-day", 800),
            cross_rings: 4,
            // Pools much larger than the active subset, so rotation
            // genuinely walks the rings away from old snapshots.
            ring_size: 30,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.3,
            ..Default::default()
        },
        active_members: 6,
        rotate_per_day: 2,
        camouflage_per_day: 10,
        burst_day: Some(6),
        burst_tx: args.get("burst-tx", 8_000),
        label_noise: 6,
    })
}

// ---------------------------------------------------------------------
// Scenario 1: evolving rings vs detection quality.
// ---------------------------------------------------------------------

struct RingsOutcome {
    series: Vec<ProbePoint>,
    live_recall: f64,
    static_recall: f64,
    static_flagged: usize,
}

fn run_evolving_rings(s: &AdversarialStream) -> RingsOutcome {
    let cfg = ServeConfig::default().with_window_days(WINDOW_DAYS);
    let probe = DetectionProbe::from_adversarial(s, WINDOW_DAYS);
    let telemetry = Telemetry::new();
    let core = ServiceCore::new(cfg, s.blacklist.clone());
    let days = s.config.base.days;
    let mut series = Vec::new();
    let mut static_snapshot = None;
    for d in 0..days {
        let txs: Vec<Transaction> = s.window(d, d + 1).copied().collect();
        core.apply_transactions(&txs);
        core.recluster_now();
        series.push(probe.observe(&core.snapshot(), &telemetry));
        if d == 0 {
            // The frozen defender: day 0's verdicts, never updated.
            static_snapshot = Some(core.snapshot());
        }
    }
    let live = core.snapshot();
    let stale = static_snapshot.expect("at least one day");
    let truth_now = probe.truth_for_window(live.window_end);
    let stale_flagged: Vec<u32> = stale.flagged.iter().map(|&(u, _, _)| u).collect();
    let (_, static_recall) = precision_recall(&stale_flagged, &truth_now);
    RingsOutcome {
        live_recall: series.last().expect("non-empty").recall,
        static_recall,
        static_flagged: stale_flagged.len(),
        series,
    }
}

// ---------------------------------------------------------------------
// Scenario 2: burst flood vs the admission gate.
// ---------------------------------------------------------------------

struct BurstOutcome {
    never_down: bool,
    worst_state: HealthState,
    degraded_seen: bool,
    recovered_healthy: bool,
    recovery: Option<Duration>,
    bursts_detected: u64,
    shed_overflow: u64,
    shed_total: u64,
    submitted: usize,
}

fn run_burst(s: &AdversarialStream) -> BurstOutcome {
    let cfg = ServeConfig {
        // A queue small enough that the flood day overflows it hard, and
        // burst windows short enough to evaluate during the flood.
        queue_capacity: 1 << 10,
        max_batch: 128,
        batch_budget: Duration::from_millis(1),
        shed_policy: ShedPolicy::DropOldest,
        burst_window: 256,
        ..ServeConfig::default()
    }
    .with_window_days(WINDOW_DAYS);
    let days = s.config.base.days;
    let service = FraudService::start(cfg, s.blacklist.clone());
    let mut never_down = true;
    let mut worst = HealthState::Healthy;
    let mut submitted = 0usize;
    for d in 0..days {
        for tx in s.window(d, d + 1) {
            let _ = service.submit(*tx); // sheds are the experiment
            submitted += 1;
            if submitted.is_multiple_of(512) {
                let state = service.health().state;
                worst = worst.max(state);
                never_down &= state != HealthState::Down;
            }
        }
    }
    let flood_over = Instant::now();
    // The flood has passed; the queue drains and idle batcher ticks feed
    // calm evidence into the detector. The service must walk back to
    // Healthy on its own, while still running.
    let deadline = flood_over + Duration::from_secs(15);
    let mut recovered_at = None;
    loop {
        let state = service.health().state;
        worst = worst.max(state);
        never_down &= state != HealthState::Down;
        if state == HealthState::Healthy {
            recovered_at = Some(Instant::now());
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = service.shutdown();
    let t = report.core.telemetry();
    BurstOutcome {
        never_down,
        worst_state: worst,
        degraded_seen: worst >= HealthState::Degraded,
        recovered_healthy: recovered_at.is_some(),
        recovery: recovered_at.map(|at| at.duration_since(flood_over)),
        bursts_detected: t.bursts_detected.load(Ordering::Relaxed),
        shed_overflow: t.shed_overflow.load(Ordering::Relaxed),
        shed_total: t.shed_total(),
        submitted,
    }
}

// ---------------------------------------------------------------------
// Scenario 3: shard identity under the adversarial schedule.
// ---------------------------------------------------------------------

struct IdentityOutcome {
    identical: bool,
    snapshots: usize,
    blacklist_revisions: u64,
}

/// Every published snapshot of an N-shard fleet over the adversarial
/// schedule, with the label noise retracted through `update_blacklist`
/// halfway — the same churn at the same batch boundary on every fleet.
fn fleet_sequence(s: &AdversarialStream, shards: usize) -> (Vec<Vec<u8>>, u64) {
    let cfg = FleetConfig {
        shards,
        ..FleetConfig::default()
    }
    .with_window_days(WINDOW_DAYS);
    let partitioner = Partitioner::with_communities(shards, 7, s.community_map());
    let core = FleetCore::new(cfg, partitioner, s.blacklist.clone());
    let all: Vec<Transaction> = s.window(0, s.config.base.days).copied().collect();
    let chunks: Vec<&[Transaction]> = all.chunks(500).collect();
    let retract_at = chunks.len() / 2;
    let mut snapshots = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        core.apply_transactions(chunk);
        if i == retract_at {
            assert!(core.update_blacklist(&[], &s.noise), "retraction applies");
        }
        if (i + 1) % 4 == 0 {
            core.exchange_now();
            snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
        }
    }
    core.exchange_now();
    snapshots.push(core.fleet_snapshot().verdicts.canonical_bytes());
    (
        snapshots,
        core.fleet_telemetry().counter("blacklist_revisions"),
    )
}

fn run_identity(s: &AdversarialStream) -> IdentityOutcome {
    let (one, revisions) = fleet_sequence(s, 1);
    let (two, _) = fleet_sequence(s, 2);
    let (four, _) = fleet_sequence(s, 4);
    IdentityOutcome {
        identical: one == two && one == four,
        snapshots: one.len(),
        blacklist_revisions: revisions,
    }
}

fn main() {
    let args = Args::parse();
    let json_path = args.get_str("json").unwrap_or("BENCH_adversarial.json");

    eprintln!("... generating adversarial stream");
    let s = stream(&args);
    let total = s.transactions.len();
    eprintln!(
        "... {total} transactions over {} days, {} pool accounts, {} noise entries",
        s.config.base.days,
        s.pool_members().len(),
        s.noise.len()
    );

    eprintln!("... scenario evolving-rings: live vs frozen day-0 snapshot");
    let rings = run_evolving_rings(&s);
    eprintln!("... scenario burst-flood: day-{} flood through the gate", 6);
    let burst = run_burst(&s);
    eprintln!("... scenario shard-identity: 1/2/4 shards with mid-run retraction");
    let identity = run_identity(&s);

    println!("\nadversarial_serve — evolving rings (window {WINDOW_DAYS} days)\n");
    print_table(
        &["day", "precision", "recall", "flagged", "truth"],
        &rings
            .series
            .iter()
            .map(|p| {
                vec![
                    p.day.to_string(),
                    format!("{:.3}", p.precision),
                    format!("{:.3}", p.recall),
                    p.flagged.to_string(),
                    p.truth.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nlive recall {:.3} vs static day-0 snapshot {:.3} (over {} frozen flags)\n",
        rings.live_recall, rings.static_recall, rings.static_flagged
    );

    println!(
        "burst-flood — {} submissions, DropOldest\n",
        burst.submitted
    );
    print_table(
        &[
            "never-down",
            "worst-state",
            "bursts",
            "shed-overflow",
            "recovered",
            "recovery",
        ],
        &[vec![
            burst.never_down.to_string(),
            burst.worst_state.as_str().to_string(),
            burst.bursts_detected.to_string(),
            burst.shed_overflow.to_string(),
            burst.recovered_healthy.to_string(),
            match burst.recovery {
                Some(d) => format!("{:.1} ms", d.as_secs_f64() * 1e3),
                None => "-".to_string(),
            },
        ]],
    );

    println!("\nshard-identity — adversarial schedule with mid-run retraction\n");
    print_table(
        &["shards", "snapshots", "identical", "blacklist-revisions"],
        &[vec![
            "1/2/4".to_string(),
            identity.snapshots.to_string(),
            identity.identical.to_string(),
            identity.blacklist_revisions.to_string(),
        ]],
    );

    let live_beats_static = rings.live_recall > rings.static_recall;
    let rings_json = serde_json::json!({
        "live_recall": rings.live_recall,
        "static_recall": rings.static_recall,
        "static_flagged": rings.static_flagged,
        "live_beats_static": live_beats_static,
        "series": rings.series.iter().map(|p| serde_json::json!({
            "day": p.day,
            "precision": p.precision,
            "recall": p.recall,
            "flagged": p.flagged,
            "truth": p.truth,
        })).collect::<Vec<_>>(),
    });
    let burst_json = serde_json::json!({
        "submitted": burst.submitted,
        "never_down": burst.never_down,
        "worst_state": burst.worst_state.as_str(),
        "degraded_seen": burst.degraded_seen,
        "recovered_healthy": burst.recovered_healthy,
        "recovery_ms": burst.recovery.map(|d| d.as_secs_f64() * 1e3),
        "bursts_detected": burst.bursts_detected,
        "shed_overflow": burst.shed_overflow,
        "shed_total": burst.shed_total,
    });
    let identity_json = serde_json::json!({
        "shards": vec![1, 2, 4],
        "snapshots": identity.snapshots,
        "identical": identity.identical,
        "blacklist_revisions": identity.blacklist_revisions,
    });
    let json = serde_json::json!({
        "bench": "adversarial_serve",
        "transactions": total,
        "window_days": WINDOW_DAYS,
        "evolving_rings": rings_json,
        "burst": burst_json,
        "identity": identity_json,
    });
    std::fs::write(
        json_path,
        serde_json::to_string_pretty(&json).expect("serializable"),
    )
    .expect("write json");
    eprintln!("... wrote {json_path}");

    // The bin doubles as a smoke check in CI: fail loudly if any
    // hardening claim did not hold.
    assert!(
        rings.live_recall > rings.static_recall,
        "live service must out-detect the frozen day-0 snapshot \
         ({:.3} vs {:.3})",
        rings.live_recall,
        rings.static_recall
    );
    assert!(burst.never_down, "the flood must never take the fleet Down");
    assert!(
        burst.recovered_healthy,
        "health must return to Healthy within the run (worst {})",
        burst.worst_state.as_str()
    );
    assert_eq!(
        burst.shed_overflow, burst.shed_total,
        "the overflow roll-up must cover every overflow shed"
    );
    assert!(
        identity.identical,
        "1/2/4-shard snapshots diverged under the adversarial schedule"
    );
    eprintln!("... all adversarial scenarios behaved as specified");
}
