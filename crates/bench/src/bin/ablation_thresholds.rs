//! Extra ablation: degree-dispatch threshold sweep.
//!
//! §5.3 fixes low < 32 and high > 128. This sweep moves both cut-offs and
//! shows the paper's choices sitting at (or near) the modeled optimum on a
//! representative power-law graph.
//!
//! Usage: `cargo run -p glp-bench --release --bin ablation_thresholds
//!         [--scale-mul K] [--iters N]`

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::{DegreeThresholds, GpuEngine, MflStrategy};
use glp_core::{ClassicLp, Engine, RunOptions};
use glp_graph::datasets::by_name;

fn main() {
    let args = Args::parse();
    let iters: u32 = args.get("iters", 20);
    let scale_mul: u64 = args.get("scale-mul", 4);
    let spec = by_name("ljournal").expect("registry");
    let g = spec.generate_scaled(spec.default_scale * scale_mul);
    eprintln!(
        "ljournal substitute: |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    for (low, high) in [
        (4, 128),
        (8, 128),
        (16, 128),
        (32, 128), // the paper's setting
        (32, 64),
        (32, 256),
        (32, 512),
        (8, 512),
    ] {
        let opts = RunOptions {
            max_iterations: iters,
            strategy: MflStrategy::SmemWarp,
            thresholds: DegreeThresholds { low, high },
            mid_ht_slots: (high as usize).next_power_of_two().max(256),
            ..Default::default()
        };
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
        let report = engine.run(&g, &mut prog, &opts).expect("healthy device");
        let marker = if (low, high) == (32, 128) {
            " <- paper"
        } else {
            ""
        };
        rows.push(vec![
            format!("{low}"),
            format!("{high}"),
            fmt_seconds(report.modeled_seconds),
            format!("{:.3}%{marker}", 100.0 * report.fallback_rate()),
        ]);
    }
    println!("Degree-threshold ablation (classic LP, ljournal substitute)");
    print_table(
        &["low (<)", "high (>)", "modeled time", "fallback rate"],
        &rows,
    );
}
