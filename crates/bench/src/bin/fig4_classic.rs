//! Regenerates **Figure 4** — speedup of all compared approaches over the
//! OMP baseline for classic LP (20 iterations).
//!
//! Usage: `cargo run -p glp-bench --release --bin fig4_classic
//!         [--scale-mul K] [--datasets a,b] [--iters N]`

use glp_bench::figures::run_speedup_figure;
use glp_bench::{Algo, Args};

fn main() {
    let args = Args::parse();
    run_speedup_figure(
        "Figure 4: speedup over OMP, classic LP",
        &[Algo::Classic],
        &args,
    );
}
