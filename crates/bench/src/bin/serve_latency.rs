//! serve_latency — offered-load sweep against the always-on scoring
//! service (`glp-serve`).
//!
//! Calibrates the *sustainable* throughput by driving the scoring core
//! synchronously end to end (batch apply + recluster at the configured
//! cadence), then runs the threaded service at a sweep of offered loads
//! (default 0.5×, 1×, and 2× sustainable). Each stage paces a bursty
//! producer against the ingest gate while a query thread hammers the
//! verdict snapshot, and reports ingest lag, query p50/p95/p99, shed
//! counts, and recluster statistics. Overload must shed — counted, never
//! silent — while query latency stays bounded; that is the service's
//! contract and this binary is how it is checked.
//!
//! It then measures the **sharding scaling curve**: the same regional
//! stream driven through a [`FleetCore`] at 1, 2, 4, and 8 shards with
//! community-aware routing and full boundary exchanges at the recluster
//! cadence. The container has one core, so shard reclusters run
//! sequentially and each wall is measured in isolation; a parallel
//! deployment's round cost is modeled as `max(shard walls) + exchange
//! wall`, giving a modeled tx/s per shard count. The curve self-asserts:
//! 4 shards must model at least `--scaling-min-speedup` (default 2×) the
//! 1-shard throughput, or the bench exits non-zero.
//!
//! Finally it measures the **incremental delta recluster** win: the same
//! warm window extended by small same-day micro-batches through two
//! service cores — one replaying incrementally, one pinned to
//! from-scratch reclusters — cross-checking every published snapshot
//! byte-for-byte and self-asserting the p50 speedup floor (default 3×).
//!
//! Usage: `cargo run -p glp-bench --release --bin serve_latency
//!         [--loads 0.5,1,2] [--stage-ms 400] [--json BENCH_serve.json]
//!         [--users N] [--days N] [--tx-per-day N] [--window-days N]
//!         [--queue N] [--max-batch N] [--recluster-every N] [--burst-ms N]
//!         [--no-scaling] [--scaling-shards 1,2,4,8] [--scaling-regions N]
//!         [--scaling-users-per-region N] [--scaling-tx-per-day N]
//!         [--scaling-days N] [--scaling-min-speedup X] [--no-scaling-assert]
//!         [--no-delta] [--delta-rounds N] [--delta-batch N]
//!         [--delta-warm-days N] [--delta-users N] [--delta-tx-per-day N]
//!         [--delta-min-speedup X] [--no-delta-assert]`

use glp_bench::table::print_table;
use glp_bench::Args;
use glp_fraud::{RegionalStream, RegionalTxConfig, Transaction, TxConfig, TxStream};
use glp_serve::{
    FleetConfig, FleetCore, FraudScorer, FraudService, Partitioner, ServeConfig, ServiceCore,
    Verdict,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let loads: Vec<f64> = args
        .get_str("loads")
        .unwrap_or("0.5,1,2")
        .split(',')
        .map(|s| s.trim().parse().expect("--loads takes numbers"))
        .collect();
    let stage_ms: u64 = args.get("stage-ms", 400);
    let burst_ms: u64 = args.get("burst-ms", 5);
    let json_path = args.get_str("json").unwrap_or("BENCH_serve.json");

    let cfg = ServeConfig {
        queue_capacity: args.get("queue", 2_048),
        max_batch: args.get("max-batch", 512),
        batch_budget: Duration::from_millis(args.get("budget-ms", 2)),
        recluster_every_batches: args.get("recluster-every", 8),
        max_staleness_batches: args.get("max-staleness", 32),
        engine_shards: args.get("shards", 0),
        ..ServeConfig::default()
    }
    .with_window_days(args.get("window-days", 10));

    let tx_cfg = TxConfig {
        num_users: args.get("users", 4_000),
        num_items: args.get("items", 1_500),
        days: args.get("days", 60),
        tx_per_day: args.get("tx-per-day", 4_000),
        num_rings: 5,
        ring_size: 12,
        ring_tx_per_day: 40,
        blacklist_fraction: 0.25,
        ..Default::default()
    };
    eprintln!("... generating transaction stream ({} days)", tx_cfg.days);
    let stream = TxStream::generate(&tx_cfg);
    let all: Vec<Transaction> = stream.window(0, tx_cfg.days).copied().collect();
    eprintln!(
        "... {} transactions, {} black-listed seeds",
        all.len(),
        stream.blacklist.len()
    );

    eprintln!("... calibrating sustainable throughput (synchronous drive)");
    let sustainable = calibrate(&cfg, &stream, &all);
    eprintln!("... sustainable ≈ {:.0} tx/s", sustainable);

    let mut rows = Vec::new();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    for &m in &loads {
        let offered = m * sustainable;
        eprintln!("... load {m}x ({offered:.0} tx/s offered, {stage_ms} ms)");
        let (row, json) = run_stage(&cfg, &stream, &all, m, offered, stage_ms, burst_ms);
        rows.push(row);
        json_rows.push(json);
    }

    println!(
        "serve_latency: offered-load sweep (sustainable {:.0} tx/s)",
        sustainable
    );
    print_table(
        &[
            "load",
            "offered/s",
            "achieved/s",
            "accepted",
            "shed",
            "lag p95",
            "query p50",
            "query p99",
            "reclusters",
            "staleness",
        ],
        &rows,
    );

    let scaling = if args.has("no-scaling") {
        serde_json::Value::Null
    } else {
        run_scaling(&args)
    };

    let delta = if args.has("no-delta") {
        serde_json::Value::Null
    } else {
        run_delta(&args)
    };

    let doc = serde_json::json!({
        "bench": "serve_latency",
        "transactions": all.len() as u64,
        "sustainable_tx_per_s": sustainable,
        "stage_ms": stage_ms,
        "config": serde_json::json!({
            "queue_capacity": cfg.queue_capacity as u64,
            "max_batch": cfg.max_batch as u64,
            "recluster_every_batches": cfg.recluster_every_batches,
            "window_days": cfg.window_days,
        }),
        "rows": json_rows,
        "scaling": scaling,
        "delta_recluster": delta,
    });
    std::fs::write(
        json_path,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
    eprintln!("wrote {json_path}");
}

/// End-to-end synchronous throughput: batch apply plus reclusters at the
/// service cadence, no threading — the conservative baseline the offered
/// loads are multiples of.
fn calibrate(cfg: &ServeConfig, stream: &TxStream, all: &[Transaction]) -> f64 {
    let core = ServiceCore::new(cfg.clone(), stream.blacklist.clone());
    let t0 = Instant::now();
    let mut batches = 0u64;
    for chunk in all.chunks(cfg.max_batch) {
        core.apply_transactions(chunk);
        batches += 1;
        if batches.is_multiple_of(cfg.recluster_every_batches) {
            core.recluster_now();
        }
    }
    core.recluster_now();
    all.len() as f64 / t0.elapsed().as_secs_f64()
}

#[allow(clippy::too_many_arguments)]
fn run_stage(
    cfg: &ServeConfig,
    stream: &TxStream,
    all: &[Transaction],
    multiplier: f64,
    offered: f64,
    stage_ms: u64,
    burst_ms: u64,
) -> (Vec<String>, serde_json::Value) {
    let service = FraudService::start(cfg.clone(), stream.blacklist.clone());
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let num_users = stream.config.num_users;

    // Query hammer: continuous lookups across the user space while the
    // producer runs, with a tiny periodic yield so it does not own a core.
    let query_worker = {
        let stop = Arc::clone(&stop);
        let handle = handle.clone();
        thread::spawn(move || {
            let mut i = 0u32;
            let mut counts = [0u64; 3]; // flagged, clean, unknown
            while !stop.load(Ordering::Relaxed) {
                match handle.score(i % num_users) {
                    Verdict::Flagged { .. } => counts[0] += 1,
                    Verdict::Clean => counts[1] += 1,
                    Verdict::Unknown => counts[2] += 1,
                }
                i = i.wrapping_add(1);
                if i.is_multiple_of(512) {
                    thread::sleep(Duration::from_micros(100));
                }
            }
            counts
        })
    };

    // Bursty producer: traffic arrives in `burst_ms`-sized clumps whose
    // long-run average matches the offered rate (real traffic is bursty;
    // a perfectly smooth producer would understate queue pressure).
    let burst = ((offered * burst_ms as f64 / 1_000.0).ceil() as usize).max(1);
    let started = Instant::now();
    let deadline = started + Duration::from_millis(stage_ms);
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    for chunk in all.chunks(burst) {
        let target = started + Duration::from_secs_f64(submitted as f64 / offered);
        let now = Instant::now();
        if target > now {
            thread::sleep(target - now);
        }
        if Instant::now() >= deadline {
            break;
        }
        for &t in chunk {
            submitted += 1;
            if service.submit(t).is_ok() {
                accepted += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let staleness = service.core().staleness_batches();
    stop.store(true, Ordering::Relaxed);
    let verdict_counts = query_worker.join().expect("query worker panicked");
    let core = service.shutdown().core;
    let t = core.telemetry();

    let achieved = submitted as f64 / elapsed;
    let shed = t.shed_total();
    let row = vec![
        format!("{multiplier}x"),
        format!("{offered:.0}"),
        format!("{achieved:.0}"),
        format!("{accepted}"),
        format!("{shed}"),
        format!("{:.1}us", t.ingest_lag.quantile(0.95) as f64 / 1_000.0),
        format!("{:.1}us", t.query_latency.quantile(0.50) as f64 / 1_000.0),
        format!("{:.1}us", t.query_latency.quantile(0.99) as f64 / 1_000.0),
        format!("{}", t.reclusters.load(Ordering::Relaxed)),
        format!("{staleness}"),
    ];
    let json = serde_json::json!({
        "load_multiplier": multiplier,
        "offered_tx_per_s": offered,
        "achieved_tx_per_s": achieved,
        "elapsed_s": elapsed,
        "submitted": submitted,
        "accepted": accepted,
        "shed_dropped_oldest": t.shed_dropped_oldest.load(Ordering::Relaxed),
        "shed_rejected_new": t.shed_rejected_new.load(Ordering::Relaxed),
        "batches": t.batches.load(Ordering::Relaxed),
        "reclusters": t.reclusters.load(Ordering::Relaxed),
        "reclusters_coalesced": t.reclusters_coalesced.load(Ordering::Relaxed),
        "staleness_batches_at_end": staleness,
        "queries": serde_json::json!({
            "flagged": verdict_counts[0],
            "clean": verdict_counts[1],
            "unknown": verdict_counts[2],
        }),
        "ingest_lag_ns": t.ingest_lag.to_json(),
        "batch_size": t.batch_size.to_json(),
        "recluster_wall_ns": t.recluster_wall.to_json(),
        "query_latency_ns": t.query_latency.to_json(),
    });
    (row, json)
}

/// Measures the steady-state win of incremental delta reclustering: two
/// identical service cores consume the same warm window and then the
/// same stream of small same-day micro-batches, one allowed to replay
/// incrementally (`delta_fraction_max` wide open, never forced full)
/// and one pinned to from-scratch reclusters (`delta_fraction_max =
/// 0.0`). Every round cross-checks the two published snapshots
/// byte-for-byte — the incremental path's whole contract — and the
/// section self-asserts the p50 speedup floor (default 3×) unless
/// `--no-delta-assert`.
fn run_delta(args: &Args) -> serde_json::Value {
    let rounds: usize = args.get("delta-rounds", 16);
    let batch: usize = args.get("delta-batch", 128);
    let warm_days = args.get("delta-warm-days", 8u32);
    let tx_cfg = TxConfig {
        num_users: args.get("delta-users", 4_000),
        num_items: args.get("delta-items", 1_500),
        days: warm_days + 2,
        tx_per_day: args.get("delta-tx-per-day", 4_000),
        num_rings: 5,
        ring_size: 12,
        ring_tx_per_day: 40,
        blacklist_fraction: 0.25,
        ..Default::default()
    };
    eprintln!(
        "... delta: generating stream ({} warm days + steady-state tail)",
        warm_days
    );
    let stream = TxStream::generate(&tx_cfg);
    let warm: Vec<Transaction> = stream.window(0, warm_days).copied().collect();
    // The steady-state feed: the tail days' transactions in small
    // chunks. The window outlives the whole feed, so no round crosses
    // an expiry boundary — each delta is a pure same-window extension.
    let tail: Vec<Transaction> = stream.window(warm_days, tx_cfg.days).copied().collect();
    assert!(
        tail.len() >= rounds * batch,
        "not enough tail transactions: lower --delta-rounds or --delta-batch"
    );

    let base = ServeConfig {
        delta_fraction_max: 1.0,
        full_recluster_every: 0,
        ..ServeConfig::default()
    }
    .with_window_days(warm_days + 4);
    let full_cfg = ServeConfig {
        delta_fraction_max: 0.0,
        ..base.clone()
    };
    let inc = ServiceCore::new(base, stream.blacklist.clone());
    let full = ServiceCore::new(full_cfg, stream.blacklist.clone());
    for chunk in warm.chunks(512) {
        inc.apply_transactions(chunk);
        full.apply_transactions(chunk);
    }
    // Both warm-up reclusters run from scratch; the incremental core
    // additionally captures the memo every later round replays from.
    inc.recluster_now();
    full.recluster_now();
    assert_eq!(
        inc.snapshot().canonical_bytes(),
        full.snapshot().canonical_bytes(),
        "warm-up snapshots must agree before the steady-state rounds"
    );

    let mut inc_walls = Vec::with_capacity(rounds);
    let mut full_walls = Vec::with_capacity(rounds);
    let mut frontiers = Vec::with_capacity(rounds);
    let mut incremental_rounds = 0u64;
    let mut identical = true;
    for chunk in tail.chunks(batch).take(rounds) {
        inc.apply_transactions(chunk);
        full.apply_transactions(chunk);
        let ri = inc.recluster_now();
        let rf = full.recluster_now();
        inc_walls.push(ri.wall_seconds);
        full_walls.push(rf.wall_seconds);
        frontiers.push(ri.frontier as u64);
        if ri.mode == glp_serve::ReclusterMode::Incremental {
            incremental_rounds += 1;
        }
        identical &= inc.snapshot().canonical_bytes() == full.snapshot().canonical_bytes();
    }
    let p50 = |walls: &[f64]| {
        let mut sorted = walls.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    };
    let (inc_p50, full_p50) = (p50(&inc_walls), p50(&full_walls));
    let speedup = full_p50 / inc_p50;
    let mut fr = frontiers.clone();
    fr.sort_unstable();
    let frontier_p50 = fr[fr.len() / 2];

    println!("serve_latency: incremental delta recluster (steady state)");
    print_table(
        &[
            "rounds",
            "incremental",
            "identical",
            "p50 incr",
            "p50 full",
            "speedup",
            "frontier p50",
        ],
        &[vec![
            format!("{rounds}"),
            format!("{incremental_rounds}"),
            format!("{identical}"),
            format!("{:.2}ms", inc_p50 * 1_000.0),
            format!("{:.2}ms", full_p50 * 1_000.0),
            format!("{speedup:.1}x"),
            format!("{frontier_p50}"),
        ]],
    );

    let min_speedup: f64 = args.get("delta-min-speedup", 3.0);
    assert!(identical, "incremental snapshots diverged from full ones");
    assert!(
        incremental_rounds > 0,
        "steady-state rounds never went incremental"
    );
    if !args.has("no-delta-assert") {
        assert!(
            speedup >= min_speedup,
            "delta regression: incremental recluster p50 is only {speedup:.2}x faster \
             than from-scratch (floor {min_speedup:.1}x)"
        );
    }
    serde_json::json!({
        "rounds": rounds as u64,
        "batch": batch as u64,
        "incremental_rounds": incremental_rounds,
        "identical": identical,
        "p50_incremental_ms": inc_p50 * 1_000.0,
        "p50_full_ms": full_p50 * 1_000.0,
        "speedup_p50": speedup,
        "frontier_p50": frontier_p50,
        "assert": serde_json::json!({
            "min_speedup_p50": min_speedup,
            "ok": speedup >= min_speedup,
        }),
    })
}

/// Measures the sharding scaling curve: tx/s versus shard count on one
/// regional stream with community-aware routing. Shard reclusters run
/// sequentially here (one core), each wall measured in isolation; the
/// modeled parallel cost of an exchange round is `max(shard walls) +
/// exchange wall`, plus the measured routing/apply wall which is serial
/// in the router either way. Self-asserts 4 shards >= the configured
/// multiple of 1-shard modeled throughput.
fn run_scaling(args: &Args) -> serde_json::Value {
    let shard_counts: Vec<usize> = args
        .get_str("scaling-shards")
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|s| s.trim().parse().expect("--scaling-shards takes integers"))
        .collect();
    let window_days = args.get("window-days", 10);
    let max_batch: usize = args.get("max-batch", 512);
    let exchange_every: u64 = args.get("recluster-every", 8);
    let r_cfg = RegionalTxConfig {
        regions: args.get("scaling-regions", 8),
        users_per_region: args.get("scaling-users-per-region", 400),
        items_per_region: args.get("scaling-items-per-region", 150),
        days: args.get("scaling-days", 12),
        tx_per_day: args.get("scaling-tx-per-day", 6_000),
        cross_rings: 8,
        ring_size: 12,
        ring_tx_per_day: 40,
        blacklist_fraction: 0.25,
        ..Default::default()
    };
    eprintln!(
        "... generating regional stream ({} regions, {} days) for the scaling curve",
        r_cfg.regions, r_cfg.days
    );
    let stream = RegionalStream::generate(&r_cfg);
    let all: Vec<Transaction> = stream.window(0, r_cfg.days).copied().collect();
    eprintln!("... {} transactions", all.len());

    let mut rows = Vec::new();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut modeled: Vec<(usize, f64)> = Vec::new();
    for &n in &shard_counts {
        eprintln!("... scaling: {n} shard(s)");
        let cfg = FleetConfig {
            shards: n,
            exchange_every_batches: exchange_every,
            ..FleetConfig::default()
        }
        .with_window_days(window_days);
        let core = FleetCore::new(
            cfg,
            Partitioner::balanced(n, 7, stream.community_map()),
            stream.blacklist.clone(),
        );
        let mut apply_wall = 0.0f64;
        let mut round_wall = 0.0f64;
        let mut exchange_wall = 0.0f64;
        let mut rounds = 0u64;
        let mut batches = 0u64;
        let mut boundary_users = 0usize;
        let mut spanning = 0usize;
        let mut exchange = |core: &FleetCore| {
            let o = core.exchange_now();
            round_wall += o
                .shard_runs
                .iter()
                .map(|r| r.wall_seconds)
                .fold(0.0, f64::max)
                + o.exchange_wall;
            exchange_wall += o.exchange_wall;
            rounds += 1;
            boundary_users = o.report.boundary_users;
            spanning = o.report.spanning_components;
        };
        for chunk in all.chunks(max_batch) {
            let t0 = Instant::now();
            core.apply_transactions(chunk);
            apply_wall += t0.elapsed().as_secs_f64();
            batches += 1;
            if batches.is_multiple_of(exchange_every) {
                exchange(&core);
            }
        }
        exchange(&core);
        assert!(
            core.fleet_snapshot().verdicts.num_flagged() > 0,
            "scaling run must flag the planted rings"
        );
        let modeled_wall = apply_wall + round_wall;
        let tx_per_s = all.len() as f64 / modeled_wall;
        modeled.push((n, tx_per_s));
        let speedup = tx_per_s / modeled[0].1;
        rows.push(vec![
            format!("{n}"),
            format!("{}", all.len()),
            format!("{rounds}"),
            format!("{:.3}s", apply_wall),
            format!("{:.3}s", round_wall),
            format!("{:.3}s", modeled_wall),
            format!("{tx_per_s:.0}"),
            format!("{speedup:.2}x"),
            format!("{boundary_users}"),
        ]);
        json_rows.push(serde_json::json!({
            "shards": n as u64,
            "transactions": all.len() as u64,
            "exchange_rounds": rounds,
            "apply_wall_s": apply_wall,
            "modeled_round_wall_s": round_wall,
            "exchange_wall_s": exchange_wall,
            "modeled_wall_s": modeled_wall,
            "modeled_tx_per_s": tx_per_s,
            "speedup_vs_1shard": speedup,
            "boundary_users": boundary_users as u64,
            "spanning_components": spanning as u64,
        }));
    }

    println!("serve_latency: sharding scaling curve (modeled-parallel rounds)");
    print_table(
        &[
            "shards",
            "txs",
            "rounds",
            "apply",
            "round wall",
            "modeled",
            "tx/s",
            "speedup",
            "boundary",
        ],
        &rows,
    );

    let min_speedup: f64 = args.get("scaling-min-speedup", 2.0);
    let one = modeled.iter().find(|(n, _)| *n == 1).map(|&(_, t)| t);
    let four = modeled.iter().find(|(n, _)| *n == 4).map(|&(_, t)| t);
    let checked = one.zip(four).map(|(t1, t4)| t4 / t1);
    let ok = checked.map(|s| s >= min_speedup);
    if let Some(s) = checked {
        eprintln!("... 4-shard speedup over 1-shard: {s:.2}x (floor {min_speedup:.1}x)");
        if !args.has("no-scaling-assert") {
            assert!(
                s >= min_speedup,
                "scaling regression: 4-shard modeled throughput is only {s:.2}x the \
                 1-shard baseline (floor {min_speedup:.1}x)"
            );
        }
    }
    serde_json::json!({
        "stream": serde_json::json!({
            "regions": r_cfg.regions as u64,
            "users_per_region": r_cfg.users_per_region as u64,
            "days": r_cfg.days,
            "tx_per_day": r_cfg.tx_per_day as u64,
            "transactions": all.len() as u64,
        }),
        "exchange_every_batches": exchange_every,
        "rows": json_rows,
        "assert": serde_json::json!({
            "min_speedup_4x_over_1": min_speedup,
            "measured_speedup_4_over_1": checked.unwrap_or(0.0),
            "ok": ok.unwrap_or(false),
        }),
    })
}
