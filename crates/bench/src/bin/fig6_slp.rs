//! Regenerates **Figure 6** — speedup of all compared approaches over the
//! OMP baseline for SLP (≤5 labels per vertex, 20 iterations). TG is
//! omitted, as in the paper.
//!
//! Usage: `cargo run -p glp-bench --release --bin fig6_slp
//!         [--scale-mul K] [--datasets a,b] [--iters N]`

use glp_bench::figures::run_speedup_figure;
use glp_bench::{Algo, Args};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 0x519);
    run_speedup_figure("Figure 6: speedup over OMP, SLP", &[Algo::Slp(seed)], &args);
}
