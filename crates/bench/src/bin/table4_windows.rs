//! Regenerates **Table 4** — TaoBao's sliding-window workloads.
//!
//! Builds the ten sliding-window graphs (10–100 days) from the synthetic
//! transaction stream and prints their sizes next to the paper's
//! production numbers. The generated stream reproduces the *shape*:
//! |V| saturates (recurring users) while |E| keeps growing.
//!
//! Usage: `cargo run -p glp-bench --release --bin table4_windows
//!         [--scale K]` (default 4; `--scale 1` is the full bench size)

use glp_bench::table::print_table;
use glp_bench::workloads::table4_stream;
use glp_bench::Args;
use glp_fraud::window::{table4, WindowWorkload};

fn main() {
    let args = Args::parse();
    let scale: u64 = args.get("scale", 4);
    eprintln!("... generating transaction stream (scale 1/{scale})");
    let stream = table4_stream(scale);
    let mut rows = Vec::new();
    for spec in table4() {
        let w = WindowWorkload::build(&stream, spec.days);
        eprintln!("... built {}-day window", spec.days);
        rows.push(vec![
            format!("{}days", spec.days),
            format!("{}M", spec.paper_vertices_m),
            format!("{:.1}B", spec.paper_edges_b),
            format!("{}", w.graph.num_vertices()),
            format!("{}", w.graph.num_edges()),
            format!("{:.1}", w.graph.avg_degree()),
        ]);
    }
    println!("Table 4: sliding-window workloads (paper vs generated)");
    print_table(
        &[
            "window",
            "paper |V|",
            "paper |E|",
            "gen |V|",
            "gen |E|",
            "gen avg-deg",
        ],
        &rows,
    );
    println!("\n(paper: V grows 2.2x from 10 to 100 days while E grows 6.0x —");
    println!("recurring users saturate |V|; the generated stream matches that shape)");
}
