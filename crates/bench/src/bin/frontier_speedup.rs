//! frontier_speedup — end-to-end gain of active-frontier scheduling.
//!
//! §2.2's criticism of prior GPU LP — "label values ... are repeatedly
//! loaded ... but only a subset of them have their labels updated" — is
//! exactly what [`FrontierMode::Auto`] removes. This bin runs classic LP
//! twice on a convergence-shaped workload (many small cliques that settle
//! within a few rounds, plus one long path that keeps a narrow frontier
//! alive) and reports the dense-vs-frontier modeled times together with
//! the per-iteration active-set decay, as `BENCH_frontier.json`.
//!
//! The run self-checks its own contract: labelings must be bit-identical
//! across the two modes, the frontier's active trace must be monotone
//! non-increasing on this workload, and the written JSON must parse back.
//!
//! A second section compares the three sparse directions
//! ([`FrontierMode::Push`], [`FrontierMode::Pull`],
//! [`FrontierMode::Auto`]) on two opposed workloads: a high-degree
//! all-clique graph whose frontier stays saturated (pull's early-exit
//! gather beats push's scattered writes) and a clique+long-path graph
//! with a thin long-lived tail (push's tiny touched volume beats pull's
//! full in-neighbor scan). The section self-asserts that each workload's
//! predicted winner actually wins and that Auto lands within 5% of the
//! better forced mode on both — the crossover chooser must never be
//! meaningfully worse than either static policy.
//!
//! Usage: `cargo run -p glp-bench --release --bin frontier_speedup
//!         [--smoke] [--cliques N] [--clique-size K] [--path-len N]
//!         [--iters N] [--json BENCH_frontier.json]`
//!
//! `--smoke` shrinks the workload for CI while keeping every assertion.

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Direction, Engine, FrontierMode, LpProgram, LpRunReport, RunOptions};
use glp_graph::{Graph, GraphBuilder, VertexId};

/// `cliques` disjoint k-cliques (settle in ~3 BSP rounds) plus one
/// `path_len`-vertex path (labels keep sliding, so a thin frontier
/// survives every round).
fn convergence_workload(cliques: usize, k: usize, path_len: usize) -> Graph {
    let n = cliques * k + path_len;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * k;
        for a in 0..k {
            for z in (a + 1)..k {
                b.add_edge((base + a) as VertexId, (base + z) as VertexId);
            }
        }
    }
    for i in 1..path_len {
        let v = (cliques * k + i) as VertexId;
        b.add_edge(v - 1, v);
    }
    b.symmetrize(true);
    b.build()
}

fn run(g: &Graph, iters: u32, frontier: FrontierMode) -> (LpRunReport, Vec<u32>) {
    let opts = RunOptions::default()
        .with_max_iterations(iters)
        .with_frontier(frontier);
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
    let report = engine.run(g, &mut prog, &opts).expect("healthy device");
    (report, prog.labels().to_vec())
}

/// One workload of the push/pull/auto three-way: `pull_wins` states the
/// predicted winner this graph is shaped to produce.
struct DirectionCase {
    name: &'static str,
    g: Graph,
    iters: u32,
    pull_wins: bool,
}

/// Runs the three sparse directions (plus a dense reference for the
/// identity check) on one case and returns the JSON row, asserting the
/// predicted winner and the Auto tolerance.
fn run_direction_case(case: &DirectionCase) -> serde_json::Value {
    let DirectionCase {
        name,
        g,
        iters,
        pull_wins,
    } = case;
    let (dense, dense_labels) = run(g, *iters, FrontierMode::Dense);
    let (push, push_labels) = run(g, *iters, FrontierMode::Push);
    let (pull, pull_labels) = run(g, *iters, FrontierMode::Pull);
    let (auto, auto_labels) = run(g, *iters, FrontierMode::Auto);

    for (mode, labels, report) in [
        ("push", &push_labels, &push),
        ("pull", &pull_labels, &pull),
        ("auto", &auto_labels, &auto),
    ] {
        assert_eq!(labels, &dense_labels, "{name}/{mode}: labels diverged");
        assert_eq!(
            report.changed_per_iteration, dense.changed_per_iteration,
            "{name}/{mode}: convergence diverged"
        );
    }

    // The workload must produce its predicted winner: pull on the
    // saturated high-degree graph, push on the thin long tail.
    let (winner, loser, wname, lname) = if *pull_wins {
        (&pull, &push, "pull", "push")
    } else {
        (&push, &pull, "push", "pull")
    };
    assert!(
        winner.modeled_seconds < loser.modeled_seconds,
        "{name}: {wname} ({}) must beat {lname} ({})",
        fmt_seconds(winner.modeled_seconds),
        fmt_seconds(loser.modeled_seconds),
    );

    // Auto must match the better static policy within 5% — the density
    // probe it charges each iteration is the only overhead it is allowed.
    let best = push.modeled_seconds.min(pull.modeled_seconds);
    assert!(
        auto.modeled_seconds <= 1.05 * best,
        "{name}: auto ({}) worse than 1.05x the best forced mode ({})",
        fmt_seconds(auto.modeled_seconds),
        fmt_seconds(best),
    );

    let mode_doc = |r: &LpRunReport| {
        serde_json::json!({
            "modeled_seconds": r.modeled_seconds,
            "iterations": r.iterations,
        })
    };
    serde_json::json!({
        "workload": *name,
        "vertices": g.num_vertices(),
        "edges": g.num_edges(),
        "winner": wname,
        "push": mode_doc(&push),
        "pull": mode_doc(&pull),
        "auto": mode_doc(&auto),
        "auto_push_iterations": auto.direction_count(Direction::Push),
        "auto_pull_iterations": auto.direction_count(Direction::Pull),
        "auto_within_tolerance": true,
    })
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    // Cliques are sized so propagate's edge traffic dominates the modeled
    // per-kernel launch overhead — the regime the paper's graphs live in.
    // Low-degree workloads are launch-bound and gain little; see the
    // ablation_frontier sweep for the per-dataset picture.
    let (d_cliques, d_k, d_path, d_iters) = if smoke {
        (800, 64, 500, 20)
    } else {
        (1_200, 96, 2_000, 60)
    };
    let cliques: usize = args.get("cliques", d_cliques);
    let k: usize = args.get("clique-size", d_k);
    let path_len: usize = args.get("path-len", d_path);
    let iters: u32 = args.get("iters", d_iters);
    let json_path = args.get_str("json").unwrap_or("BENCH_frontier.json");

    let g = convergence_workload(cliques, k, path_len);
    eprintln!(
        "... workload: {cliques} {k}-cliques + {path_len}-path = {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let (dense, dense_labels) = run(&g, iters, FrontierMode::Dense);
    let (frontier, frontier_labels) = run(&g, iters, FrontierMode::Auto);

    // Contract 1: frontier scheduling must not change the answer — the
    // bit-identity the whole Engine API pins.
    assert_eq!(
        dense_labels, frontier_labels,
        "frontier run diverged from dense"
    );
    assert_eq!(
        dense.changed_per_iteration, frontier.changed_per_iteration,
        "frontier run converged differently"
    );

    // Contract 2: on a convergence workload the active set only decays.
    let active = &frontier.active_per_iteration;
    assert!(!active.is_empty());
    for w in active.windows(2) {
        assert!(
            w[1] <= w[0],
            "active set grew: {} -> {} in trace {active:?}",
            w[0],
            w[1]
        );
    }
    assert!(
        *active.last().unwrap() < active[0],
        "active set never shrank: {active:?}"
    );

    let speedup = dense.modeled_seconds / frontier.modeled_seconds;
    let settled = active.last().copied().unwrap_or(0);

    // -- push/pull/auto three-way on two opposed workloads --------------
    let (a_cliques, a_k, a_iters, b_cliques, b_k, b_path, b_iters) = if smoke {
        (60, 96, 8, 150, 32, 800, 36)
    } else {
        (200, 128, 10, 400, 48, 2_000, 60)
    };
    let cases = [
        DirectionCase {
            // Saturated frontier on high-degree cliques: nearly every
            // vertex changes every round, so push's 32B scattered write
            // per touched edge dwarfs pull's early-exit gather.
            name: "dense_frontier_high_degree",
            g: convergence_workload(a_cliques, a_k, 0),
            iters: a_iters,
            pull_wins: true,
        },
        DirectionCase {
            // Thin long-lived tail: once the cliques settle only the
            // path keeps changing, so pull re-scans nearly every in-edge
            // for a frontier push touches in a few hundred bytes.
            name: "sparse_tail",
            g: convergence_workload(b_cliques, b_k, b_path),
            iters: b_iters,
            pull_wins: false,
        },
    ];
    let direction_rows: Vec<serde_json::Value> = cases
        .iter()
        .map(|c| {
            eprintln!(
                "... direction case {}: {} vertices, {} edges",
                c.name,
                c.g.num_vertices(),
                c.g.num_edges()
            );
            run_direction_case(c)
        })
        .collect();

    let mode_doc = |r: &LpRunReport| {
        serde_json::json!({
            "modeled_seconds": r.modeled_seconds,
            "iterations": r.iterations,
            "active_per_iteration": r.active_per_iteration.clone(),
        })
    };
    let doc = serde_json::json!({
        "bench": "frontier_speedup",
        "workload": serde_json::json!({
            "cliques": cliques,
            "clique_size": k,
            "path_len": path_len,
            "vertices": g.num_vertices(),
            "edges": g.num_edges(),
            "iterations": iters,
        }),
        "dense": mode_doc(&dense),
        "frontier": mode_doc(&frontier),
        "speedup": speedup,
        "labels_identical": true,
        "directions": direction_rows.clone(),
    });
    std::fs::write(
        json_path,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .expect("write json");

    // Contract 3: what we wrote parses back and carries the decay trace.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(json_path).expect("read json"))
            .expect("BENCH_frontier.json must parse");
    assert!(parsed["speedup"].as_f64().expect("speedup field") > 0.0);
    assert_eq!(
        parsed["frontier"]["active_per_iteration"]
            .as_array()
            .expect("trace")
            .len(),
        active.len()
    );
    let dirs = parsed["directions"].as_array().expect("directions section");
    assert_eq!(dirs.len(), cases.len());
    for d in dirs {
        assert!(
            d["auto_within_tolerance"].as_bool().unwrap_or(false),
            "direction row lost its tolerance flag"
        );
    }

    let rows = vec![
        vec![
            "dense".to_string(),
            fmt_seconds(dense.modeled_seconds),
            format!("{}", dense.iterations),
            format!("{}", dense.active_per_iteration[0]),
            format!("{}", dense.active_per_iteration.last().unwrap()),
        ],
        vec![
            "frontier".to_string(),
            fmt_seconds(frontier.modeled_seconds),
            format!("{}", frontier.iterations),
            format!("{}", active[0]),
            format!("{settled}"),
        ],
    ];
    println!("Frontier speedup (classic LP, {iters} iterations)");
    print_table(
        &["mode", "modeled", "iters", "active@1", "active@last"],
        &rows,
    );
    println!(
        "\nend-to-end speedup: {speedup:.1}x (frontier settles to {settled}/{} vertices)",
        g.num_vertices()
    );

    let dir_rows: Vec<Vec<String>> = direction_rows
        .iter()
        .map(|d| {
            vec![
                d["workload"].as_str().unwrap_or("?").to_string(),
                fmt_seconds(d["push"]["modeled_seconds"].as_f64().unwrap_or(0.0)),
                fmt_seconds(d["pull"]["modeled_seconds"].as_f64().unwrap_or(0.0)),
                fmt_seconds(d["auto"]["modeled_seconds"].as_f64().unwrap_or(0.0)),
                d["winner"].as_str().unwrap_or("?").to_string(),
                format!(
                    "{}p/{}g",
                    d["auto_push_iterations"].as_u64().unwrap_or(0),
                    d["auto_pull_iterations"].as_u64().unwrap_or(0)
                ),
            ]
        })
        .collect();
    println!("\nDirection three-way (classic LP)");
    print_table(
        &["workload", "push", "pull", "auto", "winner", "auto mix"],
        &dir_rows,
    );
    println!("wrote {json_path}");

    assert!(
        speedup >= 2.0,
        "frontier speedup {speedup:.2}x below the 2x the workload is built to show"
    );
}
