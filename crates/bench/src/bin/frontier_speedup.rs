//! frontier_speedup — end-to-end gain of active-frontier scheduling.
//!
//! §2.2's criticism of prior GPU LP — "label values ... are repeatedly
//! loaded ... but only a subset of them have their labels updated" — is
//! exactly what [`FrontierMode::Auto`] removes. This bin runs classic LP
//! twice on a convergence-shaped workload (many small cliques that settle
//! within a few rounds, plus one long path that keeps a narrow frontier
//! alive) and reports the dense-vs-frontier modeled times together with
//! the per-iteration active-set decay, as `BENCH_frontier.json`.
//!
//! The run self-checks its own contract: labelings must be bit-identical
//! across the two modes, the frontier's active trace must be monotone
//! non-increasing on this workload, and the written JSON must parse back.
//!
//! Usage: `cargo run -p glp-bench --release --bin frontier_speedup
//!         [--smoke] [--cliques N] [--clique-size K] [--path-len N]
//!         [--iters N] [--json BENCH_frontier.json]`
//!
//! `--smoke` shrinks the workload for CI while keeping every assertion.

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Engine, FrontierMode, LpProgram, LpRunReport, RunOptions};
use glp_graph::{Graph, GraphBuilder, VertexId};

/// `cliques` disjoint k-cliques (settle in ~3 BSP rounds) plus one
/// `path_len`-vertex path (labels keep sliding, so a thin frontier
/// survives every round).
fn convergence_workload(cliques: usize, k: usize, path_len: usize) -> Graph {
    let n = cliques * k + path_len;
    let mut b = GraphBuilder::new(n);
    for c in 0..cliques {
        let base = c * k;
        for a in 0..k {
            for z in (a + 1)..k {
                b.add_edge((base + a) as VertexId, (base + z) as VertexId);
            }
        }
    }
    for i in 1..path_len {
        let v = (cliques * k + i) as VertexId;
        b.add_edge(v - 1, v);
    }
    b.symmetrize(true);
    b.build()
}

fn run(g: &Graph, iters: u32, frontier: FrontierMode) -> (LpRunReport, Vec<u32>) {
    let opts = RunOptions::default()
        .with_max_iterations(iters)
        .with_frontier(frontier);
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
    let report = engine.run(g, &mut prog, &opts).expect("healthy device");
    (report, prog.labels().to_vec())
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    // Cliques are sized so propagate's edge traffic dominates the modeled
    // per-kernel launch overhead — the regime the paper's graphs live in.
    // Low-degree workloads are launch-bound and gain little; see the
    // ablation_frontier sweep for the per-dataset picture.
    let (d_cliques, d_k, d_path, d_iters) = if smoke {
        (800, 64, 500, 20)
    } else {
        (1_200, 96, 2_000, 60)
    };
    let cliques: usize = args.get("cliques", d_cliques);
    let k: usize = args.get("clique-size", d_k);
    let path_len: usize = args.get("path-len", d_path);
    let iters: u32 = args.get("iters", d_iters);
    let json_path = args.get_str("json").unwrap_or("BENCH_frontier.json");

    let g = convergence_workload(cliques, k, path_len);
    eprintln!(
        "... workload: {cliques} {k}-cliques + {path_len}-path = {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let (dense, dense_labels) = run(&g, iters, FrontierMode::Dense);
    let (frontier, frontier_labels) = run(&g, iters, FrontierMode::Auto);

    // Contract 1: frontier scheduling must not change the answer — the
    // bit-identity the whole Engine API pins.
    assert_eq!(
        dense_labels, frontier_labels,
        "frontier run diverged from dense"
    );
    assert_eq!(
        dense.changed_per_iteration, frontier.changed_per_iteration,
        "frontier run converged differently"
    );

    // Contract 2: on a convergence workload the active set only decays.
    let active = &frontier.active_per_iteration;
    assert!(!active.is_empty());
    for w in active.windows(2) {
        assert!(
            w[1] <= w[0],
            "active set grew: {} -> {} in trace {active:?}",
            w[0],
            w[1]
        );
    }
    assert!(
        *active.last().unwrap() < active[0],
        "active set never shrank: {active:?}"
    );

    let speedup = dense.modeled_seconds / frontier.modeled_seconds;
    let settled = active.last().copied().unwrap_or(0);

    let mode_doc = |r: &LpRunReport| {
        serde_json::json!({
            "modeled_seconds": r.modeled_seconds,
            "iterations": r.iterations,
            "active_per_iteration": r.active_per_iteration.clone(),
        })
    };
    let doc = serde_json::json!({
        "bench": "frontier_speedup",
        "workload": serde_json::json!({
            "cliques": cliques,
            "clique_size": k,
            "path_len": path_len,
            "vertices": g.num_vertices(),
            "edges": g.num_edges(),
            "iterations": iters,
        }),
        "dense": mode_doc(&dense),
        "frontier": mode_doc(&frontier),
        "speedup": speedup,
        "labels_identical": true,
    });
    std::fs::write(
        json_path,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .expect("write json");

    // Contract 3: what we wrote parses back and carries the decay trace.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(json_path).expect("read json"))
            .expect("BENCH_frontier.json must parse");
    assert!(parsed["speedup"].as_f64().expect("speedup field") > 0.0);
    assert_eq!(
        parsed["frontier"]["active_per_iteration"]
            .as_array()
            .expect("trace")
            .len(),
        active.len()
    );

    let rows = vec![
        vec![
            "dense".to_string(),
            fmt_seconds(dense.modeled_seconds),
            format!("{}", dense.iterations),
            format!("{}", dense.active_per_iteration[0]),
            format!("{}", dense.active_per_iteration.last().unwrap()),
        ],
        vec![
            "frontier".to_string(),
            fmt_seconds(frontier.modeled_seconds),
            format!("{}", frontier.iterations),
            format!("{}", active[0]),
            format!("{settled}"),
        ],
    ];
    println!("Frontier speedup (classic LP, {iters} iterations)");
    print_table(
        &["mode", "modeled", "iters", "active@1", "active@last"],
        &rows,
    );
    println!(
        "\nend-to-end speedup: {speedup:.1}x (frontier settles to {settled}/{} vertices)",
        g.num_vertices()
    );
    println!("wrote {json_path}");

    assert!(
        speedup >= 2.0,
        "frontier speedup {speedup:.2}x below the 2x the workload is built to show"
    );
}
