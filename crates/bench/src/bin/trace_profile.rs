//! trace_profile — end-to-end span trace and kernel profile of one run.
//!
//! Runs classic LP traced on the single-GPU engine (checkpointing on, so
//! snapshot kernels appear), exports the Chrome trace-event JSON as
//! `BENCH_trace.json` (load it in `chrome://tracing` or Perfetto), and
//! prints the per-kernel aggregation table by engine tier. An untraced
//! hybrid run of the same workload contributes a second tier to the
//! table — and doubles as a cross-engine label check.
//!
//! The run self-asserts the observability contract:
//!   1. the trace is structurally well-formed (unique ids, real parents,
//!      same-clock interval containment) with nothing dropped;
//!   2. the span timeline reconciles with the cost model to 1e-9 —
//!      kernel + transfer span seconds sum to `modeled_seconds`,
//!      `barrier_snapshot` spans to `snapshot_seconds`, transfer spans to
//!      `transfer_seconds`, and `LpRunReport::kernel_profile` totals to
//!      the kernel spans (simulated time is the one timeline, recorded
//!      once);
//!   3. the written JSON parses back and carries one event per launch.
//!
//! Usage: `cargo run -p glp-bench --release --bin trace_profile
//!         [--smoke] [--vertices N] [--iters N] [--json BENCH_trace.json]`
//!
//! `--smoke` shrinks the workload for CI while keeping every assertion.

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::{BarrierHook, GpuEngine, HybridEngine};
use glp_core::{ClassicLp, Engine, LpProgram, RunOptions};
use glp_graph::gen::{community_powerlaw, CommunityPowerLawConfig};
use glp_trace::{Category, KernelProfile, Tracer};

const EPS: f64 = 1e-9;

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let (d_verts, d_iters) = if smoke { (2_000, 12) } else { (20_000, 30) };
    let n: usize = args.get("vertices", d_verts);
    let iters: u32 = args.get("iters", d_iters);
    let json_path = args.get_str("json").unwrap_or("BENCH_trace.json");

    let g = community_powerlaw(&CommunityPowerLawConfig {
        num_vertices: n,
        avg_degree: 12.0,
        ..Default::default()
    });
    eprintln!(
        "... workload: power-law, {} vertices, {} edges, {iters} iterations",
        g.num_vertices(),
        g.num_edges()
    );

    let tracer = Tracer::new();
    let opts = RunOptions::default()
        .with_max_iterations(iters)
        // Checkpointing on: barrier_snapshot kernels must show up as
        // spans and reconcile against snapshot_seconds.
        .with_barrier_hook(BarrierHook::new(|_| {}))
        .with_tracer(tracer.clone());
    let mut engine = GpuEngine::titan_v();
    let mut prog = ClassicLp::with_max_iterations(n, iters);
    let report = engine.run(&g, &mut prog, &opts).expect("healthy device");

    // Contract 1: structurally well-formed, nothing dropped or left open.
    let trace = tracer.finish();
    trace
        .check_well_formed(EPS)
        .expect("trace must be well-formed");
    assert_eq!(trace.dropped, 0, "trace overflowed the sink bound");
    assert_eq!(tracer.open_spans(), 0, "spans left open after the run");

    // Contract 2: the span timeline and the cost model agree to 1e-9.
    let kernel_s = trace.category_seconds(Category::Kernel);
    let transfer_s = trace.category_seconds(Category::Transfer);
    let snapshot_s = trace.total_seconds("barrier_snapshot");
    assert!(report.snapshots_taken > 0, "checkpointing never engaged");
    assert!(
        (kernel_s + transfer_s - report.modeled_seconds).abs() < EPS,
        "kernel {kernel_s} + transfer {transfer_s} != modeled {}",
        report.modeled_seconds
    );
    assert!(
        (snapshot_s - report.snapshot_seconds).abs() < EPS,
        "snapshot spans {snapshot_s} != charged {}",
        report.snapshot_seconds
    );
    assert!(
        (transfer_s - report.transfer_seconds).abs() < EPS,
        "transfer spans {transfer_s} != charged {}",
        report.transfer_seconds
    );
    assert!(
        (report.kernel_profile.total_seconds() - kernel_s).abs() < EPS,
        "kernel profile disagrees with kernel spans"
    );
    eprintln!(
        "... reconciled: modeled {} = kernels {} + transfers {}",
        fmt_seconds(report.modeled_seconds),
        fmt_seconds(kernel_s),
        fmt_seconds(transfer_s)
    );

    // Second tier for the table (untraced — the profile is filled from
    // the kernel log either way) and a cross-engine answer check.
    let mut hybrid = HybridEngine::titan_v();
    let mut hybrid_prog = ClassicLp::with_max_iterations(n, iters);
    let hybrid_report = hybrid
        .run(
            &g,
            &mut hybrid_prog,
            &RunOptions::default().with_max_iterations(iters),
        )
        .expect("healthy hybrid device");
    assert_eq!(
        prog.labels(),
        hybrid_prog.labels(),
        "hybrid run diverged from the GPU run"
    );

    let mut profile = KernelProfile::new();
    profile.merge(&report.kernel_profile);
    profile.merge(&hybrid_report.kernel_profile);

    // Contract 3: the Chrome export is real JSON with one event per
    // recorded launch.
    let json = trace.chrome_json();
    std::fs::write(json_path, &json).expect("write json");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(json_path).expect("read json"))
            .expect("BENCH_trace.json must parse");
    let events = parsed["traceEvents"].as_array().expect("traceEvents");
    let kernel_events = events
        .iter()
        .filter(|e| e["cat"].as_str() == Some("kernel"))
        .count() as u64;
    let launches: u64 = report.kernel_profile.rows().map(|(_, _, r)| r.count).sum();
    assert_eq!(
        kernel_events, launches,
        "one kernel span per launch in the export"
    );
    eprintln!("... wrote {json_path} ({} events)", events.len());

    let rows: Vec<Vec<String>> = profile
        .rows()
        .map(|(tier, kernel, row)| {
            vec![
                tier.to_string(),
                kernel.to_string(),
                row.count.to_string(),
                fmt_seconds(row.total_s),
                fmt_seconds(row.p50_s()),
                fmt_seconds(row.max_s),
            ]
        })
        .collect();
    print_table(&["tier", "kernel", "count", "total", "p50", "max"], &rows);
    println!(
        "\ntrace: {} events, {} modeled, snapshots {}",
        trace.events.len(),
        fmt_seconds(report.modeled_seconds),
        report.snapshots_taken
    );
}
