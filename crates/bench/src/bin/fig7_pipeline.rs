//! Regenerates **Figure 7** — elapsed time per LP iteration on the
//! sliding-window workloads: GLP on one GPU (hybrid mode when the graph
//! exceeds device memory), GLP on two GPUs, and the in-house 32-machine
//! distributed solution.
//!
//! Device memory is shrunk proportionally to the workload scale (the
//! paper's billion-edge windows overflow a 12 GiB Titan V; our scaled
//! windows overflow a scaled device), so the CPU–GPU hybrid mode really
//! engages on the longer windows — and the "<10% transfer overhead" claim
//! (§5.4) is checked on the printout.
//!
//! Usage: `cargo run -p glp-bench --release --bin fig7_pipeline
//!         [--scale K] [--iters N] [--device-mem-mb M]`

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::workloads::table4_stream;
use glp_bench::Args;
use glp_core::engine::{HybridEngine, MultiGpuEngine};
use glp_core::{ClassicLp, Engine, RunOptions};
use glp_fraud::window::{table4, WindowWorkload};
use glp_fraud::InHouseLp;
use glp_gpusim::{Device, DeviceConfig};

fn main() {
    let args = Args::parse();
    let scale: u64 = args.get("scale", 4);
    let iters: u32 = args.get("iters", 20);
    let device_mem_mb: u64 = args.get("device-mem-mb", 64 / scale.min(16));
    eprintln!("... generating transaction stream (scale 1/{scale})");
    let stream = table4_stream(scale);

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut two_gpu_gains = Vec::new();
    for spec in table4() {
        let w = WindowWorkload::build(&stream, spec.days);
        let g = &w.graph;
        let n = g.num_vertices();
        eprintln!(
            "... {}-day window: |V|={} |E|={}",
            spec.days,
            n,
            g.num_edges()
        );

        // GLP, one (scaled) GPU; hybrid mode engages when the CSR
        // overflows.
        let opts = RunOptions::default().with_max_iterations(iters);
        let dev_cfg = DeviceConfig::tiny(device_mem_mb * (1 << 20));
        let mut glp1 = HybridEngine::new(Device::new(dev_cfg.clone()));
        let chunks = glp1.plan_chunks(g);
        let mut p = ClassicLp::with_max_iterations(n, iters);
        let r1 = glp1.run(g, &mut p, &opts).expect("healthy device");

        // GLP, two GPUs of the same scaled size — their combined memory
        // holds every window, mirroring how the paper's second Titan V
        // relieves the memory pressure.
        let mut glp2 = MultiGpuEngine::new(2, DeviceConfig::tiny(2 * device_mem_mb * (1 << 20)));
        let mut p = ClassicLp::with_max_iterations(n, iters);
        let r2 = glp2.run(g, &mut p, &opts).expect("healthy device");

        // The in-house 32-machine distributed solution, its fixed
        // per-superstep latency scaled by how much smaller this window is
        // than the production one (proportional costs scale on their own).
        let workload_ratio = (f64::from(spec.paper_vertices_m) * 1e6 / n as f64).max(1.0);
        let mut p = ClassicLp::with_max_iterations(n, iters);
        let r_in = InHouseLp::taobao_scaled(workload_ratio)
            .run(g, &mut p, &opts)
            .expect("healthy cluster");

        let speedup = r_in.seconds_per_iteration() / r1.seconds_per_iteration();
        let gain2 = r1.seconds_per_iteration() / r2.seconds_per_iteration();
        speedups.push(speedup);
        two_gpu_gains.push(gain2);
        rows.push(vec![
            format!("{}days", spec.days),
            format!("{}", g.num_edges()),
            fmt_seconds(r_in.seconds_per_iteration()),
            fmt_seconds(r1.seconds_per_iteration()),
            fmt_seconds(r2.seconds_per_iteration()),
            format!("{speedup:.1}x"),
            format!("{gain2:.1}x"),
            if chunks > 1 {
                format!(
                    "hybrid ({chunks} chunks, {:.1}% transfer)",
                    100.0 * r1.transfer_fraction()
                )
            } else {
                "in-core".to_string()
            },
        ]);
    }
    println!("Figure 7: elapsed time per LP iteration (classic LP, {iters} iterations)");
    print_table(
        &[
            "window",
            "|E|",
            "in-house",
            "GLP 1GPU",
            "GLP 2GPU",
            "speedup",
            "2GPU gain",
            "mode",
        ],
        &rows,
    );
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let avg2 = two_gpu_gains.iter().sum::<f64>() / two_gpu_gains.len() as f64;
    println!("\nGLP average speedup over the in-house solution: {avg:.1}x (paper: 8.2x)");
    println!("Average additional speedup with a second GPU: {avg2:.1}x (paper: 1.8x)");
    println!("\nMonetary comparison (§5.4, official list prices):");
    println!("  in-house, per machine: 4 x Xeon Platinum 8168 @ $5,890 = $23,560 (x32 machines)");
    println!("  GLP: Xeon W-2133 @ $617 + Titan V @ $2,999 = $3,616 (one machine)");
}
