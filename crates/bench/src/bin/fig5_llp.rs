//! Regenerates **Figure 5** — speedup of all compared approaches over the
//! OMP baseline for LLP.
//!
//! The paper sweeps γ = 2^i for i = 0..=9, 20 iterations per γ. The
//! default here runs a 3-point subset of the sweep (γ = 1, 16, 256) to
//! stay quick; pass `--full` for all ten values. TG is omitted, as in the
//! paper (it only supports classic LP).
//!
//! Usage: `cargo run -p glp-bench --release --bin fig5_llp
//!         [--scale-mul K] [--datasets a,b] [--iters N] [--full]`

use glp_bench::figures::run_speedup_figure;
use glp_bench::{Algo, Args};

fn main() {
    let args = Args::parse();
    let gammas: Vec<f64> = if args.has("full") {
        (0..10).map(|i| f64::from(1 << i)).collect()
    } else {
        vec![1.0, 16.0, 256.0]
    };
    let algos: Vec<Algo> = gammas.iter().map(|&g| Algo::Llp(g)).collect();
    run_speedup_figure(
        &format!("Figure 5: speedup over OMP, LLP (γ sweep over {gammas:?})"),
        &algos,
        &args,
    );
}
