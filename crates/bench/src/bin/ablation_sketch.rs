//! Extra ablation: CMS+HT geometry sweep (the `h`, `d`, `w` of §4.1).
//!
//! Theorem 1 bounds the global-fallback probability by `m·2^-d + e^-h`;
//! this sweep shows the engine's *measured* fallback rate and modeled time
//! tracking the bound as the shared-memory structures shrink — the
//! design-choice evidence behind the paper's defaults (h=1024, d=4).
//!
//! Usage: `cargo run -p glp-bench --release --bin ablation_sketch
//!         [--scale-mul K] [--iters N]`

use glp_bench::table::{fmt_seconds, print_table};
use glp_bench::Args;
use glp_core::engine::{GpuEngine, MflStrategy};
use glp_core::{ClassicLp, Engine, RunOptions};
use glp_graph::datasets::by_name;

fn main() {
    let args = Args::parse();
    let iters: u32 = args.get("iters", 20);
    let scale_mul: u64 = args.get("scale-mul", 4);
    let spec = by_name("aligraph").expect("registry");
    let g = spec.generate_scaled(spec.default_scale * scale_mul);
    eprintln!(
        "aligraph substitute: |V|={} |E|={} (every vertex is high-degree)",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    for (ht_slots, cms_depth, cms_width) in [
        (2048, 4, 2048),
        (1024, 4, 2048), // the paper-default geometry
        (256, 4, 2048),
        (64, 4, 2048),
        (1024, 2, 2048),
        (1024, 1, 2048),
        (64, 1, 256),
    ] {
        let opts = RunOptions {
            max_iterations: iters,
            strategy: MflStrategy::SmemWarp,
            ht_slots,
            cms_depth,
            cms_width,
            ..Default::default()
        };
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), iters);
        let report = engine.run(&g, &mut prog, &opts).expect("healthy device");
        rows.push(vec![
            format!("{ht_slots}"),
            format!("{cms_depth}"),
            format!("{cms_width}"),
            format!("{:.3}%", 100.0 * report.fallback_rate()),
            fmt_seconds(report.modeled_seconds),
        ]);
    }
    println!("Sketch-geometry ablation (classic LP on the aligraph substitute)");
    print_table(
        &[
            "HT slots h",
            "CMS depth d",
            "CMS width w",
            "fallback rate",
            "modeled time",
        ],
        &rows,
    );
    println!("\n(Theorem 1: P[global access] <= m*2^-d + e^-h; shrinking h or d");
    println!("raises the measured fallback rate, which drags modeled time with it)");
}
