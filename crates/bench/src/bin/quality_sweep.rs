//! Extra experiment: detection quality vs community mixing.
//!
//! The paper evaluates *performance* only; a library user also needs to
//! know the algorithms find the right communities. This sweep generates
//! planted-partition graphs at increasing mixing (intra-community edges
//! get rarer) and reports NMI / purity / modularity of classic LP and LLP
//! against the planted ground truth, plus the γ-resolution effect LLP
//! exists for (smaller communities at higher γ).
//!
//! Usage: `cargo run -p glp-bench --release --bin quality_sweep
//!         [--vertices N] [--iters N]`

use glp_bench::table::print_table;
use glp_bench::Args;
use glp_core::community::{modularity, nmi, num_communities, purity};
use glp_core::engine::GpuEngine;
use glp_core::{ClassicLp, Engine, Llp, LpProgram, RunOptions};
use glp_graph::gen::{community_powerlaw_with_truth, CommunityPowerLawConfig};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("vertices", 20_000);
    let iters: u32 = args.get("iters", 20);

    println!("Detection quality vs mixing (classic LP, {n} vertices, {iters} iterations)");
    let mut rows = Vec::new();
    for mixing in [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let (g, truth) = community_powerlaw_with_truth(&CommunityPowerLawConfig {
            num_vertices: n,
            avg_degree: 10.0,
            num_communities: 64,
            mixing,
            ..Default::default()
        });
        let mut prog = ClassicLp::with_max_iterations(n, iters);
        GpuEngine::titan_v()
            .run(&g, &mut prog, &RunOptions::default())
            .expect("healthy device");
        let labels = prog.labels();
        rows.push(vec![
            format!("{mixing:.2}"),
            format!("{}", num_communities(labels)),
            format!("{:.3}", nmi(labels, &truth)),
            format!("{:.3}", purity(labels, &truth)),
            format!("{:.3}", modularity(&g, labels)),
        ]);
    }
    print_table(&["mixing", "found", "NMI", "purity", "modularity"], &rows);

    println!("\nLLP resolution effect (mixing 0.1): higher γ → smaller communities");
    let (g, truth) = community_powerlaw_with_truth(&CommunityPowerLawConfig {
        num_vertices: n,
        avg_degree: 10.0,
        num_communities: 64,
        mixing: 0.1,
        ..Default::default()
    });
    let mut rows = Vec::new();
    for gamma in [0.0, 0.5, 1.0, 2.0, 4.0, 16.0] {
        let mut prog = Llp::with_max_iterations(n, gamma, iters);
        GpuEngine::titan_v()
            .run(&g, &mut prog, &RunOptions::default())
            .expect("healthy device");
        let labels = prog.labels();
        rows.push(vec![
            format!("{gamma}"),
            format!("{}", num_communities(labels)),
            format!("{:.3}", nmi(labels, &truth)),
            format!("{:.3}", modularity(&g, labels)),
        ]);
    }
    print_table(&["gamma", "found", "NMI", "modularity"], &rows);
}
