//! Minimal flag parsing shared by the experiment binaries (no external
//! CLI dependency needed for `--flag value` pairs and boolean switches).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(it: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut it = it.into_iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                panic!("unexpected positional argument {a:?}");
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked");
                    args.flags.insert(name.to_string(), v);
                }
                _ => args.switches.push(name.to_string()),
            }
        }
        args
    }

    /// Value of `--name`, parsed, or `default`. A present-but-unparsable
    /// value prints a clean error and exits 2 (these are CLI entry points;
    /// a panic backtrace helps nobody).
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        self.flags
            .get(name)
            .map(|v| {
                v.parse().unwrap_or_else(|e| {
                    eprintln!("error: --{name} {v:?}: {e}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    }

    /// Raw string value of `--name`.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether switch `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn flags_and_switches() {
        let a = parse("--scale 8 --full --iters 5");
        assert_eq!(a.get("scale", 1u64), 8);
        assert_eq!(a.get("iters", 20u32), 5);
        assert!(a.has("full"));
        assert!(!a.has("quick"));
        assert_eq!(a.get("missing", 3i32), 3);
    }

    #[test]
    fn string_values() {
        let a = parse("--datasets dblp,roadNet");
        assert_eq!(a.get_str("datasets"), Some("dblp,roadNet"));
    }

    #[test]
    #[should_panic(expected = "unexpected positional")]
    fn positional_rejected() {
        parse("oops");
    }
}
