//! Micro-benches of the substrate primitives behind the kernels: the
//! shared-memory structures of §4.1 and the warp intrinsics of §4.2.

use criterion::{criterion_group, criterion_main, Criterion};
use glp_gpusim::warp::{ballot_sync, match_any_sync, popc, WARP_SIZE};
use glp_sketch::{BoundedHashTable, CountMinSketch};
use std::hint::black_box;

fn bench_sketches(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketches");
    group.bench_function("cms_add", |b| {
        let mut cms = CountMinSketch::new(4, 2048);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9e37);
            black_box(cms.add(k % 512, 1.0))
        });
    });
    group.bench_function("ht_insert_add", |b| {
        let mut ht = BoundedHashTable::new(1024, 32);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let r = ht.insert_add(k % 700, 1.0);
            if k.is_multiple_of(700) {
                ht.clear();
            }
            black_box(r)
        });
    });
    group.bench_function("ht_clear_touched", |b| {
        let mut ht = BoundedHashTable::new(4096, 64);
        b.iter(|| {
            for k in 0..256u64 {
                ht.insert_add(k, 1.0);
            }
            ht.clear();
        });
    });
    group.finish();
}

fn bench_warp_intrinsics(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_intrinsics");
    let mut vals = [0u64; WARP_SIZE];
    for (i, v) in vals.iter_mut().enumerate() {
        *v = (i % 7) as u64;
    }
    let preds = [true; WARP_SIZE];
    group.bench_function("ballot_sync", |b| {
        b.iter(|| black_box(ballot_sync(u32::MAX, black_box(&preds))));
    });
    group.bench_function("match_any_sync", |b| {
        b.iter(|| black_box(match_any_sync(u32::MAX, black_box(&vals))));
    });
    group.bench_function("popc", |b| {
        b.iter(|| black_box(popc(black_box(0xdead_beef))));
    });
    group.finish();
}

criterion_group!(kernels, bench_sketches, bench_warp_intrinsics);
criterion_main!(kernels);
