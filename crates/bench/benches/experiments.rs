//! Criterion benches mirroring every paper experiment at reduced scale, so
//! `cargo bench --workspace` exercises each table/figure end to end. The
//! experiment binaries (`cargo run -p glp-bench --bin ...`) produce the
//! full tables; these track the harness's own performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glp_bench::workloads::table4_stream;
use glp_bench::{run_algo, Algo, Approach};
use glp_core::engine::{GpuEngine, HybridEngine, MflStrategy, MultiGpuEngine};
use glp_core::{ClassicLp, Engine, RunOptions};
use glp_fraud::{FraudPipeline, InHouseLp, PipelineConfig, WindowWorkload};
use glp_gpusim::{Device, DeviceConfig};
use glp_graph::datasets::by_name;
use glp_graph::Graph;

fn small_graph() -> Graph {
    by_name("dblp").expect("registry").generate_scaled(32)
}

fn bench_table2_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_generation");
    group.sample_size(10);
    for name in ["dblp", "roadNet", "aligraph", "uk-2002"] {
        let spec = by_name(name).expect("registry");
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| spec.generate_scaled(spec.default_scale * 32));
        });
    }
    group.finish();
}

fn bench_fig4_approaches(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("fig4_classic");
    group.sample_size(10);
    for a in Approach::all() {
        group.bench_with_input(BenchmarkId::from_parameter(a.name()), &a, |b, &a| {
            b.iter(|| run_algo(a, &g, Algo::Classic, 5));
        });
    }
    group.finish();
}

fn bench_fig5_fig6_variants(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("fig5_fig6_variants");
    group.sample_size(10);
    group.bench_function("llp_glp", |b| {
        b.iter(|| run_algo(Approach::Glp, &g, Algo::Llp(16.0), 5))
    });
    group.bench_function("slp_glp", |b| {
        b.iter(|| run_algo(Approach::Glp, &g, Algo::Slp(9), 5))
    });
    group.finish();
}

fn bench_table3_strategies(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("table3_strategies");
    group.sample_size(10);
    for (name, s) in [
        ("global", MflStrategy::Global),
        ("smem", MflStrategy::Smem),
        ("smem_warp", MflStrategy::SmemWarp),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, &s| {
            b.iter(|| {
                let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 5);
                let opts = RunOptions::default().with_strategy(s);
                GpuEngine::titan_v().run(&g, &mut prog, &opts)
            });
        });
    }
    group.finish();
}

fn bench_table4_fig7_windows(c: &mut Criterion) {
    let stream = table4_stream(64);
    let mut group = c.benchmark_group("table4_fig7");
    group.sample_size(10);
    group.bench_function("window_build_30d", |b| {
        b.iter(|| WindowWorkload::build(&stream, 30));
    });
    let w = WindowWorkload::build(&stream, 30);
    group.bench_function("glp_hybrid", |b| {
        b.iter(|| {
            let dev = Device::new(DeviceConfig::tiny(1 << 20));
            let mut e = HybridEngine::new(dev);
            let mut p = ClassicLp::with_max_iterations(w.graph.num_vertices(), 5);
            e.run(&w.graph, &mut p, &RunOptions::default())
        });
    });
    group.bench_function("glp_2gpu", |b| {
        b.iter(|| {
            let mut e = MultiGpuEngine::titan_v(2);
            let mut p = ClassicLp::with_max_iterations(w.graph.num_vertices(), 5);
            e.run(&w.graph, &mut p, &RunOptions::default())
        });
    });
    group.bench_function("inhouse", |b| {
        b.iter(|| {
            let mut p = ClassicLp::with_max_iterations(w.graph.num_vertices(), 5);
            InHouseLp::taobao().run(&w.graph, &mut p, &RunOptions::default())
        });
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| {
            let pipe = FraudPipeline::new(PipelineConfig {
                window_days: 30,
                lp_iterations: 5,
                ..Default::default()
            });
            pipe.run(&stream, &mut GpuEngine::titan_v(), &RunOptions::default())
        });
    });
    group.finish();
}

criterion_group!(
    experiments,
    bench_table2_generation,
    bench_fig4_approaches,
    bench_fig5_fig6_variants,
    bench_table3_strategies,
    bench_table4_fig7_windows
);
criterion_main!(experiments);
