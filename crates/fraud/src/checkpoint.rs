//! Versioned, checksummed on-disk checkpoints of a sliding window.
//!
//! The serving path's durability story: the [`IncrementalWindow`] *is*
//! the service's only hard state (verdict snapshots are recomputed from
//! it), so periodically persisting the window — plus the batch clock,
//! the snapshot epoch, and the monotonic telemetry counters — lets a
//! crashed or restarted service resume scoring from the last checkpoint
//! instead of an empty window. Because a window materializes by replaying
//! its log through the shared single-pass graph construction, a restored
//! window's LP output is **byte-identical** to the uninterrupted run's
//! (pinned in `glp-serve`'s checkpoint tests).
//!
//! The format is deliberately hand-rolled (the workspace's vendored
//! `serde` is a no-op shim) and deliberately boring:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "GLPW"
//! 4       4     format version (le u32, currently 2)
//! 8       4     window days          (le u32)
//! 12      4     window end day       (le u32, exclusive)
//! 16      8     batches applied      (le u64)
//! 24      8     verdict epoch        (le u64)
//! 32      4     counter count C      (le u32)
//! 36      8C    counters             (le u64 each, caller-defined order)
//! 36+8C   8     transaction count T  (le u64)
//! ...     16T   transactions         (buyer, item, day: le u32; amount: f32 bits)
//! ...     8     sequence count S     (le u64; v2 only, S = 0 or S = T)
//! ...     8S    sequence stamps      (le u64 each, strictly increasing)
//! end-4   4     CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! Version 2 appends an optional per-transaction *sequence stamp*
//! section: the sharded service (`glp-serve`'s shard cores) stamps every
//! routed transaction with a fleet-global arrival sequence so that a
//! restored fleet can reconstruct the cross-shard interleaving its
//! label-exchange protocol merges by. Version-1 images (no stamp
//! section) still decode, with `seqs` empty.
//!
//! Writes go through a temp file + atomic rename, so a crash mid-write
//! leaves the previous checkpoint intact; reads verify magic, version,
//! length, checksum, and the window invariants before anything is
//! trusted. A torn, truncated, or bit-flipped file yields a typed
//! [`CheckpointError`], never a corrupt window.

use crate::incremental::IncrementalWindow;
use crate::transactions::Transaction;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Current encoding version. Bump on any layout change; [`decode`]
/// rejects versions it does not know (version 1, which lacks the
/// sequence-stamp section, is still accepted).
///
/// [`decode`]: WindowCheckpoint::decode
pub const CHECKPOINT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"GLPW";
const HEADER_BYTES: usize = 36;
const TX_BYTES: usize = 16;

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(io::Error),
    /// Shorter than any valid checkpoint, or its declared counts overrun
    /// the actual length (a truncated / torn file).
    Truncated,
    /// The magic bytes are not `GLPW`.
    BadMagic,
    /// A version this build does not understand.
    BadVersion(u32),
    /// The stored CRC-32 does not match the bytes.
    BadChecksum {
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// Decoded cleanly but violates a window invariant.
    Invalid(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io error: {e}"),
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::BadMagic => write!(f, "not a GLPW checkpoint"),
            Self::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::BadChecksum { stored, actual } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, actual {actual:#010x}"
                )
            }
            Self::Invalid(why) => write!(f, "invalid checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One captured service state: the window plus the serving-side clocks.
#[derive(Clone, Debug)]
pub struct WindowCheckpoint {
    /// Window length in days.
    pub days: u32,
    /// Exclusive end day of the window.
    pub end: u32,
    /// Micro-batches the service had applied at capture time.
    pub batches_applied: u64,
    /// Verdict-snapshot epoch at capture time.
    pub snapshot_epoch: u64,
    /// Monotonic telemetry counters, opaque to this crate — the serving
    /// layer defines the order (see `glp-serve`'s counter pack/unpack).
    pub counters: Vec<u64>,
    /// The live-transaction log in arrival order.
    pub log: Vec<Transaction>,
    /// Fleet-global arrival sequence stamps, parallel to `log` (strictly
    /// increasing). Empty for single-core checkpoints and version-1
    /// images; a shard core records them so cross-shard arrival order
    /// survives a fleet restart (see [`Self::capture_with_seqs`]).
    pub seqs: Vec<u64>,
}

impl WindowCheckpoint {
    /// Captures `window` together with the serving clocks and counters
    /// (no sequence stamps — the single-core path).
    pub fn capture(
        window: &IncrementalWindow,
        batches_applied: u64,
        snapshot_epoch: u64,
        counters: Vec<u64>,
    ) -> Self {
        Self {
            days: window.days(),
            end: window.end(),
            batches_applied,
            snapshot_epoch,
            counters,
            log: window.transactions().copied().collect(),
            seqs: Vec::new(),
        }
    }

    /// [`Self::capture`] plus the shard's fleet-global sequence stamps,
    /// which must parallel the window's live log one-to-one.
    pub fn capture_with_seqs(
        window: &IncrementalWindow,
        batches_applied: u64,
        snapshot_epoch: u64,
        counters: Vec<u64>,
        seqs: Vec<u64>,
    ) -> Self {
        assert_eq!(
            seqs.len(),
            window.num_transactions(),
            "sequence stamps must parallel the live log"
        );
        let mut ckpt = Self::capture(window, batches_applied, snapshot_epoch, counters);
        ckpt.seqs = seqs;
        ckpt
    }

    /// Reconstructs the window this checkpoint captured. Validates the
    /// window invariants (see [`IncrementalWindow::from_parts`]).
    pub fn restore_window(&self) -> Result<IncrementalWindow, CheckpointError> {
        IncrementalWindow::from_parts(self.days, self.end, self.log.clone())
            .map_err(CheckpointError::Invalid)
    }

    /// Serializes to the versioned, CRC-trailed byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            HEADER_BYTES
                + 8 * self.counters.len()
                + 8
                + TX_BYTES * self.log.len()
                + 8
                + 8 * self.seqs.len()
                + 4,
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.days.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.batches_applied.to_le_bytes());
        out.extend_from_slice(&self.snapshot_epoch.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for c in &self.counters {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&(self.log.len() as u64).to_le_bytes());
        for t in &self.log {
            out.extend_from_slice(&t.buyer.to_le_bytes());
            out.extend_from_slice(&t.item.to_le_bytes());
            out.extend_from_slice(&t.day.to_le_bytes());
            out.extend_from_slice(&t.amount.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.seqs.len() as u64).to_le_bytes());
        for s in &self.seqs {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and fully validates one checkpoint image.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_BYTES + 8 + 4 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let actual = crc32(payload);
        if stored != actual {
            return Err(CheckpointError::BadChecksum { stored, actual });
        }
        if payload[0..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = read_u32(payload, 4);
        if version != 1 && version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let days = read_u32(payload, 8);
        let end = read_u32(payload, 12);
        let batches_applied = read_u64(payload, 16);
        let snapshot_epoch = read_u64(payload, 24);
        let n_counters = read_u32(payload, 32) as usize;
        let counters_end = HEADER_BYTES + 8 * n_counters;
        if payload.len() < counters_end + 8 {
            return Err(CheckpointError::Truncated);
        }
        let counters: Vec<u64> = (0..n_counters)
            .map(|i| read_u64(payload, HEADER_BYTES + 8 * i))
            .collect();
        let n_txs = read_u64(payload, counters_end) as usize;
        let txs_start = counters_end + 8;
        let txs_end = txs_start + TX_BYTES * n_txs;
        // Version 1 ends at the transaction section; version 2 appends
        // the sequence-stamp section (count + stamps).
        let n_seqs = if version == 1 {
            if payload.len() != txs_end {
                return Err(CheckpointError::Truncated);
            }
            0
        } else {
            if payload.len() < txs_end + 8 {
                return Err(CheckpointError::Truncated);
            }
            let n_seqs = read_u64(payload, txs_end) as usize;
            if payload.len() != txs_end + 8 + 8 * n_seqs {
                return Err(CheckpointError::Truncated);
            }
            n_seqs
        };
        if n_seqs != 0 && n_seqs != n_txs {
            return Err(CheckpointError::Invalid(
                "sequence stamps must be empty or parallel the log",
            ));
        }
        let log: Vec<Transaction> = (0..n_txs)
            .map(|i| {
                let o = txs_start + TX_BYTES * i;
                Transaction {
                    buyer: read_u32(payload, o),
                    item: read_u32(payload, o + 4),
                    day: read_u32(payload, o + 8),
                    amount: f32::from_bits(read_u32(payload, o + 12)),
                }
            })
            .collect();
        let seqs: Vec<u64> = (0..n_seqs)
            .map(|i| read_u64(payload, txs_end + 8 + 8 * i))
            .collect();
        if seqs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CheckpointError::Invalid(
                "sequence stamps must be strictly increasing",
            ));
        }
        let ckpt = Self {
            days,
            end,
            batches_applied,
            snapshot_epoch,
            counters,
            log,
            seqs,
        };
        // Reject images that decode but describe an impossible window.
        ckpt.restore_window()?;
        Ok(ckpt)
    }

    /// Writes the checkpoint to `path` via temp-file + atomic rename: a
    /// crash mid-write leaves any previous checkpoint at `path` intact.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        #[cfg(feature = "fault-injection")]
        faults::maybe_fail_write()?;
        let tmp = path.with_extension("ckpt-tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates the checkpoint at `path`.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        Self::decode(&fs::read(path)?)
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial gzip and PNG use. Bitwise, no table: checkpoints are
/// written once per few hundred batches, so simplicity wins over speed.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn read_u32(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Checkpoint-write fault injection (feature `fault-injection` only):
/// arm [`fail_next_writes`] and the next N [`WindowCheckpoint::write_atomic`]
/// calls fail with an injected I/O error *before touching the filesystem*
/// — modeling a full disk or yanked volume without leaving junk behind.
#[cfg(feature = "fault-injection")]
pub mod faults {
    use super::{io, CheckpointError};
    use std::sync::atomic::{AtomicU32, Ordering};

    static FAIL_WRITES: AtomicU32 = AtomicU32::new(0);

    /// Arms the injector for the next `n` checkpoint writes.
    pub fn fail_next_writes(n: u32) {
        FAIL_WRITES.store(n, Ordering::Release);
    }

    /// Disarms the injector.
    pub fn clear() {
        FAIL_WRITES.store(0, Ordering::Release);
    }

    pub(super) fn maybe_fail_write() -> Result<(), CheckpointError> {
        let mut left = FAIL_WRITES.load(Ordering::Acquire);
        while left > 0 {
            match FAIL_WRITES.compare_exchange_weak(
                left,
                left - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Err(CheckpointError::Io(io::Error::other(
                        "injected checkpoint write failure",
                    )))
                }
                Err(now) => left = now,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::{TxConfig, TxStream};
    use crate::window::WindowWorkload;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 800,
            num_items: 300,
            days: 15,
            tx_per_day: 400,
            num_rings: 2,
            ring_size: 8,
            ring_tx_per_day: 15,
            ..Default::default()
        })
    }

    fn graphs_equal(a: &WindowWorkload, b: &WindowWorkload) -> bool {
        a.graph.incoming().offsets() == b.graph.incoming().offsets()
            && a.graph.incoming().targets() == b.graph.incoming().targets()
            && a.graph.incoming().weights() == b.graph.incoming().weights()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_restores_a_byte_identical_window() {
        let s = stream();
        let w = IncrementalWindow::new(&s, 7, s.config.days);
        let ckpt = WindowCheckpoint::capture(&w, 42, 5, vec![1, 2, 3]);
        let decoded = WindowCheckpoint::decode(&ckpt.encode()).expect("roundtrip");
        assert_eq!(decoded.batches_applied, 42);
        assert_eq!(decoded.snapshot_epoch, 5);
        assert_eq!(decoded.counters, vec![1, 2, 3]);
        let restored = decoded.restore_window().expect("valid window");
        assert_eq!(restored.end(), w.end());
        assert_eq!(restored.num_transactions(), w.num_transactions());
        assert_eq!(restored.num_pairs(), w.num_pairs());
        assert!(graphs_equal(&restored.materialize(), &w.materialize()));
    }

    #[test]
    fn file_roundtrip_through_atomic_write() {
        let s = stream();
        let w = IncrementalWindow::new(&s, 5, s.config.days);
        let ckpt = WindowCheckpoint::capture(&w, 7, 2, vec![9]);
        let path = std::env::temp_dir().join(format!("glp_ckpt_rt_{}.ckpt", std::process::id()));
        ckpt.write_atomic(&path).expect("write");
        let back = WindowCheckpoint::read(&path).expect("read");
        assert_eq!(back.encode(), ckpt.encode());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected_not_loaded() {
        let s = stream();
        let w = IncrementalWindow::new(&s, 5, s.config.days);
        let good = WindowCheckpoint::capture(&w, 0, 0, vec![]).encode();

        // Bit flip anywhere in the payload: checksum catches it.
        let mut flipped = good.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            WindowCheckpoint::decode(&flipped),
            Err(CheckpointError::BadChecksum { .. })
        ));

        // Truncation: caught before anything is parsed.
        assert!(matches!(
            WindowCheckpoint::decode(&good[..good.len() / 2]),
            Err(CheckpointError::Truncated | CheckpointError::BadChecksum { .. })
        ));
        assert!(matches!(
            WindowCheckpoint::decode(&[]),
            Err(CheckpointError::Truncated)
        ));

        // Wrong magic / version with a *valid* checksum: still rejected.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let n = bad_magic.len();
        let crc = crc32(&bad_magic[..n - 4]).to_le_bytes();
        bad_magic[n - 4..].copy_from_slice(&crc);
        assert!(matches!(
            WindowCheckpoint::decode(&bad_magic),
            Err(CheckpointError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        let crc = crc32(&bad_version[..n - 4]).to_le_bytes();
        bad_version[n - 4..].copy_from_slice(&crc);
        assert!(matches!(
            WindowCheckpoint::decode(&bad_version),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn every_single_byte_corruption_yields_a_typed_error() {
        // A small but non-trivial image: header, counters (including edge
        // values), and a few transactions, so the sweep crosses every
        // field boundary in the layout.
        let ckpt = WindowCheckpoint {
            days: 3,
            end: 5,
            batches_applied: 17,
            snapshot_epoch: 4,
            counters: vec![7, 0, u64::MAX],
            log: vec![
                Transaction {
                    buyer: 1,
                    item: 2,
                    day: 3,
                    amount: 4.5,
                },
                Transaction {
                    buyer: 9,
                    item: 8,
                    day: 4,
                    amount: -0.25,
                },
            ],
            // Non-empty so the corruption sweep crosses the v2
            // sequence-stamp section too.
            seqs: vec![3, 12],
        };
        let good = ckpt.encode();
        WindowCheckpoint::decode(&good).expect("pristine image decodes");
        for i in 0..good.len() {
            let mut bad = good.clone();
            // Rotate the flipped bit so every bit lane is exercised over
            // the sweep, not just bit 0.
            bad[i] ^= 1 << (i % 8);
            let err = WindowCheckpoint::decode(&bad)
                .expect_err("single-bit corruption must never decode");
            // CRC-32 detects every single-bit error wherever it lands —
            // including inside the stored checksum itself — so the typed
            // error is always the checksum mismatch, reached without any
            // field being parsed, let alone trusted.
            assert!(
                matches!(err, CheckpointError::BadChecksum { .. }),
                "byte {i}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn invalid_window_shape_is_rejected() {
        // A log that decodes fine but violates the window invariants
        // (transaction beyond the declared end day).
        let ckpt = WindowCheckpoint {
            days: 5,
            end: 10,
            batches_applied: 0,
            snapshot_epoch: 0,
            counters: vec![],
            log: vec![Transaction {
                buyer: 1,
                item: 2,
                day: 11,
                amount: 1.0,
            }],
            seqs: vec![],
        };
        assert!(matches!(
            WindowCheckpoint::decode(&ckpt.encode()),
            Err(CheckpointError::Invalid(_))
        ));
    }

    #[test]
    fn sequence_stamps_roundtrip() {
        let s = stream();
        let w = IncrementalWindow::new(&s, 7, s.config.days);
        let seqs: Vec<u64> = (0..w.num_transactions() as u64)
            .map(|i| i * 3 + 5)
            .collect();
        let ckpt = WindowCheckpoint::capture_with_seqs(&w, 11, 2, vec![4], seqs.clone());
        let decoded = WindowCheckpoint::decode(&ckpt.encode()).expect("roundtrip");
        assert_eq!(decoded.seqs, seqs);
        assert_eq!(decoded.log.len(), decoded.seqs.len());
    }

    #[test]
    fn version_1_images_decode_with_empty_seqs() {
        // Hand-build a v1 image: same layout minus the sequence section,
        // version field 1, CRC recomputed — what an old build wrote.
        let ckpt = WindowCheckpoint {
            days: 3,
            end: 5,
            batches_applied: 1,
            snapshot_epoch: 0,
            counters: vec![6],
            log: vec![Transaction {
                buyer: 1,
                item: 2,
                day: 4,
                amount: 2.0,
            }],
            seqs: vec![],
        };
        let v2 = ckpt.encode();
        // Strip CRC (4) and the empty sequence section (8), rewrite the
        // version field, re-CRC.
        let mut v1 = v2[..v2.len() - 12].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let crc = crc32(&v1).to_le_bytes();
        v1.extend_from_slice(&crc);
        let decoded = WindowCheckpoint::decode(&v1).expect("v1 image decodes");
        assert!(decoded.seqs.is_empty());
        assert_eq!(decoded.log.len(), 1);
        assert_eq!(decoded.counters, vec![6]);
    }

    #[test]
    fn malformed_sequence_sections_are_rejected() {
        let s = stream();
        let w = IncrementalWindow::new(&s, 7, s.config.days);
        let n = w.num_transactions();
        assert!(n > 2, "test stream too small");

        // Stamp count that is neither 0 nor T.
        let mut short = WindowCheckpoint::capture(&w, 0, 0, vec![]);
        short.seqs = vec![1, 2];
        assert!(matches!(
            WindowCheckpoint::decode(&short.encode()),
            Err(CheckpointError::Invalid(_))
        ));

        // Non-increasing stamps.
        let mut flat = WindowCheckpoint::capture(&w, 0, 0, vec![]);
        flat.seqs = vec![7; n];
        assert!(matches!(
            WindowCheckpoint::decode(&flat.encode()),
            Err(CheckpointError::Invalid(_))
        ));
    }

    #[test]
    fn missing_file_reports_io() {
        let path = std::env::temp_dir().join("glp_ckpt_definitely_missing.ckpt");
        assert!(matches!(
            WindowCheckpoint::read(&path),
            Err(CheckpointError::Io(_))
        ));
    }
}
