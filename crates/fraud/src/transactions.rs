//! Synthetic e-commerce transaction stream with injected fraud rings.
//!
//! Substitutes for TaoBao's production purchase/click stream (Figure 1).
//! Honest traffic: a Zipf-active user population buying Zipf-popular
//! items, a fixed expected volume per day. Fraud traffic: rings of
//! colluding accounts hammering a small set of target items (the classic
//! rank-inflation pattern LP clusters catch). A fraction of each ring is
//! already black-listed — those are the LP seeds.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One purchase event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Buyer account (0-based user id).
    pub buyer: u32,
    /// Item bought (0-based item id).
    pub item: u32,
    /// Day index from stream start.
    pub day: u32,
    /// Paid amount.
    pub amount: f32,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// Total user population (unique users saturate toward this).
    pub num_users: u32,
    /// Total item catalog.
    pub num_items: u32,
    /// Days of history to generate.
    pub days: u32,
    /// Honest transactions per day.
    pub tx_per_day: u32,
    /// Zipf skew of user activity and item popularity.
    pub skew: f64,
    /// Number of injected fraud rings.
    pub num_rings: u32,
    /// Colluding accounts per ring.
    pub ring_size: u32,
    /// Ring transactions per ring per day.
    pub ring_tx_per_day: u32,
    /// Fraction of each ring already on the blacklist (the LP seeds).
    pub blacklist_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TxConfig {
    fn default() -> Self {
        Self {
            num_users: 50_000,
            num_items: 20_000,
            days: 100,
            tx_per_day: 20_000,
            skew: 0.7,
            num_rings: 20,
            ring_size: 25,
            ring_tx_per_day: 60,
            blacklist_fraction: 0.2,
            seed: 42,
        }
    }
}

/// The generated stream plus ground truth.
#[derive(Clone, Debug)]
pub struct TxStream {
    /// All transactions, sorted by day.
    pub transactions: Vec<Transaction>,
    /// Ring membership ground truth: `ring_of[user] = Some(ring index)`.
    pub ring_of: Vec<Option<u32>>,
    /// Black-listed users (subset of ring members), ascending.
    pub blacklist: Vec<u32>,
    /// The configuration that produced this stream.
    pub config: TxConfig,
}

impl TxStream {
    /// Generates the stream for `cfg`.
    pub fn generate(cfg: &TxConfig) -> Self {
        assert!(
            cfg.num_users > 0 && cfg.num_items > 0,
            "need users and items"
        );
        assert!(
            u64::from(cfg.num_rings) * u64::from(cfg.ring_size) <= u64::from(cfg.num_users),
            "rings cannot exceed the user population"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.blacklist_fraction),
            "blacklist fraction is a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // Ring membership: the first num_rings*ring_size users, shuffled so
        // ring members are scattered across the id space like real
        // accounts.
        let mut ids: Vec<u32> = (0..cfg.num_users).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let mut ring_of = vec![None; cfg.num_users as usize];
        let mut blacklist = Vec::new();
        for r in 0..cfg.num_rings {
            for k in 0..cfg.ring_size {
                let u = ids[(r * cfg.ring_size + k) as usize];
                ring_of[u as usize] = Some(r);
                if f64::from(k) < cfg.blacklist_fraction * f64::from(cfg.ring_size) {
                    blacklist.push(u);
                }
            }
        }
        blacklist.sort_unstable();

        // Zipf cumulative samplers over users and items.
        let user_cum = zipf_prefix(cfg.num_users, cfg.skew);
        let item_cum = zipf_prefix(cfg.num_items, cfg.skew);

        // Ring target items: each ring pushes a small disjoint item set
        // drawn from the popularity *tail* — rank-inflation targets are
        // obscure listings, not already-popular ones.
        let items_per_ring = 4u32;
        let ring_items: Vec<Vec<u32>> = (0..cfg.num_rings)
            .map(|r| {
                (0..items_per_ring)
                    .map(|k| cfg.num_items - 1 - ((r * items_per_ring + k) % cfg.num_items))
                    .collect()
            })
            .collect();

        let total = (u64::from(cfg.days)
            * (u64::from(cfg.tx_per_day)
                + u64::from(cfg.num_rings) * u64::from(cfg.ring_tx_per_day)))
            as usize;
        let mut transactions = Vec::with_capacity(total);
        for day in 0..cfg.days {
            for _ in 0..cfg.tx_per_day {
                transactions.push(Transaction {
                    buyer: sample_cum(&user_cum, &mut rng),
                    item: sample_cum(&item_cum, &mut rng),
                    day,
                    amount: rng.gen_range(1.0..500.0),
                });
            }
            for (r, items) in ring_items.iter().enumerate() {
                for _ in 0..cfg.ring_tx_per_day {
                    let member = rng.gen_range(0..cfg.ring_size);
                    let buyer = ids[(r as u32 * cfg.ring_size + member) as usize];
                    let item = items[rng.gen_range(0..items.len())];
                    transactions.push(Transaction {
                        buyer,
                        item,
                        day,
                        amount: rng.gen_range(1.0..20.0), // small wash trades
                    });
                }
            }
        }
        Self {
            transactions,
            ring_of,
            blacklist,
            config: cfg.clone(),
        }
    }

    /// Transactions with `day` in `[from, to)`.
    pub fn window(&self, from: u32, to: u32) -> impl Iterator<Item = &Transaction> {
        self.transactions
            .iter()
            .filter(move |t| t.day >= from && t.day < to)
    }

    /// Users in any ring (ground truth positives).
    pub fn fraudulent_users(&self) -> Vec<u32> {
        self.ring_of
            .iter()
            .enumerate()
            .filter_map(|(u, r)| r.map(|_| u as u32))
            .collect()
    }
}

/// Configuration for [`RegionalStream`]: a population organized into
/// geographic regions whose organic traffic is strictly region-local,
/// with a configurable number of fraud rings deliberately straddling
/// *adjacent region pairs*. The regions are the natural communities a
/// community-aware partitioner co-locates, and the cross rings are the
/// boundary structure a sharded service's label exchange must reconcile
/// — which is exactly what the fleet determinism tests need engineered
/// into the graph.
#[derive(Clone, Debug)]
pub struct RegionalTxConfig {
    /// Number of regions (communities).
    pub regions: u32,
    /// Users per region; user ids are region-major
    /// (`region r` owns `[r*users_per_region, (r+1)*users_per_region)`).
    pub users_per_region: u32,
    /// Items per region, region-major like users.
    pub items_per_region: u32,
    /// Days of history to generate.
    pub days: u32,
    /// Organic (region-local) transactions per day across all regions.
    pub tx_per_day: u32,
    /// Fraud rings whose membership straddles two adjacent regions.
    pub cross_rings: u32,
    /// Members per ring (half per side of the region cut).
    pub ring_size: u32,
    /// Ring transactions per ring per day.
    pub ring_tx_per_day: u32,
    /// Fraction of each ring already black-listed (the LP seeds).
    pub blacklist_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegionalTxConfig {
    fn default() -> Self {
        Self {
            regions: 8,
            users_per_region: 1_000,
            items_per_region: 400,
            days: 15,
            tx_per_day: 4_000,
            cross_rings: 8,
            ring_size: 10,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.25,
            seed: 42,
        }
    }
}

/// A generated regional stream plus ground truth — the sharded-serving
/// analogue of [`TxStream`]. Organic purchases never leave their region,
/// so with a region-respecting partition the *only* cross-shard edges
/// are the injected cross rings.
#[derive(Clone, Debug)]
pub struct RegionalStream {
    /// All transactions, sorted by day.
    pub transactions: Vec<Transaction>,
    /// Black-listed users (subset of ring members), ascending.
    pub blacklist: Vec<u32>,
    /// Ring membership ground truth: `ring_of[user] = Some(ring index)`.
    pub ring_of: Vec<Option<u32>>,
    /// The configuration that produced this stream.
    pub config: RegionalTxConfig,
}

impl RegionalStream {
    /// Generates the stream for `cfg`.
    ///
    /// Ring `k` straddles regions `k % regions` and `(k + 1) % regions`:
    /// half its members come from the top of the first region's id range,
    /// half from just below the top of the second's, so each region hosts
    /// at most one ring's "A side" and one ring's "B side" in disjoint
    /// id slots. Ring targets are items from the first region's catalog
    /// tail — every ring transaction therefore crosses the region cut
    /// whenever the buyer sits on the B side.
    ///
    /// The top `ring_size` user slots and top ring-target item slots of
    /// every region are *reserved*: organic traffic never draws them.
    /// Rings are dedicated mule accounts washing dedicated listings, so
    /// each ring forms its own small connected component bridging a
    /// region cut instead of transitively merging both regions' organic
    /// graphs — cross-shard reconciliation work stays proportional to
    /// the fraud, which is what makes community-aware sharding pay.
    pub fn generate(cfg: &RegionalTxConfig) -> Self {
        assert!(cfg.regions > 0 && cfg.users_per_region > 0, "need users");
        assert!(cfg.items_per_region > 0, "need items");
        assert!(
            cfg.cross_rings <= cfg.regions,
            "at most one cross ring per region pair"
        );
        assert!(cfg.ring_size >= 2, "a cross ring needs both sides");
        assert!(
            cfg.users_per_region >= 2 * cfg.ring_size,
            "regions too small for disjoint ring slots"
        );
        assert!(
            cfg.items_per_region > RING_ITEMS,
            "regions too small for ring target items"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.blacklist_fraction),
            "blacklist fraction is a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let upr = cfg.users_per_region;
        let ipr = cfg.items_per_region;
        let num_users = cfg.regions * upr;

        // Ring membership: side A takes the top `half` id slots of its
        // region, side B the `half` slots directly below its region's
        // side-A slots — disjoint because upr >= 2*ring_size.
        let half = cfg.ring_size / 2;
        let mut ring_of = vec![None; num_users as usize];
        let mut members: Vec<Vec<u32>> = Vec::with_capacity(cfg.cross_rings as usize);
        let mut blacklist = Vec::new();
        for k in 0..cfg.cross_rings {
            let (a, b) = (k % cfg.regions, (k + 1) % cfg.regions);
            let mut ring = Vec::with_capacity(cfg.ring_size as usize);
            for i in 0..half {
                ring.push(a * upr + upr - 1 - i);
            }
            for i in 0..(cfg.ring_size - half) {
                ring.push(b * upr + upr - 1 - half - i);
            }
            for (pos, &u) in ring.iter().enumerate() {
                ring_of[u as usize] = Some(k);
                if (pos as f64) < cfg.blacklist_fraction * f64::from(cfg.ring_size) {
                    blacklist.push(u);
                }
            }
            members.push(ring);
        }
        blacklist.sort_unstable();

        // Ring targets: RING_ITEMS from the A-side region's catalog tail.
        let ring_items: Vec<Vec<u32>> = (0..cfg.cross_rings)
            .map(|k| {
                let a = k % cfg.regions;
                (0..RING_ITEMS).map(|j| a * ipr + ipr - 1 - j).collect()
            })
            .collect();

        let total = (u64::from(cfg.days)
            * (u64::from(cfg.tx_per_day)
                + u64::from(cfg.cross_rings) * u64::from(cfg.ring_tx_per_day)))
            as usize;
        let mut transactions = Vec::with_capacity(total);
        for day in 0..cfg.days {
            for _ in 0..cfg.tx_per_day {
                // Organic traffic is strictly region-local: buyer and item
                // are drawn uniformly from the *same* region, excluding
                // the reserved mule and ring-target slots at the top of
                // each range. Rings are dedicated mule accounts washing
                // dedicated listings, so each ring is its own small
                // connected component straddling a region cut — the
                // boundary set a community-aware partitioner must
                // reconcile stays proportional to the fraud, not to the
                // organic population.
                let region = rng.gen_range(0..cfg.regions);
                transactions.push(Transaction {
                    buyer: region * upr + rng.gen_range(0..upr - cfg.ring_size),
                    item: region * ipr + rng.gen_range(0..ipr - RING_ITEMS),
                    day,
                    amount: rng.gen_range(1.0..500.0),
                });
            }
            for (k, ring) in members.iter().enumerate() {
                for _ in 0..cfg.ring_tx_per_day {
                    let buyer = ring[rng.gen_range(0..ring.len())];
                    let item = ring_items[k][rng.gen_range(0..RING_ITEMS as usize)];
                    transactions.push(Transaction {
                        buyer,
                        item,
                        day,
                        amount: rng.gen_range(1.0..20.0), // small wash trades
                    });
                }
            }
        }
        Self {
            transactions,
            blacklist,
            ring_of,
            config: cfg.clone(),
        }
    }

    /// The region (community) owning `user`.
    pub fn region_of(&self, user: u32) -> u32 {
        user / self.config.users_per_region
    }

    /// Total user population.
    pub fn num_users(&self) -> u32 {
        self.config.regions * self.config.users_per_region
    }

    /// Transactions with `day` in `[from, to)`.
    pub fn window(&self, from: u32, to: u32) -> impl Iterator<Item = &Transaction> {
        self.transactions
            .iter()
            .filter(move |t| t.day >= from && t.day < to)
    }

    /// `user → region` for every user — the community map a
    /// community-aware partitioner consumes.
    pub fn community_map(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_users()).map(|u| (u, self.region_of(u)))
    }
}

/// Target items per fraud ring (all generators, including
/// [`crate::adversary`]).
pub(crate) const RING_ITEMS: u32 = 4;

/// Prefix sums of Zipf weights `1/(i+1)^skew`.
fn zipf_prefix(n: u32, skew: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|i| {
            acc += 1.0 / f64::from(i + 1).powf(skew);
            acc
        })
        .collect()
}

fn sample_cum(prefix: &[f64], rng: &mut impl Rng) -> u32 {
    let x: f64 = rng.gen::<f64>() * prefix.last().copied().unwrap_or(1.0);
    prefix.partition_point(|&p| p < x).min(prefix.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TxConfig {
        TxConfig {
            num_users: 1_000,
            num_items: 400,
            days: 10,
            tx_per_day: 500,
            num_rings: 3,
            ring_size: 10,
            ring_tx_per_day: 20,
            ..Default::default()
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a = TxStream::generate(&small());
        let b = TxStream::generate(&small());
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.blacklist, b.blacklist);
    }

    #[test]
    fn ring_membership_and_blacklist_consistent() {
        let s = TxStream::generate(&small());
        assert_eq!(s.fraudulent_users().len(), 30);
        assert_eq!(s.blacklist.len(), 6); // 20% of 3 rings of 10
        for &u in &s.blacklist {
            assert!(
                s.ring_of[u as usize].is_some(),
                "blacklisted user not in a ring"
            );
        }
    }

    #[test]
    fn volume_matches_config() {
        let cfg = small();
        let s = TxStream::generate(&cfg);
        let expect = (cfg.days * (cfg.tx_per_day + cfg.num_rings * cfg.ring_tx_per_day)) as usize;
        assert_eq!(s.transactions.len(), expect);
        assert!(s.transactions.windows(2).all(|w| w[0].day <= w[1].day));
    }

    #[test]
    fn window_filters_days() {
        let s = TxStream::generate(&small());
        assert!(s.window(2, 5).all(|t| (2..5).contains(&t.day)));
        let w: usize = s.window(0, 10).count();
        assert_eq!(w, s.transactions.len());
    }

    #[test]
    fn regional_stream_is_deterministic_and_day_sorted() {
        let cfg = RegionalTxConfig {
            regions: 4,
            users_per_region: 100,
            items_per_region: 40,
            days: 6,
            tx_per_day: 400,
            cross_rings: 4,
            ring_size: 8,
            ring_tx_per_day: 12,
            ..Default::default()
        };
        let a = RegionalStream::generate(&cfg);
        let b = RegionalStream::generate(&cfg);
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.blacklist, b.blacklist);
        assert!(a.transactions.windows(2).all(|w| w[0].day <= w[1].day));
        let expect = (cfg.days * (cfg.tx_per_day + cfg.cross_rings * cfg.ring_tx_per_day)) as usize;
        assert_eq!(a.transactions.len(), expect);
    }

    #[test]
    fn regional_organic_traffic_never_leaves_its_region() {
        let s = RegionalStream::generate(&RegionalTxConfig {
            regions: 4,
            users_per_region: 100,
            items_per_region: 40,
            days: 6,
            tx_per_day: 400,
            cross_rings: 4,
            ring_size: 8,
            ring_tx_per_day: 12,
            ..Default::default()
        });
        for t in &s.transactions {
            if s.ring_of[t.buyer as usize].is_none() {
                assert_eq!(
                    s.region_of(t.buyer),
                    t.item / s.config.items_per_region,
                    "organic purchase crossed a region"
                );
            }
        }
    }

    #[test]
    fn cross_rings_straddle_adjacent_regions() {
        let s = RegionalStream::generate(&RegionalTxConfig {
            regions: 4,
            users_per_region: 100,
            items_per_region: 40,
            days: 6,
            tx_per_day: 400,
            cross_rings: 4,
            ring_size: 8,
            ring_tx_per_day: 12,
            blacklist_fraction: 0.25,
            ..Default::default()
        });
        for k in 0..4u32 {
            let members: Vec<u32> = (0..s.num_users())
                .filter(|&u| s.ring_of[u as usize] == Some(k))
                .collect();
            assert_eq!(members.len(), 8);
            let regions: std::collections::BTreeSet<u32> =
                members.iter().map(|&u| s.region_of(u)).collect();
            let mut expect = vec![k % 4, (k + 1) % 4];
            expect.sort_unstable();
            assert_eq!(
                regions.into_iter().collect::<Vec<_>>(),
                expect,
                "ring {k} does not straddle its region pair"
            );
        }
        // 25% of each ring of 8 = 2 seeds per ring.
        assert_eq!(s.blacklist.len(), 8);
        for &u in &s.blacklist {
            assert!(s.ring_of[u as usize].is_some());
        }
    }

    #[test]
    fn ring_members_hammer_their_items() {
        let s = TxStream::generate(&small());
        let ring0: Vec<u32> = (0..1_000u32)
            .filter(|&u| s.ring_of[u as usize] == Some(0))
            .collect();
        let ring_tx = s
            .transactions
            .iter()
            .filter(|t| ring0.contains(&t.buyer))
            .count();
        // 10 members get 20 ring tx/day for 10 days plus whatever honest
        // traffic they happen to produce.
        assert!(ring_tx >= 200, "{ring_tx}");
    }
}
