//! Synthetic e-commerce transaction stream with injected fraud rings.
//!
//! Substitutes for TaoBao's production purchase/click stream (Figure 1).
//! Honest traffic: a Zipf-active user population buying Zipf-popular
//! items, a fixed expected volume per day. Fraud traffic: rings of
//! colluding accounts hammering a small set of target items (the classic
//! rank-inflation pattern LP clusters catch). A fraction of each ring is
//! already black-listed — those are the LP seeds.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One purchase event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Buyer account (0-based user id).
    pub buyer: u32,
    /// Item bought (0-based item id).
    pub item: u32,
    /// Day index from stream start.
    pub day: u32,
    /// Paid amount.
    pub amount: f32,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// Total user population (unique users saturate toward this).
    pub num_users: u32,
    /// Total item catalog.
    pub num_items: u32,
    /// Days of history to generate.
    pub days: u32,
    /// Honest transactions per day.
    pub tx_per_day: u32,
    /// Zipf skew of user activity and item popularity.
    pub skew: f64,
    /// Number of injected fraud rings.
    pub num_rings: u32,
    /// Colluding accounts per ring.
    pub ring_size: u32,
    /// Ring transactions per ring per day.
    pub ring_tx_per_day: u32,
    /// Fraction of each ring already on the blacklist (the LP seeds).
    pub blacklist_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TxConfig {
    fn default() -> Self {
        Self {
            num_users: 50_000,
            num_items: 20_000,
            days: 100,
            tx_per_day: 20_000,
            skew: 0.7,
            num_rings: 20,
            ring_size: 25,
            ring_tx_per_day: 60,
            blacklist_fraction: 0.2,
            seed: 42,
        }
    }
}

/// The generated stream plus ground truth.
#[derive(Clone, Debug)]
pub struct TxStream {
    /// All transactions, sorted by day.
    pub transactions: Vec<Transaction>,
    /// Ring membership ground truth: `ring_of[user] = Some(ring index)`.
    pub ring_of: Vec<Option<u32>>,
    /// Black-listed users (subset of ring members), ascending.
    pub blacklist: Vec<u32>,
    /// The configuration that produced this stream.
    pub config: TxConfig,
}

impl TxStream {
    /// Generates the stream for `cfg`.
    pub fn generate(cfg: &TxConfig) -> Self {
        assert!(
            cfg.num_users > 0 && cfg.num_items > 0,
            "need users and items"
        );
        assert!(
            u64::from(cfg.num_rings) * u64::from(cfg.ring_size) <= u64::from(cfg.num_users),
            "rings cannot exceed the user population"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.blacklist_fraction),
            "blacklist fraction is a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

        // Ring membership: the first num_rings*ring_size users, shuffled so
        // ring members are scattered across the id space like real
        // accounts.
        let mut ids: Vec<u32> = (0..cfg.num_users).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let mut ring_of = vec![None; cfg.num_users as usize];
        let mut blacklist = Vec::new();
        for r in 0..cfg.num_rings {
            for k in 0..cfg.ring_size {
                let u = ids[(r * cfg.ring_size + k) as usize];
                ring_of[u as usize] = Some(r);
                if f64::from(k) < cfg.blacklist_fraction * f64::from(cfg.ring_size) {
                    blacklist.push(u);
                }
            }
        }
        blacklist.sort_unstable();

        // Zipf cumulative samplers over users and items.
        let user_cum = zipf_prefix(cfg.num_users, cfg.skew);
        let item_cum = zipf_prefix(cfg.num_items, cfg.skew);

        // Ring target items: each ring pushes a small disjoint item set
        // drawn from the popularity *tail* — rank-inflation targets are
        // obscure listings, not already-popular ones.
        let items_per_ring = 4u32;
        let ring_items: Vec<Vec<u32>> = (0..cfg.num_rings)
            .map(|r| {
                (0..items_per_ring)
                    .map(|k| cfg.num_items - 1 - ((r * items_per_ring + k) % cfg.num_items))
                    .collect()
            })
            .collect();

        let total = (u64::from(cfg.days)
            * (u64::from(cfg.tx_per_day)
                + u64::from(cfg.num_rings) * u64::from(cfg.ring_tx_per_day)))
            as usize;
        let mut transactions = Vec::with_capacity(total);
        for day in 0..cfg.days {
            for _ in 0..cfg.tx_per_day {
                transactions.push(Transaction {
                    buyer: sample_cum(&user_cum, &mut rng),
                    item: sample_cum(&item_cum, &mut rng),
                    day,
                    amount: rng.gen_range(1.0..500.0),
                });
            }
            for (r, items) in ring_items.iter().enumerate() {
                for _ in 0..cfg.ring_tx_per_day {
                    let member = rng.gen_range(0..cfg.ring_size);
                    let buyer = ids[(r as u32 * cfg.ring_size + member) as usize];
                    let item = items[rng.gen_range(0..items.len())];
                    transactions.push(Transaction {
                        buyer,
                        item,
                        day,
                        amount: rng.gen_range(1.0..20.0), // small wash trades
                    });
                }
            }
        }
        Self {
            transactions,
            ring_of,
            blacklist,
            config: cfg.clone(),
        }
    }

    /// Transactions with `day` in `[from, to)`.
    pub fn window(&self, from: u32, to: u32) -> impl Iterator<Item = &Transaction> {
        self.transactions
            .iter()
            .filter(move |t| t.day >= from && t.day < to)
    }

    /// Users in any ring (ground truth positives).
    pub fn fraudulent_users(&self) -> Vec<u32> {
        self.ring_of
            .iter()
            .enumerate()
            .filter_map(|(u, r)| r.map(|_| u as u32))
            .collect()
    }
}

/// Prefix sums of Zipf weights `1/(i+1)^skew`.
fn zipf_prefix(n: u32, skew: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|i| {
            acc += 1.0 / f64::from(i + 1).powf(skew);
            acc
        })
        .collect()
}

fn sample_cum(prefix: &[f64], rng: &mut impl Rng) -> u32 {
    let x: f64 = rng.gen::<f64>() * prefix.last().copied().unwrap_or(1.0);
    prefix.partition_point(|&p| p < x).min(prefix.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TxConfig {
        TxConfig {
            num_users: 1_000,
            num_items: 400,
            days: 10,
            tx_per_day: 500,
            num_rings: 3,
            ring_size: 10,
            ring_tx_per_day: 20,
            ..Default::default()
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a = TxStream::generate(&small());
        let b = TxStream::generate(&small());
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.blacklist, b.blacklist);
    }

    #[test]
    fn ring_membership_and_blacklist_consistent() {
        let s = TxStream::generate(&small());
        assert_eq!(s.fraudulent_users().len(), 30);
        assert_eq!(s.blacklist.len(), 6); // 20% of 3 rings of 10
        for &u in &s.blacklist {
            assert!(
                s.ring_of[u as usize].is_some(),
                "blacklisted user not in a ring"
            );
        }
    }

    #[test]
    fn volume_matches_config() {
        let cfg = small();
        let s = TxStream::generate(&cfg);
        let expect = (cfg.days * (cfg.tx_per_day + cfg.num_rings * cfg.ring_tx_per_day)) as usize;
        assert_eq!(s.transactions.len(), expect);
        assert!(s.transactions.windows(2).all(|w| w[0].day <= w[1].day));
    }

    #[test]
    fn window_filters_days() {
        let s = TxStream::generate(&small());
        assert!(s.window(2, 5).all(|t| (2..5).contains(&t.day)));
        let w: usize = s.window(0, 10).count();
        assert_eq!(w, s.transactions.len());
    }

    #[test]
    fn ring_members_hammer_their_items() {
        let s = TxStream::generate(&small());
        let ring0: Vec<u32> = (0..1_000u32)
            .filter(|&u| s.ring_of[u as usize] == Some(0))
            .collect();
        let ring_tx = s
            .transactions
            .iter()
            .filter(|t| ring0.contains(&t.buyer))
            .count();
        // 10 members get 20 ring tx/day for 10 days plus whatever honest
        // traffic they happen to produce.
        assert!(ring_tx >= 200, "{ring_tx}");
    }
}
