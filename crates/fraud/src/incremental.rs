//! Incremental sliding-window maintenance.
//!
//! The production pipeline (Figure 1) does not rebuild each window from
//! scratch: every day the newest day's transactions enter and the oldest
//! day's expire. This maintainer keeps the live transactions in an
//! arrival-order log plus a pair-count index — O(transactions of the two
//! boundary days) per advance — and materializes a fresh CSR on demand by
//! replaying the log through the same single-pass construction as
//! [`WindowWorkload::build`], so materialization equals a from-scratch
//! build bit for bit (pinned by the tests).
//!
//! Two maintenance entry points cover the two callers: [`advance`] slides
//! by whole days from a [`TxStream`] (the offline Table 4 path), and
//! [`apply_batch`] appends arbitrary micro-batches (the serving ingest
//! path, which has no stream to re-read — hence the log).
//!
//! For incremental reclustering the window additionally tracks the
//! **delta** between materializations: which raw users/items the batches
//! since the last [`materialize_delta`] touched, and whether any
//! transaction expired (expiry reshuffles first-appearance vertex ids, so
//! the previous LP state no longer maps onto the new graph).
//! [`materialize_delta`] reuses a cached first-appearance vertex mapping
//! and builds the graph straight from the pair-count index — one weighted
//! edge per live pair — which the builder's sort + dedup makes
//! bit-identical to the per-transaction replay of [`materialize`]
//! (integer `f32` sums are exact; pinned by the tests).
//!
//! [`advance`]: IncrementalWindow::advance
//! [`apply_batch`]: IncrementalWindow::apply_batch
//! [`materialize`]: IncrementalWindow::materialize
//! [`materialize_delta`]: IncrementalWindow::materialize_delta

use crate::transactions::{Transaction, TxStream};
use crate::window::WindowWorkload;
use glp_graph::{Graph, GraphBuilder, VertexId};
use std::collections::{HashMap, HashSet, VecDeque};

/// What changed between two [`materialize_delta`] calls — everything an
/// incremental recluster needs to decide eligibility and seed its
/// frontier.
///
/// `prev_*` identify the window state of the *previous* materialization
/// (the one whose LP memo the caller holds); a memo stamped with
/// different values belongs to some other window and must not seed a
/// replay. `touched` is in the **new** graph's vertex id space.
///
/// [`materialize_delta`]: IncrementalWindow::materialize_delta
#[derive(Clone, Debug, Default)]
pub struct WindowDelta {
    /// Transactions in the window at the previous materialization.
    pub prev_transactions: u64,
    /// User-vertex count at the previous materialization.
    pub prev_users: usize,
    /// Total vertex count at the previous materialization.
    pub prev_vertices: usize,
    /// Transactions in the window now.
    pub transactions: u64,
    /// Whether the delta cannot seed an incremental recluster: no
    /// previous materialization exists, or expiry invalidated the vertex
    /// mapping since (aged-out edges are *removals*, which the
    /// grow-only frontier replay does not model).
    pub expired: bool,
    /// Vertices (new id space, sorted ascending) whose neighborhoods the
    /// delta changed — both endpoints of every added edge.
    pub touched: Vec<VertexId>,
}

/// Maintains one sliding window over a transaction stream.
#[derive(Clone, Debug)]
pub struct IncrementalWindow {
    /// Window length in days.
    days: u32,
    /// Exclusive end day of the current window.
    end: u32,
    /// Current (buyer, item) → transaction count.
    counts: HashMap<(u32, u32), f32>,
    /// Live transactions in arrival order (day-sorted by construction).
    log: VecDeque<Transaction>,
    /// Cached first-appearance user → vertex id mapping (valid while
    /// `mapping_valid`; kept current by `push`).
    user_vertex: HashMap<u32, VertexId>,
    /// Cached first-appearance item → slot mapping (vertex id is
    /// `num_users + slot`).
    item_slot: HashMap<u32, u32>,
    /// Whether the cached mappings reflect the log. Expiry invalidates
    /// them (a vanished user renumbers everyone after it).
    mapping_valid: bool,
    /// Raw buyer ids batches touched since the last `materialize_delta`.
    pending_users: HashSet<u32>,
    /// Raw item ids batches touched since the last `materialize_delta`.
    pending_items: HashSet<u32>,
    /// Whether any transaction expired since the last `materialize_delta`.
    delta_expired: bool,
    /// (transactions, users, vertices) stamped at the last
    /// `materialize_delta` — the identity the next delta's `prev_*` carry.
    baseline: Option<(u64, usize, usize)>,
}

impl IncrementalWindow {
    /// A window of `days` days ending (exclusively) at `end`, initialized
    /// by one pass over the stream.
    pub fn new(stream: &TxStream, days: u32, end: u32) -> Self {
        assert!(days >= 1, "window needs at least one day");
        let mut w = Self::bare(days, end);
        for t in stream.window(end.saturating_sub(days), end) {
            w.push(*t);
        }
        w
    }

    /// An empty window of `days` days ending (exclusively) at day 0 —
    /// the serving path's starting state before any batch arrives.
    pub fn empty(days: u32) -> Self {
        assert!(days >= 1, "window needs at least one day");
        Self::bare(days, 0)
    }

    /// A window with no transactions and no delta history.
    fn bare(days: u32, end: u32) -> Self {
        Self {
            days,
            end,
            counts: HashMap::new(),
            log: VecDeque::new(),
            user_vertex: HashMap::new(),
            item_slot: HashMap::new(),
            mapping_valid: false,
            pending_users: HashSet::new(),
            pending_items: HashSet::new(),
            delta_expired: false,
            baseline: None,
        }
    }

    /// Window length in days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Exclusive end day.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Distinct (buyer, item) pairs currently in the window.
    pub fn num_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Live transactions currently in the window.
    pub fn num_transactions(&self) -> usize {
        self.log.len()
    }

    /// The live-transaction log in arrival order — the window's complete
    /// recoverable state (see [`crate::checkpoint`]).
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.log.iter()
    }

    /// Reconstructs a window from its serialized parts: length, exclusive
    /// end day, and the live log in arrival order. The pair-count index
    /// is rebuilt by replay, so a reconstructed window is byte-equivalent
    /// to the one that was captured (same log ⇒ same materialization).
    ///
    /// Returns `Err` with a static reason if the parts violate the
    /// window invariants (unordered log, transactions outside
    /// `[end - days, end)`) — a checkpoint that decodes but describes an
    /// impossible window must be rejected, not loaded.
    pub fn from_parts(days: u32, end: u32, log: Vec<Transaction>) -> Result<Self, &'static str> {
        if days == 0 {
            return Err("window needs at least one day");
        }
        let start = end.saturating_sub(days);
        let mut prev_day = start;
        for t in &log {
            if t.day < prev_day {
                return Err("log not in arrival (day) order");
            }
            if t.day >= end {
                return Err("transaction beyond the window end");
            }
            prev_day = t.day;
        }
        let mut w = Self::bare(days, end);
        for t in log {
            w.push(t);
        }
        Ok(w)
    }

    fn push(&mut self, t: Transaction) {
        *self.counts.entry((t.buyer, t.item)).or_default() += 1.0;
        if self.mapping_valid {
            let next = self.user_vertex.len() as VertexId;
            self.user_vertex.entry(t.buyer).or_insert(next);
            let next_item = self.item_slot.len() as u32;
            self.item_slot.entry(t.item).or_insert(next_item);
        }
        self.pending_users.insert(t.buyer);
        self.pending_items.insert(t.item);
        self.log.push_back(t);
    }

    /// Drops transactions that have slid out of `[end - days, end)`.
    fn expire(&mut self) {
        let start = self.end.saturating_sub(self.days);
        let mut expired_any = false;
        while self.log.front().is_some_and(|t| t.day < start) {
            let t = self.log.pop_front().expect("front checked");
            expired_any = true;
            let key = (t.buyer, t.item);
            match self.counts.get_mut(&key) {
                Some(c) if *c > 1.0 => *c -= 1.0,
                Some(_) => {
                    self.counts.remove(&key);
                }
                None => unreachable!("expiring a transaction never added"),
            }
        }
        if expired_any {
            // A vanished first appearance renumbers every later vertex;
            // the cached mapping and any delta accumulated over it are
            // dead. The next materialization rebuilds from the log.
            self.user_vertex.clear();
            self.item_slot.clear();
            self.mapping_valid = false;
            self.delta_expired = true;
        }
    }

    /// Slides the window forward one day: day `end` enters, day
    /// `end - days` expires.
    pub fn advance(&mut self, stream: &TxStream) {
        let entering = self.end;
        for t in stream.window(entering, entering + 1) {
            self.push(*t);
        }
        self.end += 1;
        self.expire();
    }

    /// Appends a micro-batch of transactions — the serving ingest entry
    /// point, equivalent to day-wise [`Self::advance`] at day boundaries
    /// but callable at any batch granularity. Transactions must be for
    /// the window's current last day or later (day-ordered arrival, as a
    /// live stream delivers); the window end slides to cover the newest
    /// day and older days expire exactly as under `advance`.
    pub fn apply_batch(&mut self, batch: &[Transaction]) {
        for t in batch {
            assert!(
                t.day + 1 >= self.end,
                "batch transaction for closed day {} (window end {})",
                t.day,
                self.end
            );
            self.end = self.end.max(t.day + 1);
            self.push(*t);
        }
        self.expire();
    }

    /// Advances the window clock to `end` (exclusive) without adding
    /// transactions — the batch-path analogue of advancing over an empty
    /// day. No-op unless `end` is ahead of the current end.
    pub fn advance_to(&mut self, end: u32) {
        if end > self.end {
            self.end = end;
            self.expire();
        }
    }

    /// Splits the window into `shards` sub-windows by routing each
    /// transaction through `route` on its buyer — the fleet-migration
    /// path, which carves a single-core window into per-shard windows
    /// without re-reading any stream. Each sub-window shares this
    /// window's length and end day, and its log is the order-preserving
    /// subsequence of this window's log routed to it, so every
    /// sub-window satisfies the day-order invariant by construction.
    pub fn partition_by(
        &self,
        shards: usize,
        route: impl Fn(u32) -> usize,
    ) -> Vec<IncrementalWindow> {
        assert!(shards >= 1, "need at least one shard");
        let mut parts: Vec<IncrementalWindow> = (0..shards)
            .map(|_| Self::bare(self.days, self.end))
            .collect();
        for t in &self.log {
            let shard = route(t.buyer);
            assert!(shard < shards, "route returned shard {shard} of {shards}");
            parts[shard].push(*t);
        }
        parts
    }

    /// Materializes the current window as a [`WindowWorkload`] by
    /// replaying the live-transaction log through the shared single-pass
    /// construction — bit-identical to a from-scratch build of the same
    /// window, and independent of any stream (the serving path's
    /// requirement).
    pub fn materialize(&self) -> WindowWorkload {
        WindowWorkload::from_transactions(self.days, self.log.iter())
    }

    /// Materializes the window *and* reports the delta accumulated since
    /// the previous `materialize_delta` call — the serving recluster
    /// entry point.
    ///
    /// The workload is bit-identical to [`Self::materialize`]'s (pinned
    /// by the tests) but built from the pair-count index through a cached
    /// first-appearance vertex mapping, so steady-state materialization
    /// costs O(pairs) instead of O(transactions). The returned
    /// [`WindowDelta`] carries the touched-vertex frontier and the
    /// previous materialization's identity stamp; `expired` is set when
    /// no previous materialization exists or expiry invalidated the
    /// mapping in between (the caller must then recluster from scratch).
    /// Calling this resets the delta: the *next* call reports changes
    /// relative to this one.
    pub fn materialize_delta(&mut self) -> (WindowWorkload, WindowDelta) {
        if !self.mapping_valid {
            self.user_vertex.clear();
            self.item_slot.clear();
            for t in &self.log {
                let next = self.user_vertex.len() as VertexId;
                self.user_vertex.entry(t.buyer).or_insert(next);
                let next_item = self.item_slot.len() as u32;
                self.item_slot.entry(t.item).or_insert(next_item);
            }
            self.mapping_valid = true;
        }
        let num_users = self.user_vertex.len();
        let n = num_users + self.item_slot.len();
        let mut b = GraphBuilder::with_capacity(n, self.counts.len());
        for (&(buyer, item), &w) in &self.counts {
            let u = self.user_vertex[&buyer];
            let i = self.item_slot[&item];
            b.add_weighted_edge(u, num_users as VertexId + i, w);
        }
        b.symmetrize(true).dedup(true);
        let workload = WindowWorkload {
            days: self.days,
            graph: b.build(),
            user_vertex: self.user_vertex.clone(),
            num_user_vertices: num_users,
            num_transactions: self.log.len() as u64,
        };
        // A touched user/item may have vanished entirely if expiry took
        // its last transaction since the previous materialization — it
        // has no vertex in the new graph (and such a delta is `expired`
        // anyway, so the frontier will not seed a replay).
        let mut touched: Vec<VertexId> = self
            .pending_users
            .iter()
            .filter_map(|u| self.user_vertex.get(u).copied())
            .collect();
        touched.extend(
            self.pending_items
                .iter()
                .filter_map(|i| self.item_slot.get(i).map(|&s| num_users as VertexId + s)),
        );
        touched.sort_unstable();
        let (prev_transactions, prev_users, prev_vertices) = self.baseline.unwrap_or((0, 0, 0));
        let delta = WindowDelta {
            prev_transactions,
            prev_users,
            prev_vertices,
            transactions: self.log.len() as u64,
            expired: self.delta_expired || self.baseline.is_none(),
            touched,
        };
        self.baseline = Some((self.log.len() as u64, num_users, n));
        self.pending_users.clear();
        self.pending_items.clear();
        self.delta_expired = false;
        (workload, delta)
    }

    /// The current window's graph alone (see [`Self::materialize`]).
    pub fn graph(&self) -> Graph {
        self.materialize().graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TxConfig;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 1_500,
            num_items: 600,
            days: 30,
            tx_per_day: 900,
            num_rings: 3,
            ring_size: 10,
            ring_tx_per_day: 25,
            ..Default::default()
        })
    }

    fn graphs_equal(a: &Graph, b: &Graph) -> bool {
        a.incoming().offsets() == b.incoming().offsets()
            && a.incoming().targets() == b.incoming().targets()
            && a.incoming().weights() == b.incoming().weights()
    }

    #[test]
    fn initial_build_matches_from_scratch() {
        let s = stream();
        let inc = IncrementalWindow::new(&s, 10, s.config.days);
        let scratch = WindowWorkload::build(&s, 10);
        assert!(graphs_equal(&inc.graph(), &scratch.graph));
    }

    #[test]
    fn advancing_matches_rebuilds_every_day() {
        let s = stream();
        // Start with the window ending at day 12 and slide to the end.
        let mut inc = IncrementalWindow::new(&s, 7, 12);
        for end in 13..=s.config.days {
            inc.advance(&s);
            assert_eq!(inc.end(), end);
            // From-scratch reference for the same [end-7, end) window:
            let mut reference = IncrementalWindow::new(&s, 7, end);
            assert_eq!(inc.num_pairs(), reference.num_pairs());
            assert!(
                graphs_equal(&inc.graph(), &reference.graph()),
                "divergence at end day {end}"
            );
            reference.counts.clear();
        }
    }

    #[test]
    fn batch_apply_equals_advance_equals_scratch() {
        let s = stream();
        let days = 7;
        let mut by_day = IncrementalWindow::new(&s, days, 12);
        let mut by_batch = by_day.clone();
        for end in 13..=s.config.days {
            by_day.advance(&s);
            // Feed the entering day as two partial micro-batches:
            // batch boundaries need not align with day boundaries.
            let txs: Vec<Transaction> = s.window(end - 1, end).copied().collect();
            let (first, second) = txs.split_at(txs.len() / 2);
            by_batch.apply_batch(first);
            by_batch.apply_batch(second);
            by_batch.advance_to(end); // covers an empty entering day
            assert_eq!(by_batch.end(), end);
            assert_eq!(by_batch.num_pairs(), by_day.num_pairs());
            assert_eq!(by_batch.num_transactions(), by_day.num_transactions());
            let scratch = IncrementalWindow::new(&s, days, end);
            assert!(
                graphs_equal(&by_batch.graph(), &by_day.graph()),
                "batch vs advance diverged at end day {end}"
            );
            assert!(
                graphs_equal(&by_batch.graph(), &scratch.graph()),
                "batch vs scratch diverged at end day {end}"
            );
        }
        // At the stream's final day the window also equals the offline
        // from-scratch workload build.
        let offline = WindowWorkload::build(&s, days);
        assert!(graphs_equal(&by_batch.graph(), &offline.graph));
    }

    #[test]
    #[should_panic(expected = "closed day")]
    fn batch_for_closed_day_rejected() {
        let s = stream();
        let mut inc = IncrementalWindow::new(&s, 7, 12);
        let stale: Vec<Transaction> = s.window(9, 10).copied().collect();
        assert!(!stale.is_empty());
        inc.apply_batch(&stale);
    }

    #[test]
    fn expiry_removes_old_days_completely() {
        let s = stream();
        let mut inc = IncrementalWindow::new(&s, 1, 1); // exactly day 0
        let day0_pairs = inc.num_pairs();
        assert!(day0_pairs > 0);
        inc.advance(&s); // now exactly day 1
        let reference = IncrementalWindow::new(&s, 1, 2);
        assert_eq!(inc.num_pairs(), reference.num_pairs());
    }

    #[test]
    fn partition_by_preserves_and_covers_the_log() {
        let s = stream();
        let inc = IncrementalWindow::new(&s, 7, s.config.days);

        // One shard: identity.
        let whole = inc.partition_by(1, |_| 0);
        assert_eq!(whole.len(), 1);
        assert!(graphs_equal(&whole[0].graph(), &inc.graph()));
        assert_eq!(whole[0].end(), inc.end());

        // Three shards: disjoint cover, each a valid window.
        let parts = inc.partition_by(3, |buyer| buyer as usize % 3);
        let total: usize = parts.iter().map(|p| p.num_transactions()).sum();
        assert_eq!(total, inc.num_transactions());
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.end(), inc.end());
            assert_eq!(p.days(), inc.days());
            assert!(p.num_transactions() > 0, "shard {i} unexpectedly empty");
            assert!(p.transactions().all(|t| t.buyer as usize % 3 == i));
            p.materialize(); // must not violate window invariants
        }

        // Reuniting the sub-logs in arrival order rebuilds the original
        // window bit for bit (stable partition = order-preserving).
        let mut merged: Vec<Transaction> = Vec::new();
        let mut iters: Vec<_> = parts.iter().map(|p| p.transactions().peekable()).collect();
        for t in inc.transactions() {
            let shard = t.buyer as usize % 3;
            merged.push(*iters[shard].next().expect("sub-log exhausted early"));
            assert_eq!(merged.last().map(|m| m.buyer), Some(t.buyer));
        }
        let rebuilt = IncrementalWindow::from_parts(7, inc.end(), merged).expect("valid merge");
        assert!(graphs_equal(&rebuilt.graph(), &inc.graph()));
    }

    #[test]
    fn delta_materialization_matches_replay_build_batch_by_batch() {
        let s = stream();
        let mut inc = IncrementalWindow::empty(7);
        for day in 0..20u32 {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            for chunk in txs.chunks(txs.len().div_ceil(3).max(1)) {
                inc.apply_batch(chunk);
                let reference = inc.materialize();
                let (w, delta) = inc.materialize_delta();
                assert!(
                    graphs_equal(&w.graph, &reference.graph),
                    "fast build diverged at day {day}"
                );
                assert_eq!(w.user_vertex, reference.user_vertex);
                assert_eq!(w.num_user_vertices, reference.num_user_vertices);
                assert_eq!(w.num_transactions, reference.num_transactions);
                assert_eq!(delta.transactions, inc.num_transactions() as u64);
                // The frontier covers both endpoints of every batch tx
                // and stays inside the new graph.
                assert!(delta.touched.windows(2).all(|p| p[0] < p[1]));
                assert!(delta
                    .touched
                    .iter()
                    .all(|&v| (v as usize) < w.graph.num_vertices()));
                for t in chunk {
                    let u = w.user_vertex[&t.buyer];
                    assert!(delta.touched.binary_search(&u).is_ok());
                }
            }
            inc.advance_to(day + 1);
        }
    }

    #[test]
    fn delta_tracks_baseline_and_flags_expiry() {
        let s = stream();
        let mut inc = IncrementalWindow::empty(3);
        let day0: Vec<Transaction> = s.window(0, 1).copied().collect();
        inc.apply_batch(&day0);

        // First materialization: no baseline yet, so not incremental.
        let (w0, d0) = inc.materialize_delta();
        assert!(d0.expired);
        assert_eq!(d0.prev_transactions, 0);

        // Same-day growth: clean delta against the recorded baseline.
        let day1: Vec<Transaction> = s.window(1, 2).copied().collect();
        inc.apply_batch(&day1);
        let (w1, d1) = inc.materialize_delta();
        assert!(!d1.expired);
        assert_eq!(d1.prev_transactions, w0.num_transactions);
        assert_eq!(d1.prev_users, w0.num_user_vertices);
        assert_eq!(d1.prev_vertices, w0.graph.num_vertices());
        assert_eq!(d1.transactions, w1.num_transactions);
        assert!(!d1.touched.is_empty());
        // Old user ids survive a clean (expiry-free) delta verbatim.
        for (u, &v) in &w0.user_vertex {
            assert_eq!(w1.user_vertex[u], v);
        }

        // Quiet delta: nothing pushed, nothing touched, still valid.
        let (_, dq) = inc.materialize_delta();
        assert!(!dq.expired);
        assert!(dq.touched.is_empty());

        // Slide past the window length: expiry poisons the delta once,
        // then the next one is clean again.
        for day in 2..5u32 {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            inc.apply_batch(&txs);
        }
        assert!(inc.num_transactions() < day0.len() + day1.len() + 3 * day0.len());
        let (_, dx) = inc.materialize_delta();
        assert!(dx.expired, "expiry must invalidate the delta");

        // A day advance over a short window expires again, but a second
        // batch for the *same* day rides on the rebuilt mapping cleanly.
        let day5: Vec<Transaction> = s.window(5, 6).copied().collect();
        let (first, second) = day5.split_at(day5.len() / 2);
        assert!(!second.is_empty());
        inc.apply_batch(first);
        let (_, da) = inc.materialize_delta();
        assert!(da.expired, "the day advance aged day 2 out");
        inc.apply_batch(second);
        let (_, d5) = inc.materialize_delta();
        assert!(!d5.expired);
        assert!(!d5.touched.is_empty());
    }

    #[test]
    fn seeds_survive_materialization() {
        let s = stream();
        let inc = IncrementalWindow::new(&s, 20, s.config.days);
        let w = inc.materialize();
        assert_eq!(w.seeds(&s).len(), s.blacklist.len());
    }
}
