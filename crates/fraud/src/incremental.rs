//! Incremental sliding-window maintenance.
//!
//! The production pipeline (Figure 1) does not rebuild each window from
//! scratch: every day the newest day's transactions enter and the oldest
//! day's expire. This maintainer keeps the pair-weight multiset
//! incrementally — O(transactions of the two boundary days) per advance —
//! and materializes a fresh CSR on demand. Materialization equals a
//! from-scratch [`WindowWorkload::build`] bit for bit, which the tests
//! pin.

use crate::transactions::TxStream;
use crate::window::WindowWorkload;
use glp_graph::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;

/// Maintains one sliding window over a transaction stream.
#[derive(Clone, Debug)]
pub struct IncrementalWindow {
    /// Window length in days.
    days: u32,
    /// Exclusive end day of the current window.
    end: u32,
    /// Current (buyer, item) → transaction count.
    counts: HashMap<(u32, u32), f32>,
}

impl IncrementalWindow {
    /// A window of `days` days ending (exclusively) at `end`, initialized
    /// by one pass over the stream.
    pub fn new(stream: &TxStream, days: u32, end: u32) -> Self {
        assert!(days >= 1, "window needs at least one day");
        let mut w = Self {
            days,
            end,
            counts: HashMap::new(),
        };
        for t in stream.window(end.saturating_sub(days), end) {
            *w.counts.entry((t.buyer, t.item)).or_default() += 1.0;
        }
        w
    }

    /// Window length in days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Exclusive end day.
    pub fn end(&self) -> u32 {
        self.end
    }

    /// Distinct (buyer, item) pairs currently in the window.
    pub fn num_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Slides the window forward one day: day `end` enters, day
    /// `end - days` expires.
    pub fn advance(&mut self, stream: &TxStream) {
        let entering = self.end;
        let expiring = self.end.saturating_sub(self.days);
        for t in stream.window(entering, entering + 1) {
            *self.counts.entry((t.buyer, t.item)).or_default() += 1.0;
        }
        if self.end >= self.days {
            for t in stream.window(expiring, expiring + 1) {
                let key = (t.buyer, t.item);
                match self.counts.get_mut(&key) {
                    Some(c) if *c > 1.0 => *c -= 1.0,
                    Some(_) => {
                        self.counts.remove(&key);
                    }
                    None => unreachable!("expiring a transaction never added"),
                }
            }
        }
        self.end += 1;
    }

    /// Materializes the current window as a [`WindowWorkload`], with the
    /// same dense-id assignment as a from-scratch build: vertex ids in
    /// first-appearance order of the window's *transactions*.
    pub fn materialize(&self, stream: &TxStream) -> WindowWorkload {
        // Recover first-appearance order by replaying the window's
        // transaction order (cheap: one filtered pass, no counting).
        let start = self.end.saturating_sub(self.days);
        let mut user_vertex: HashMap<u32, VertexId> = HashMap::new();
        let mut item_slot: HashMap<u32, u32> = HashMap::new();
        for t in stream.window(start, self.end) {
            let next = user_vertex.len() as VertexId;
            user_vertex.entry(t.buyer).or_insert(next);
            let next_item = item_slot.len() as u32;
            item_slot.entry(t.item).or_insert(next_item);
        }
        let num_users = user_vertex.len();
        let n = num_users + item_slot.len();
        let mut b = GraphBuilder::with_capacity(n, self.counts.len());
        for (&(buyer, item), &w) in &self.counts {
            let u = user_vertex[&buyer];
            let i = num_users as VertexId + item_slot[&item];
            b.add_weighted_edge(u, i, w);
        }
        b.symmetrize(true).dedup(true);
        WindowWorkload {
            days: self.days,
            graph: b.build(),
            user_vertex,
            num_user_vertices: num_users,
        }
    }

    /// The current window's graph alone (see [`Self::materialize`]).
    pub fn graph(&self, stream: &TxStream) -> Graph {
        self.materialize(stream).graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TxConfig;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 1_500,
            num_items: 600,
            days: 30,
            tx_per_day: 900,
            num_rings: 3,
            ring_size: 10,
            ring_tx_per_day: 25,
            ..Default::default()
        })
    }

    fn graphs_equal(a: &Graph, b: &Graph) -> bool {
        a.incoming().offsets() == b.incoming().offsets()
            && a.incoming().targets() == b.incoming().targets()
            && a.incoming().weights() == b.incoming().weights()
    }

    #[test]
    fn initial_build_matches_from_scratch() {
        let s = stream();
        let inc = IncrementalWindow::new(&s, 10, s.config.days);
        let scratch = WindowWorkload::build(&s, 10);
        assert!(graphs_equal(&inc.graph(&s), &scratch.graph));
    }

    #[test]
    fn advancing_matches_rebuilds_every_day() {
        let s = stream();
        // Start with the window ending at day 12 and slide to the end.
        let mut inc = IncrementalWindow::new(&s, 7, 12);
        for end in 13..=s.config.days {
            inc.advance(&s);
            assert_eq!(inc.end(), end);
            // From-scratch reference for the same [end-7, end) window:
            let mut reference = IncrementalWindow::new(&s, 7, end);
            assert_eq!(inc.num_pairs(), reference.num_pairs());
            assert!(
                graphs_equal(&inc.graph(&s), &reference.graph(&s)),
                "divergence at end day {end}"
            );
            reference.counts.clear();
        }
    }

    #[test]
    fn expiry_removes_old_days_completely() {
        let s = stream();
        let mut inc = IncrementalWindow::new(&s, 1, 1); // exactly day 0
        let day0_pairs = inc.num_pairs();
        assert!(day0_pairs > 0);
        inc.advance(&s); // now exactly day 1
        let reference = IncrementalWindow::new(&s, 1, 2);
        assert_eq!(inc.num_pairs(), reference.num_pairs());
    }

    #[test]
    fn seeds_survive_materialization() {
        let s = stream();
        let inc = IncrementalWindow::new(&s, 20, s.config.days);
        let w = inc.materialize(&s);
        assert_eq!(w.seeds(&s).len(), s.blacklist.len());
    }
}
