//! Sliding-window transaction graphs (Table 4).
//!
//! The pipeline "maintains sliding windows containing the transactions in
//! the past 10–100 days" and builds a graph per window (§5.4). Vertices
//! are users and items (users first, then items, like the aligraph
//! substitute); repeated purchases between the same pair merge into one
//! weighted edge. Because users and items recur across days, |V| grows
//! sublinearly with window length while |E| grows near-linearly — exactly
//! Table 4's shape (V: 460M→1010M, ×2.2; E: 1.7B→10.2B, ×6).

use crate::transactions::{Transaction, TxStream};
use glp_graph::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;

/// One sliding-window workload: the graph plus id mappings.
#[derive(Clone, Debug)]
pub struct WindowWorkload {
    /// Window length in days.
    pub days: u32,
    /// The symmetrized, weighted user–item graph.
    pub graph: Graph,
    /// Graph vertex id of each participating user: `user_vertex[u]`.
    pub user_vertex: HashMap<u32, VertexId>,
    /// Number of user vertices (items follow them in the id space).
    pub num_user_vertices: usize,
    /// Transactions the window was built from — an identity stamp that
    /// lets incremental reclustering verify a memoized LP state belongs
    /// to the window a delta extends.
    pub num_transactions: u64,
}

impl WindowWorkload {
    /// Builds the graph over the last `days` days of `stream` (the window
    /// ending at the stream's final day).
    pub fn build(stream: &TxStream, days: u32) -> Self {
        let end = stream.config.days;
        let start = end.saturating_sub(days);
        Self::from_transactions(days, stream.window(start, end))
    }

    /// Builds from a single in-order pass over a window's transactions —
    /// the construction path shared by [`Self::build`], incremental
    /// materialization, and the serving ingest path. Dense vertex ids are
    /// assigned in first-appearance order, so any source replaying the
    /// same transaction sequence produces a bit-identical graph.
    pub fn from_transactions<'a, I>(days: u32, txs: I) -> Self
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        // One pass: assign ids as pairs first appear, remembering each
        // transaction's (user, item-slot) for the edge list.
        let mut user_vertex: HashMap<u32, VertexId> = HashMap::new();
        let mut item_slot: HashMap<u32, u32> = HashMap::new();
        let mut pairs: Vec<(VertexId, u32)> = Vec::new();
        for t in txs {
            let next = user_vertex.len() as VertexId;
            let u = *user_vertex.entry(t.buyer).or_insert(next);
            let next_item = item_slot.len() as u32;
            let i = *item_slot.entry(t.item).or_insert(next_item);
            pairs.push((u, i));
        }
        let num_users = user_vertex.len();
        let n = num_users + item_slot.len();
        let num_transactions = pairs.len() as u64;
        let mut b = GraphBuilder::with_capacity(n, pairs.len());
        for (u, i) in pairs {
            b.add_weighted_edge(u, num_users as VertexId + i, 1.0);
        }
        b.symmetrize(true).dedup(true);
        Self {
            days,
            graph: b.build(),
            user_vertex,
            num_user_vertices: num_users,
            num_transactions,
        }
    }

    /// Seed vertex ids: black-listed users present in this window.
    pub fn seeds(&self, stream: &TxStream) -> Vec<VertexId> {
        let mut seeds: Vec<VertexId> = stream
            .blacklist
            .iter()
            .filter_map(|u| self.user_vertex.get(u).copied())
            .collect();
        seeds.sort_unstable();
        seeds
    }

    /// Whether a graph vertex is a user (vs an item).
    pub fn is_user(&self, v: VertexId) -> bool {
        (v as usize) < self.num_user_vertices
    }
}

/// The Table 4 sweep: window lengths 10, 20, …, 100 days.
#[derive(Clone, Copy, Debug)]
pub struct WindowSpec {
    /// Window length in days.
    pub days: u32,
    /// |V| in millions as Table 4 reports it (for the comparison printout).
    pub paper_vertices_m: u32,
    /// |E| in billions as Table 4 reports it.
    pub paper_edges_b: f64,
}

/// Table 4's ten sliding-window workloads.
pub fn table4() -> Vec<WindowSpec> {
    let v = [460u32, 630, 700, 770, 820, 880, 920, 970, 990, 1010];
    let e = [1.7, 3.0, 4.3, 5.5, 6.7, 7.8, 8.7, 9.3, 9.8, 10.2];
    (0..10)
        .map(|i| WindowSpec {
            days: 10 * (i as u32 + 1),
            paper_vertices_m: v[i],
            paper_edges_b: e[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TxConfig;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 3_000,
            num_items: 1_000,
            days: 100,
            tx_per_day: 1_500,
            num_rings: 4,
            ring_size: 12,
            ring_tx_per_day: 30,
            ..Default::default()
        })
    }

    #[test]
    fn vertices_grow_sublinearly_edges_nearly_linearly() {
        let s = stream();
        let w10 = WindowWorkload::build(&s, 10);
        let w100 = WindowWorkload::build(&s, 100);
        let v_ratio = w100.graph.num_vertices() as f64 / w10.graph.num_vertices() as f64;
        let e_ratio = w100.graph.num_edges() as f64 / w10.graph.num_edges() as f64;
        assert!(v_ratio < e_ratio, "V ratio {v_ratio} !< E ratio {e_ratio}");
        assert!(v_ratio > 1.0 && v_ratio < 3.5, "V ratio {v_ratio}");
        assert!(e_ratio > 2.5, "E ratio {e_ratio}");
    }

    #[test]
    fn graph_is_bipartite_and_weighted() {
        let s = stream();
        let w = WindowWorkload::build(&s, 20);
        assert!(w.graph.incoming().is_weighted());
        for v in 0..w.graph.num_vertices() as VertexId {
            let user = w.is_user(v);
            for &u in w.graph.neighbors(v) {
                assert_ne!(w.is_user(u), user, "edge within one side");
            }
        }
    }

    #[test]
    fn seeds_are_window_participants() {
        let s = stream();
        let w = WindowWorkload::build(&s, 100);
        let seeds = w.seeds(&s);
        // Ring members transact daily, so every black-listed user appears
        // in the full window.
        assert_eq!(seeds.len(), s.blacklist.len());
        for &v in &seeds {
            assert!(w.is_user(v));
        }
    }

    #[test]
    fn table4_specs_shape() {
        let t = table4();
        assert_eq!(t.len(), 10);
        assert_eq!(t[0].days, 10);
        assert_eq!(t[9].days, 100);
        assert!(t
            .windows(2)
            .all(|w| w[0].paper_vertices_m < w[1].paper_vertices_m));
        assert!(t
            .windows(2)
            .all(|w| w[0].paper_edges_b < w[1].paper_edges_b));
    }
}
