//! Adversarial workload generation: an attacker that evades and
//! overloads the serving pipeline, with per-day ground truth.
//!
//! [`RegionalStream`] plants *static* rings — the same mule accounts
//! wash the same listings every day, which a day-0 snapshot catches as
//! well as a live pipeline does. A real adversary is not static. This
//! module composes four attack behaviors on top of the regional organic
//! background, each one aimed at a specific weakness of a
//! snapshot-based detector or of the serving machinery itself:
//!
//! * **Member rotation** — each ring owns a *pool* of mule accounts but
//!   only a rotating subset is active on any given day. Accounts that
//!   were washing on day 0 go dormant; accounts that were dormant wake
//!   up. A static day-0 snapshot keeps flagging the dormant (now
//!   harmless) members and misses the newly activated ones; only a
//!   pipeline that reclusters the live window tracks the rotation.
//! * **Camouflage** — active mules also buy from their region's organic
//!   catalog at organic prices, growing legitimate-looking edges that
//!   dilute the ring's bipartite signature.
//! * **Burst flood** — on a chosen day the adversary multiplies organic
//!   volume to overflow the ingest queue, attacking the *service*
//!   (shed-rate, health) rather than the detector.
//! * **Label noise** — innocent accounts are planted in the blacklist,
//!   poisoning the LP seeds until the noise is retracted.
//!
//! Every behavior is seeded and deterministic, and the plan emits
//! ground truth *per day*: [`AdversarialStream::truth_by_day`] lists
//! exactly who was actively washing on each day, so a
//! `DetectionProbe` can score any published snapshot against the truth
//! of the window it covers.
//!
//! The generator reuses [`RegionalStream`]'s reserved-slot discipline:
//! ring pools occupy the top `ring_size` user slots of each region and
//! ring targets the top [`RING_ITEMS`] item slots, which organic
//! traffic never draws. Rings therefore stay their own connected
//! components bridging region cuts (modulo camouflage, which is the
//! point of camouflage), and community-aware sharding behaves exactly
//! as it does on the non-adversarial stream.

use crate::transactions::{RegionalStream, RegionalTxConfig, Transaction, RING_ITEMS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of one adversary: the organic world it hides in plus
/// the four attack behaviors. `base.cross_rings` is the number of
/// evolving rings and `base.ring_size` each ring's *pool* size (the
/// rotating active subset is [`Self::active_members`]).
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// The organic background and ring-pool geometry (regions, users,
    /// items, days, organic volume, pools via `cross_rings`/`ring_size`,
    /// wash volume via `ring_tx_per_day`, seed fraction, RNG seed).
    pub base: RegionalTxConfig,
    /// Pool members actively washing on any given day (≤ `ring_size`).
    pub active_members: u32,
    /// How many pool positions the active subset shifts per day; 0
    /// disables rotation (the static-ring degenerate case).
    pub rotate_per_day: u32,
    /// Camouflage purchases per ring per day: active mules buying from
    /// their region's organic catalog at organic prices.
    pub camouflage_per_day: u32,
    /// Day of the burst flood, if any.
    pub burst_day: Option<u32>,
    /// Extra organic-shaped transactions injected on `burst_day`.
    pub burst_tx: u32,
    /// Innocent accounts planted in the blacklist (label noise).
    pub label_noise: u32,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        Self {
            base: RegionalTxConfig {
                regions: 4,
                users_per_region: 200,
                items_per_region: 80,
                days: 12,
                tx_per_day: 800,
                cross_rings: 4,
                ring_size: 10,
                ring_tx_per_day: 30,
                blacklist_fraction: 0.3,
                ..Default::default()
            },
            active_members: 6,
            rotate_per_day: 2,
            camouflage_per_day: 10,
            burst_day: None,
            burst_tx: 0,
            label_noise: 0,
        }
    }
}

/// Domain separation for the attack RNG: the organic background and the
/// attack traffic must not share a random stream, or changing one
/// behavior would reshuffle the other.
const ATTACK_SEED_SALT: u64 = 0xAD5E_7A11_0B57_ACE5;

/// A generated adversarial stream plus its ground truth — the
/// adversarial analogue of [`RegionalStream`]. Transactions are sorted
/// by day; within a day, organic traffic precedes burst traffic
/// precedes ring traffic.
#[derive(Clone, Debug)]
pub struct AdversarialStream {
    /// All transactions, sorted by day.
    pub transactions: Vec<Transaction>,
    /// What the *service* is told: true seeds plus planted label noise,
    /// ascending. Feed this to the pipeline; score against the truth.
    pub blacklist: Vec<u32>,
    /// The innocent accounts planted in [`Self::blacklist`], ascending.
    pub noise: Vec<u32>,
    /// Pool membership: `ring_of[user] = Some(ring)` for every account
    /// the adversary *owns* (active on some days, dormant on others).
    pub ring_of: Vec<Option<u32>>,
    /// Ground truth: `truth_by_day[d]` is the ascending list of
    /// accounts actively washing on day `d`.
    pub truth_by_day: Vec<Vec<u32>>,
    /// The configuration that produced this stream.
    pub config: AdversaryConfig,
}

impl AdversarialStream {
    /// Generates the stream for `cfg`.
    pub fn generate(cfg: &AdversaryConfig) -> Self {
        let b = &cfg.base;
        assert!(
            cfg.active_members >= 1 && cfg.active_members <= b.ring_size,
            "active members must be a non-empty subset of the ring pool"
        );
        if let Some(d) = cfg.burst_day {
            assert!(d < b.days, "burst day beyond the stream");
        }
        let (upr, ipr) = (b.users_per_region, b.items_per_region);
        assert!(
            cfg.label_noise <= b.regions * (upr - b.ring_size),
            "more label noise than innocent accounts"
        );

        // The organic background: the regional generator with its rings
        // switched off but the reserved slots kept (organic draws still
        // exclude the top `ring_size` user and top RING_ITEMS item
        // slots, which is where the adversary's pools live).
        let organic = RegionalStream::generate(&RegionalTxConfig {
            cross_rings: 0,
            ring_tx_per_day: 0,
            ..b.clone()
        });

        // Ring pools: the exact slot discipline of RegionalStream's
        // cross rings — ring k straddles regions k and k+1 (mod R).
        assert!(
            b.cross_rings <= b.regions,
            "at most one evolving ring per region pair"
        );
        let half = b.ring_size / 2;
        let num_users = b.regions * upr;
        let mut ring_of = vec![None; num_users as usize];
        let mut pools: Vec<Vec<u32>> = Vec::with_capacity(b.cross_rings as usize);
        let mut blacklist = Vec::new();
        for k in 0..b.cross_rings {
            let (ra, rb) = (k % b.regions, (k + 1) % b.regions);
            let mut pool = Vec::with_capacity(b.ring_size as usize);
            for i in 0..half {
                pool.push(ra * upr + upr - 1 - i);
            }
            for i in 0..(b.ring_size - half) {
                pool.push(rb * upr + upr - 1 - half - i);
            }
            for (pos, &u) in pool.iter().enumerate() {
                ring_of[u as usize] = Some(k);
                if (pos as f64) < b.blacklist_fraction * f64::from(b.ring_size) {
                    blacklist.push(u);
                }
            }
            pools.push(pool);
        }
        let ring_items: Vec<Vec<u32>> = (0..b.cross_rings)
            .map(|k| {
                let ra = k % b.regions;
                (0..RING_ITEMS).map(|j| ra * ipr + ipr - 1 - j).collect()
            })
            .collect();

        // Label noise: innocent accounts from the *bottom* of each
        // region's id range (never a pool slot), round-robin across
        // regions so the noise is spread like real mislabeling.
        let noise: Vec<u32> = {
            let mut n: Vec<u32> = (0..cfg.label_noise)
                .map(|i| (i % b.regions) * upr + i / b.regions)
                .collect();
            n.sort_unstable();
            n
        };
        for &u in &noise {
            assert!(ring_of[u as usize].is_none(), "noise user owns a pool slot");
        }
        blacklist.extend_from_slice(&noise);
        blacklist.sort_unstable();
        blacklist.dedup();

        // Per-day active subsets: a window of `active_members` pool
        // positions sliding by `rotate_per_day` each day.
        let truth_by_day: Vec<Vec<u32>> = (0..b.days)
            .map(|day| {
                let mut active: Vec<u32> = pools
                    .iter()
                    .flat_map(|pool| {
                        (0..cfg.active_members).map(move |j| {
                            let pos = (day as usize * cfg.rotate_per_day as usize + j as usize)
                                % pool.len();
                            pool[pos]
                        })
                    })
                    .collect();
                active.sort_unstable();
                active.dedup();
                active
            })
            .collect();

        // Attack traffic rides a domain-separated RNG so the organic
        // background is byte-identical with or without the adversary.
        let mut rng = ChaCha8Rng::seed_from_u64(b.seed ^ ATTACK_SEED_SALT);
        let mut transactions = Vec::with_capacity(organic.transactions.len());
        for day in 0..b.days {
            transactions.extend(organic.window(day, day + 1));
            if cfg.burst_day == Some(day) {
                // The flood is organic-shaped: same regional draw, same
                // amounts — indistinguishable volume, not new structure.
                for _ in 0..cfg.burst_tx {
                    let region = rng.gen_range(0..b.regions);
                    transactions.push(Transaction {
                        buyer: region * upr + rng.gen_range(0..upr - b.ring_size),
                        item: region * ipr + rng.gen_range(0..ipr - RING_ITEMS),
                        day,
                        amount: rng.gen_range(1.0..500.0),
                    });
                }
            }
            for (k, pool) in pools.iter().enumerate() {
                let active: Vec<u32> = (0..cfg.active_members)
                    .map(|j| {
                        let pos =
                            (day as usize * cfg.rotate_per_day as usize + j as usize) % pool.len();
                        pool[pos]
                    })
                    .collect();
                for _ in 0..b.ring_tx_per_day {
                    let buyer = active[rng.gen_range(0..active.len())];
                    let item = ring_items[k][rng.gen_range(0..RING_ITEMS as usize)];
                    transactions.push(Transaction {
                        buyer,
                        item,
                        day,
                        amount: rng.gen_range(1.0..20.0), // wash trades
                    });
                }
                for _ in 0..cfg.camouflage_per_day {
                    // Organic-priced purchases from the mule's own
                    // region's catalog: legitimate-looking degree.
                    let buyer = active[rng.gen_range(0..active.len())];
                    let region = buyer / upr;
                    transactions.push(Transaction {
                        buyer,
                        item: region * ipr + rng.gen_range(0..ipr - RING_ITEMS),
                        day,
                        amount: rng.gen_range(1.0..500.0),
                    });
                }
            }
        }

        Self {
            transactions,
            blacklist,
            noise,
            ring_of,
            truth_by_day,
            config: cfg.clone(),
        }
    }

    /// Transactions with `day` in `[from, to)`.
    pub fn window(&self, from: u32, to: u32) -> impl Iterator<Item = &Transaction> {
        self.transactions
            .iter()
            .filter(move |t| t.day >= from && t.day < to)
    }

    /// Total user population.
    pub fn num_users(&self) -> u32 {
        self.config.base.regions * self.config.base.users_per_region
    }

    /// The region (community) owning `user`.
    pub fn region_of(&self, user: u32) -> u32 {
        user / self.config.base.users_per_region
    }

    /// `user → region` for every user — the community map a
    /// community-aware partitioner consumes.
    pub fn community_map(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_users()).map(|u| (u, self.region_of(u)))
    }

    /// Accounts actively washing on *any* day of `[from, to)`,
    /// ascending — the ground-truth positives for a window covering
    /// those days.
    pub fn truth_in(&self, from: u32, to: u32) -> Vec<u32> {
        let to = (to as usize).min(self.truth_by_day.len());
        let mut t: Vec<u32> = self.truth_by_day[(from as usize).min(to)..to]
            .iter()
            .flatten()
            .copied()
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Every account the adversary owns (union of all pools), ascending.
    pub fn pool_members(&self) -> Vec<u32> {
        self.ring_of
            .iter()
            .enumerate()
            .filter_map(|(u, r)| r.map(|_| u as u32))
            .collect()
    }

    /// The blacklist with the planted noise retracted: what the seeds
    /// *should* have been, ascending.
    pub fn clean_blacklist(&self) -> Vec<u32> {
        self.blacklist
            .iter()
            .copied()
            .filter(|u| self.noise.binary_search(u).is_err())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdversaryConfig {
        AdversaryConfig {
            label_noise: 3,
            burst_day: Some(6),
            burst_tx: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn stream_is_deterministic_and_day_sorted() {
        let a = AdversarialStream::generate(&cfg());
        let b = AdversarialStream::generate(&cfg());
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.blacklist, b.blacklist);
        assert_eq!(a.truth_by_day, b.truth_by_day);
        assert!(a.transactions.windows(2).all(|w| w[0].day <= w[1].day));
    }

    #[test]
    fn rotation_changes_the_active_set_per_day() {
        let s = AdversarialStream::generate(&cfg());
        let pool = s.pool_members();
        let mut distinct = std::collections::BTreeSet::new();
        for (d, truth) in s.truth_by_day.iter().enumerate() {
            assert_eq!(
                truth.len(),
                (s.config.base.cross_rings * s.config.active_members) as usize,
                "day {d} active set has the wrong size"
            );
            for &u in truth {
                assert!(pool.binary_search(&u).is_ok(), "active non-pool account");
            }
            distinct.insert(truth.clone());
        }
        assert!(distinct.len() > 1, "rotation never changed the active set");
        // Rotation eventually activates every pool member.
        assert_eq!(s.truth_in(0, s.config.base.days), pool);
        // And day 0's truth is a strict subset of the pool.
        assert!(s.truth_by_day[0].len() < pool.len());
    }

    #[test]
    fn camouflage_buys_organic_items_at_organic_prices() {
        let s = AdversarialStream::generate(&cfg());
        let ipr = s.config.base.items_per_region;
        let camo = s
            .transactions
            .iter()
            .filter(|t| {
                s.ring_of[t.buyer as usize].is_some() && (t.item % ipr) < ipr - RING_ITEMS
                // not a ring target
            })
            .count();
        let expect = s.config.base.days * s.config.base.cross_rings * s.config.camouflage_per_day;
        assert_eq!(camo as u32, expect);
    }

    #[test]
    fn burst_day_multiplies_volume() {
        let s = AdversarialStream::generate(&cfg());
        let quiet = s.window(5, 6).count();
        let burst = s.window(6, 7).count();
        assert_eq!(burst, quiet + s.config.burst_tx as usize);
    }

    #[test]
    fn label_noise_is_innocent_and_retractable() {
        let s = AdversarialStream::generate(&cfg());
        assert_eq!(s.noise.len(), 3);
        for &u in &s.noise {
            assert!(s.ring_of[u as usize].is_none(), "noise user in a pool");
            assert!(s.blacklist.binary_search(&u).is_ok());
        }
        let clean = s.clean_blacklist();
        assert_eq!(clean.len(), s.blacklist.len() - s.noise.len());
        for &u in &clean {
            assert!(s.ring_of[u as usize].is_some(), "clean seed not a mule");
        }
    }

    #[test]
    fn organic_background_is_independent_of_the_attack() {
        // Turning attack knobs must not reshuffle organic traffic:
        // day 0 organic prefix identical across two different plans.
        let a = AdversarialStream::generate(&cfg());
        let b = AdversarialStream::generate(&AdversaryConfig {
            rotate_per_day: 5,
            camouflage_per_day: 0,
            ..cfg()
        });
        let n = a.config.base.tx_per_day as usize;
        assert_eq!(&a.transactions[..n], &b.transactions[..n]);
    }
}
