//! The end-to-end detection pipeline (paper Figure 1).
//!
//! sliding window → transaction graph → **LP clustering** → flag clusters
//! containing black-listed seeds.
//!
//! §1: "transaction networks ... are first processed by LP to identify
//! suspicious clusters from known black-listed users". Weighted classic LP
//! clusters the window graph (wash-trading rings form tight, heavy-edged
//! communities); clusters containing blacklist members with suspicious
//! internal structure are flagged for the downstream models.
//!
//! The LP stage is pluggable (that is the whole point of the paper: swap
//! the in-house distributed LP for GLP and the pipeline's dominant stage
//! shrinks). Construction and scoring are charged on the workstation CPU
//! model so the per-stage share — the "LP takes 75%" observation — can be
//! reproduced and then shown collapsing under GLP.

use crate::transactions::TxStream;
use crate::window::WindowWorkload;
use glp_core::{Engine, EngineError, LpProgram, LpRunReport, RunOptions, WeightedLp};
use glp_gpusim::host::{CpuConfig, CpuCounters};
use glp_graph::VertexId;
use std::collections::HashMap;

/// Pipeline parameters.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Sliding-window length in days.
    pub window_days: u32,
    /// Seeded-LP iteration cap (the paper's runs use 20).
    pub lp_iterations: u32,
    /// Ignore clusters smaller than this (users + items).
    pub min_cluster_size: usize,
    /// Flag clusters scoring at least this.
    pub suspicion_threshold: f64,
    /// Minimum black-listed members for a cluster to be considered at all.
    pub min_seeds: usize,
    /// Self-retention bonus for the weighted LP (damps bipartite
    /// oscillation; should sit above honest purchase multiplicity and
    /// below wash-trade multiplicity).
    pub retention: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            window_days: 30,
            lp_iterations: 20,
            min_cluster_size: 4,
            suspicion_threshold: 0.5,
            min_seeds: 2,
            retention: 3.0,
        }
    }
}

/// Per-stage modeled seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSeconds {
    /// Window graph construction.
    pub construction: f64,
    /// Label propagation.
    pub lp: f64,
    /// Cluster feature extraction + scoring.
    pub scoring: f64,
}

impl StageSeconds {
    /// Total pipeline seconds.
    pub fn total(&self) -> f64 {
        self.construction + self.lp + self.scoring
    }

    /// LP's share of the pipeline (the paper's 75% number).
    pub fn lp_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.lp / self.total()
        }
    }
}

/// One flagged cluster.
#[derive(Clone, Debug)]
pub struct FlaggedCluster {
    /// The seed label identifying the cluster.
    pub label: u32,
    /// User vertices in the cluster.
    pub users: Vec<VertexId>,
    /// Item vertices in the cluster.
    pub items: Vec<VertexId>,
    /// Suspicion score in [0, 1].
    pub score: f64,
}

/// Pipeline output.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Window length used.
    pub window_days: u32,
    /// Window graph size.
    pub graph_vertices: usize,
    /// Window graph directed edge count.
    pub graph_edges: u64,
    /// Seeds present in the window.
    pub num_seeds: usize,
    /// Per-stage modeled seconds.
    pub stages: StageSeconds,
    /// Clusters flagged as suspicious.
    pub flagged: Vec<FlaggedCluster>,
    /// Precision over flagged users against the injected rings.
    pub precision: f64,
    /// Recall of ring members among flagged users.
    pub recall: f64,
    /// The LP stage's full report.
    pub lp_report: LpRunReport,
}

/// Precision and recall of a flagged user set against ground-truth
/// positives (`truth`, ascending). Both sides are treated as sets
/// (duplicates count once). Conservative empty-set conventions: no
/// flagged users scores precision 0, no truth scores recall 0 — a
/// detector that flags nothing, or a window with nothing to find,
/// never reads as perfect. Shared by the offline [`PipelineReport`]
/// and the serving detection probe.
pub fn precision_recall(flagged: &[u32], truth: &[u32]) -> (f64, f64) {
    let mut flagged: Vec<u32> = flagged.to_vec();
    flagged.sort_unstable();
    flagged.dedup();
    debug_assert!(truth.windows(2).all(|w| w[0] < w[1]), "truth must ascend");
    let true_pos = flagged
        .iter()
        .filter(|u| truth.binary_search(u).is_ok())
        .count();
    let precision = if flagged.is_empty() {
        0.0
    } else {
        true_pos as f64 / flagged.len() as f64
    };
    let recall = if truth.is_empty() {
        0.0
    } else {
        true_pos as f64 / truth.len() as f64
    };
    (precision, recall)
}

/// The pipeline runner.
#[derive(Clone, Debug)]
pub struct FraudPipeline {
    cfg: PipelineConfig,
    host: CpuConfig,
}

impl FraudPipeline {
    /// Pipeline with the given configuration on the paper's workstation.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            host: CpuConfig::xeon_w2133(),
        }
    }

    /// Runs the pipeline over `stream` with a pluggable LP stage: any
    /// [`Engine`] — GLP, a baseline, or the in-house cluster simulation —
    /// driven under `opts` (the iteration cap is overridden by
    /// [`PipelineConfig::lp_iterations`], everything else passes through).
    ///
    /// An engine fault aborts the window cleanly — no partial
    /// [`PipelineReport`] is produced. Callers that need the window scored
    /// despite faults wrap the engine in
    /// [`ResilientEngine`](glp_core::engine::ResilientEngine).
    pub fn run(
        &self,
        stream: &TxStream,
        engine: &mut dyn Engine,
        opts: &RunOptions,
    ) -> Result<PipelineReport, EngineError> {
        // Stage 1: window graph construction (two streaming passes over
        // the window's transactions plus the CSR sort).
        let window = WindowWorkload::build(stream, self.cfg.window_days);
        let tx_count = stream
            .window(
                stream.config.days.saturating_sub(self.cfg.window_days),
                stream.config.days,
            )
            .count() as u64;
        let e = window.graph.num_edges();
        let construction_work = CpuCounters {
            instructions: 40 * tx_count + 60 * e,
            random_accesses: 2 * tx_count,
            seq_bytes: 32 * tx_count + 12 * e,
        };
        let construction = self.host.seconds(&construction_work, self.host.cores);

        // Stage 2: weighted classic LP clusters the window graph.
        let seeds = window.seeds(stream);
        let mut prog = WeightedLp::from_graph(&window.graph, self.cfg.lp_iterations)
            .with_retention(self.cfg.retention);
        let lp_opts = RunOptions {
            max_iterations: self.cfg.lp_iterations,
            ..opts.clone()
        };
        let lp_report = engine.run(&window.graph, &mut prog, &lp_opts)?;

        // Stage 3: cluster extraction + scoring.
        let (flagged, scoring_work) = self.score_clusters(&window, &prog, &seeds);
        let scoring = self.host.seconds(&scoring_work, self.host.cores);

        // Quality against the injected rings.
        let vertex_user: HashMap<VertexId, u32> =
            window.user_vertex.iter().map(|(&u, &v)| (v, u)).collect();
        let flagged_users: Vec<u32> = flagged
            .iter()
            .flat_map(|c| c.users.iter().filter_map(|v| vertex_user.get(v).copied()))
            .collect();
        let (precision, recall) = precision_recall(&flagged_users, &stream.fraudulent_users());

        Ok(PipelineReport {
            window_days: self.cfg.window_days,
            graph_vertices: window.graph.num_vertices(),
            graph_edges: e,
            num_seeds: seeds.len(),
            stages: StageSeconds {
                construction,
                lp: lp_report.modeled_seconds,
                scoring,
            },
            flagged,
            precision,
            recall,
            lp_report,
        })
    }

    /// Scores the clusters of an already-run LP program over `window` —
    /// the reusable stage-3 entry point. The serving path reclusters
    /// out-of-band on a window snapshot and needs scoring without
    /// re-running construction or LP (see `score_clusters` for the
    /// scoring model).
    pub fn score(
        &self,
        window: &WindowWorkload,
        prog: &WeightedLp,
        seeds: &[VertexId],
    ) -> Vec<FlaggedCluster> {
        self.score_clusters(window, prog, seeds).0
    }

    /// Clusters the *user side* by LP label (synchronous LP on bipartite
    /// graphs oscillates labels between the sides, so user and item labels
    /// never unify; projecting from one side is the standard remedy), then
    /// attaches each item to the cluster that dominates its incoming
    /// weight. Clusters containing black-listed seeds are scored on:
    ///
    /// * **cohesion** — share of the members' purchase weight landing on
    ///   the cluster's own items;
    /// * **multiplicity** — average repeat-purchase weight of internal
    ///   edges (wash trades repeat; honest purchases rarely do);
    /// * **seed share** — fraction of members already black-listed.
    fn score_clusters(
        &self,
        window: &WindowWorkload,
        prog: &WeightedLp,
        seeds: &[VertexId],
    ) -> (Vec<FlaggedCluster>, CpuCounters) {
        let labels = prog.labels();
        let g = &window.graph;
        let mut user_clusters: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for v in 0..window.num_user_vertices as VertexId {
            user_clusters.entry(labels[v as usize]).or_default().push(v);
        }
        let mut work = CpuCounters {
            instructions: 6 * labels.len() as u64,
            seq_bytes: 4 * labels.len() as u64,
            ..Default::default()
        };
        // Total incoming weight per item (for dominance tests).
        let item_total: HashMap<VertexId, f64> = (window.num_user_vertices..g.num_vertices())
            .map(|i| {
                let i = i as VertexId;
                let w: f64 = g
                    .incoming()
                    .neighbor_weights(i)
                    .map(|ws| ws.iter().map(|&x| f64::from(x)).sum())
                    .unwrap_or(0.0);
                (i, w)
            })
            .collect();
        work.random_accesses += item_total.len() as u64;

        let mut flagged = Vec::new();
        for (label, users) in user_clusters {
            if users.len() < self.cfg.min_cluster_size {
                continue;
            }
            let seed_count = users
                .iter()
                .filter(|v| seeds.binary_search(v).is_ok())
                .count();
            work.instructions += 8 * users.len() as u64;
            if seed_count < self.cfg.min_seeds {
                continue; // no known-bad members: not suspicious
            }
            // Weight this cluster sends to each item.
            let mut to_item: HashMap<VertexId, f64> = HashMap::new();
            let mut total_weight = 0.0f64;
            let mut internal_pairs = 0u64;
            for &u in &users {
                let ws = g.incoming().neighbor_weights(u).unwrap_or(&[]);
                for (k, &i) in g.neighbors(u).iter().enumerate() {
                    let w = f64::from(ws.get(k).copied().unwrap_or(1.0));
                    *to_item.entry(i).or_default() += w;
                    total_weight += w;
                    internal_pairs += 1;
                }
                work.random_accesses += u64::from(g.degree(u));
            }
            // Items dominated by this cluster belong to it.
            let items: Vec<VertexId> = to_item
                .iter()
                .filter(|(i, &w)| w >= 0.5 * item_total.get(*i).copied().unwrap_or(w))
                .map(|(&i, _)| i)
                .collect();
            let internal_weight: f64 = items
                .iter()
                .map(|i| to_item.get(i).copied().unwrap_or(0.0))
                .sum();
            work.instructions += 6 * to_item.len() as u64;
            let cohesion = if total_weight == 0.0 {
                0.0
            } else {
                internal_weight / total_weight
            };
            let avg_multiplicity = if internal_pairs == 0 {
                0.0
            } else {
                total_weight / internal_pairs as f64
            };
            let seed_share = seed_count as f64 / users.len() as f64;
            let score = 0.4 * cohesion
                + 0.3 * (avg_multiplicity / 8.0).min(1.0)
                + 0.3 * (seed_share / 0.1).min(1.0);
            if score >= self.cfg.suspicion_threshold {
                let mut items = items;
                items.sort_unstable();
                flagged.push(FlaggedCluster {
                    label,
                    users: users.clone(),
                    items,
                    score,
                });
            }
        }
        flagged.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        (flagged, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TxConfig;
    use glp_core::engine::GpuEngine;

    fn stream() -> TxStream {
        TxStream::generate(&TxConfig {
            num_users: 2_000,
            num_items: 800,
            days: 40,
            tx_per_day: 1_000,
            num_rings: 5,
            ring_size: 15,
            ring_tx_per_day: 50,
            blacklist_fraction: 0.2,
            ..Default::default()
        })
    }

    #[test]
    fn pipeline_finds_rings_with_good_recall() {
        let s = stream();
        let pipe = FraudPipeline::new(PipelineConfig {
            window_days: 30,
            ..Default::default()
        });
        let report = pipe
            .run(&s, &mut GpuEngine::titan_v(), &RunOptions::default())
            .unwrap();
        assert!(!report.flagged.is_empty(), "rings should be flagged");
        assert!(
            report.recall > 0.6,
            "recall {} (flagged {} clusters)",
            report.recall,
            report.flagged.len()
        );
        assert!(report.precision > 0.6, "precision {}", report.precision);
    }

    #[test]
    fn precision_recall_conventions() {
        let truth = vec![2, 5, 9];
        assert_eq!(precision_recall(&[], &truth), (0.0, 0.0));
        assert_eq!(precision_recall(&[2, 5, 9], &truth), (1.0, 1.0));
        let (p, r) = precision_recall(&[2, 3], &truth);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
        // Sets, not lists: duplicates count once.
        assert_eq!(precision_recall(&[2, 2, 2], &truth), (1.0, 1.0 / 3.0));
        // Nothing to find: recall stays 0, not 1.
        assert_eq!(precision_recall(&[1], &[]), (0.0, 0.0));
    }

    #[test]
    fn stage_breakdown_sums() {
        let s = stream();
        let pipe = FraudPipeline::new(PipelineConfig::default());
        let report = pipe
            .run(&s, &mut GpuEngine::titan_v(), &RunOptions::default())
            .unwrap();
        let st = report.stages;
        assert!(st.construction > 0.0 && st.lp > 0.0 && st.scoring > 0.0);
        assert!((st.total() - (st.construction + st.lp + st.scoring)).abs() < 1e-15);
        assert!(st.lp_fraction() > 0.0 && st.lp_fraction() < 1.0);
    }

    #[test]
    fn inhouse_lp_dominates_pipeline_like_the_paper() {
        // With the old in-house distributed LP, the LP stage should be the
        // large majority of pipeline time (the paper's 75% observation).
        let s = stream();
        let pipe = FraudPipeline::new(PipelineConfig::default());
        let report = pipe
            .run(&s, &mut crate::InHouseLp::taobao(), &RunOptions::default())
            .unwrap();
        assert!(
            report.stages.lp_fraction() > 0.6,
            "in-house LP share {}",
            report.stages.lp_fraction()
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::transactions::TxConfig;
    use glp_core::engine::GpuEngine;
    use glp_core::LpProgram;

    #[test]
    #[ignore]
    fn debug_pipeline() {
        let s = TxStream::generate(&TxConfig {
            num_users: 2_000,
            num_items: 800,
            days: 40,
            tx_per_day: 1_000,
            num_rings: 5,
            ring_size: 15,
            ring_tx_per_day: 50,
            blacklist_fraction: 0.2,
            ..Default::default()
        });
        let pipe = FraudPipeline::new(PipelineConfig {
            window_days: 30,
            ..Default::default()
        });
        let window = WindowWorkload::build(&s, 30);
        let seeds = window.seeds(&s);
        let mut prog = WeightedLp::from_graph(&window.graph, 20).with_retention(3.0);
        GpuEngine::titan_v()
            .run(&window.graph, &mut prog, &RunOptions::default())
            .unwrap();
        let (flagged, _) = pipe.score_clusters(&window, &prog, &seeds);
        eprintln!("seeds {} flagged {}", seeds.len(), flagged.len());
        for f in flagged.iter().take(10) {
            eprintln!(
                "cluster label {} users {} items {} score {:.2}",
                f.label,
                f.users.len(),
                f.items.len(),
                f.score
            );
        }
        use std::collections::HashMap;
        let mut m: HashMap<u32, usize> = HashMap::new();
        for &l in prog.labels() {
            *m.entry(l).or_default() += 1;
        }
        let mut sizes: Vec<usize> = m.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        eprintln!(
            "clusters {} sizes(top10) {:?}",
            sizes.len(),
            &sizes[..sizes.len().min(10)]
        );
    }
}
