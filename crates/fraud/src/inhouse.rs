//! The simulated in-house distributed LP solution (§5.4's comparison
//! target).
//!
//! Production graph systems at this scale run BSP label propagation over
//! hash-partitioned vertices: each superstep every machine aggregates its
//! own vertices' neighborhoods, then ships fresh labels of boundary
//! vertices to the machines that need them. With 32 machines and modulo
//! partitioning, ~31/32 of edges cross machines — the network exchange and
//! per-superstep coordination are what a single GPU with HBM never pays,
//! and why GLP wins 8.2x despite a fraction of the cores.
//!
//! The simulation computes real labels (same tie rule as every other
//! engine) and charges the cluster cost model per superstep.

use glp_core::engine::{BestLabel, Decision, Engine, EngineError, RunOptions};
use glp_core::{LpProgram, LpRunReport};
use glp_gpusim::host::{ClusterConfig, CpuCounters};
use glp_graph::{Graph, Label, VertexId};
use glp_sketch::{BoundedHashTable, InsertOutcome};
use std::time::Instant;

/// The distributed baseline. Always dense: the production system has no
/// frontier (every superstep rescans all vertices), so the
/// [`RunOptions::frontier`] knob is ignored.
#[derive(Clone, Debug)]
pub struct InHouseLp {
    cluster: ClusterConfig,
}

impl InHouseLp {
    /// On the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self { cluster }
    }

    /// The paper's deployment: 32 machines × 4 Xeon Platinum 8168.
    pub fn taobao() -> Self {
        Self::new(ClusterConfig::taobao_inhouse())
    }

    /// The paper's deployment with its *fixed* per-superstep latency
    /// scaled down by `workload_ratio` — the factor by which the benchmark
    /// workload is smaller than production. Proportional costs (compute,
    /// network, shuffle) scale with the graph automatically; the fixed
    /// barrier latency must be scaled explicitly or it would dominate any
    /// laptop-sized run and make speedups meaningless.
    pub fn taobao_scaled(workload_ratio: f64) -> Self {
        assert!(workload_ratio >= 1.0, "ratio is production/bench >= 1");
        let mut cluster = ClusterConfig::taobao_inhouse();
        cluster.superstep_latency_s /= workload_ratio;
        Self::new(cluster)
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }
}

impl Engine for InHouseLp {
    fn name(&self) -> &'static str {
        "InHouse"
    }

    /// Runs `prog` on `g`, modeling a BSP superstep per LP iteration.
    /// The simulated cluster itself never faults (machine failures are out
    /// of this model's scope), so the only `Err` source is the shared
    /// [`Engine`] contract.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let csr = g.incoming();
        let machines = self.cluster.machines as usize;
        let mut report = LpRunReport::default();
        let mut modeled = 0.0f64;

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        let max_deg = (0..n as VertexId)
            .map(|v| csr.degree(v) as usize)
            .max()
            .unwrap_or(0);
        let mut ht = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
        let scheduled = (0..n as VertexId).filter(|&v| csr.degree(v) > 0).count() as u64;

        for iteration in 0..opts.max_iterations {
            prog.begin_iteration(iteration);
            for (v, slot) in spoken.iter_mut().enumerate() {
                *slot = prog.pick_label(v as VertexId);
            }

            // Per-machine compute + cross-machine message volume.
            let mut machine_work = vec![CpuCounters::default(); machines];
            let mut crossing_edges = 0u64;
            for v in 0..n as VertexId {
                let owner = (v as usize) % machines;
                let nbrs = csr.neighbors(v);
                let off = csr.offset(v);
                ht.clear();
                for (j, &u) in nbrs.iter().enumerate() {
                    if (u as usize) % machines != owner {
                        crossing_edges += 1;
                    }
                    let contrib = prog.load_neighbor(v, u, off + j as u64, spoken[u as usize]);
                    match ht.insert_add(u64::from(contrib.label), contrib.weight) {
                        InsertOutcome::Added { .. } => {}
                        InsertOutcome::Full { .. } => unreachable!("scratch sized to 2x degree"),
                    }
                }
                let w = &mut machine_work[owner];
                w.random_accesses += nbrs.len() as u64;
                w.instructions += 8 * nbrs.len() as u64 + 20;
                w.seq_bytes += 4 * nbrs.len() as u64;
                let mut best: Option<BestLabel> = None;
                let current = spoken[v as usize];
                for (l, freq) in ht.iter() {
                    let label = l as Label;
                    BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
                }
                w.instructions += 3 * ht.occupied() as u64;
                decisions[v as usize] = BestLabel::into_decision(best);
            }

            // Superstep cost: the slowest machine's compute plus the label
            // exchange (8 B per crossing edge, spread over the machines).
            let slowest = machine_work
                .iter()
                .copied()
                .max_by(|a, b| {
                    let ca = self.cluster.machine_cpu.seconds(a, u32::MAX);
                    let cb = self.cluster.machine_cpu.seconds(b, u32::MAX);
                    ca.partial_cmp(&cb).expect("finite times")
                })
                .unwrap_or_default();
            let bytes_per_machine = crossing_edges * self.cluster.message_bytes / machines as u64;
            let messages_per_machine = crossing_edges / machines as u64;
            modeled +=
                self.cluster
                    .superstep_seconds(&slowest, bytes_per_machine, messages_per_machine);

            let mut changed = 0u64;
            for (v, &d) in decisions.iter().enumerate() {
                if prog.update_vertex(v as VertexId, d) {
                    changed += 1;
                }
            }
            prog.end_iteration(iteration);
            report.changed_per_iteration.push(changed);
            report.active_per_iteration.push(scheduled);
            report.iterations = iteration + 1;
            if prog.finished(iteration, changed) {
                break;
            }
        }

        report.modeled_seconds = modeled;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_core::engine::GpuEngine;
    use glp_core::ClassicLp;

    fn opts() -> RunOptions {
        RunOptions::default()
    }
    use glp_graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};

    #[test]
    fn inhouse_matches_glp_labels() {
        let g = caveman(7, 6);
        let mut reference = ClassicLp::new(g.num_vertices());
        GpuEngine::titan_v()
            .run(&g, &mut reference, &opts())
            .unwrap();
        let mut p = ClassicLp::new(g.num_vertices());
        InHouseLp::taobao().run(&g, &mut p, &opts()).unwrap();
        assert_eq!(p.labels(), reference.labels());
    }

    #[test]
    fn superstep_latency_dominates_small_graphs() {
        let g = caveman(7, 6);
        let mut p = ClassicLp::new(g.num_vertices());
        let r = InHouseLp::taobao().run(&g, &mut p, &opts()).unwrap();
        let floor = f64::from(r.iterations) * ClusterConfig::taobao_inhouse().superstep_latency_s;
        assert!(r.modeled_seconds >= floor);
        assert!(
            r.modeled_seconds < floor * 1.5,
            "tiny graph should be latency-bound"
        );
    }

    #[test]
    fn glp_beats_inhouse_modeled_time() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 10_000,
            avg_degree: 12.0,
            ..Default::default()
        });
        let mut p1 = ClassicLp::new(g.num_vertices());
        let glp = GpuEngine::titan_v().run(&g, &mut p1, &opts()).unwrap();
        let mut p2 = ClassicLp::new(g.num_vertices());
        let inhouse = InHouseLp::taobao().run(&g, &mut p2, &opts()).unwrap();
        assert_eq!(p1.labels(), p2.labels());
        let speedup = inhouse.modeled_seconds / glp.modeled_seconds;
        assert!(speedup > 2.0, "speedup {speedup}");
    }
}
