//! # glp-fraud — the TaoBao fraud-detection pipeline (paper §1, §5.4)
//!
//! The paper's motivating deployment: sliding windows over recent
//! transactions form user–product graphs; seeded label propagation from a
//! blacklist carves out suspicious clusters; downstream models score them.
//! LP is 75% of the pipeline's runtime, which is what GLP attacks.
//!
//! This crate builds the whole pipeline against synthetic data:
//!
//! * [`transactions`] — a seeded e-commerce transaction generator with
//!   injected fraud rings (the ground truth) and a partial blacklist (the
//!   seeds).
//! * [`adversary`] — an adversarial generator on top of the regional
//!   stream: rings that rotate members per day, camouflage purchases,
//!   timed burst floods, and blacklist label noise, each with per-day
//!   ground truth.
//! * [`window`] — sliding-window graph construction matching Table 4's
//!   V/E growth shape at a configurable scale.
//! * [`pipeline`] — the end-to-end pipeline with per-stage timing and
//!   precision/recall against the injected rings.
//! * [`inhouse`] — the simulated 32-machine in-house distributed LP
//!   solution Figure 7 compares against.
//! * [`incremental`] — day-by-day sliding-window maintenance, the way the
//!   production pipeline actually advances windows.
//! * [`checkpoint`] — versioned, CRC-checked on-disk snapshots of a
//!   window (plus serving clocks), so a restarted service resumes from
//!   its last checkpoint instead of an empty window.

pub mod adversary;
pub mod checkpoint;
pub mod incremental;
pub mod inhouse;
pub mod pipeline;
pub mod transactions;
pub mod window;

pub use adversary::{AdversarialStream, AdversaryConfig};
pub use checkpoint::{CheckpointError, WindowCheckpoint, CHECKPOINT_VERSION};
pub use incremental::{IncrementalWindow, WindowDelta};
pub use inhouse::InHouseLp;
pub use pipeline::{
    precision_recall, FlaggedCluster, FraudPipeline, PipelineConfig, PipelineReport,
};
pub use transactions::{RegionalStream, RegionalTxConfig, Transaction, TxConfig, TxStream};
pub use window::{WindowSpec, WindowWorkload};
