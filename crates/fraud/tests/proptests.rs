//! Property-based invariants of the fraud substrate: window algebra and
//! incremental-maintenance equivalence for arbitrary stream shapes.

use glp_fraud::{IncrementalWindow, TxConfig, TxStream, WindowWorkload};
use proptest::prelude::*;

fn arbitrary_stream() -> impl Strategy<Value = TxStream> {
    (
        50u32..400,  // users
        20u32..150,  // items
        3u32..15,    // days
        20u32..200,  // tx/day
        0u32..3,     // rings
        any::<u8>(), // seed
    )
        .prop_map(|(users, items, days, tx, rings, seed)| {
            TxStream::generate(&TxConfig {
                num_users: users,
                num_items: items,
                days,
                tx_per_day: tx,
                num_rings: rings,
                ring_size: (users / 8).clamp(2, 10),
                ring_tx_per_day: 10,
                blacklist_fraction: 0.5,
                seed: u64::from(seed),
                ..Default::default()
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Window graphs: always bipartite, weight total = transaction count.
    #[test]
    fn window_weight_equals_transactions(stream in arbitrary_stream(), days in 1u32..12) {
        let w = WindowWorkload::build(&stream, days);
        let start = stream.config.days.saturating_sub(days);
        let tx = stream.window(start, stream.config.days).count() as f64;
        // Symmetrized: each transaction contributes weight 1 in each
        // direction.
        let total: f64 = (0..w.graph.num_vertices() as u32)
            .filter_map(|v| w.graph.incoming().neighbor_weights(v))
            .flat_map(|ws| ws.iter().map(|&x| f64::from(x)))
            .sum();
        prop_assert_eq!(total, 2.0 * tx);
    }

    /// Incremental maintenance equals from-scratch builds after any number
    /// of advances.
    #[test]
    fn incremental_equals_scratch(stream in arbitrary_stream(), days in 1u32..6, advances in 0u32..8) {
        let start_end = days.min(stream.config.days);
        let mut inc = IncrementalWindow::new(&stream, days, start_end);
        for _ in 0..advances.min(stream.config.days.saturating_sub(start_end)) {
            inc.advance(&stream);
        }
        let reference = IncrementalWindow::new(&stream, days, inc.end());
        prop_assert_eq!(inc.num_pairs(), reference.num_pairs());
        let a = inc.graph();
        let b = reference.graph();
        prop_assert_eq!(a.incoming().offsets(), b.incoming().offsets());
        prop_assert_eq!(a.incoming().targets(), b.incoming().targets());
        prop_assert_eq!(a.incoming().weights(), b.incoming().weights());
    }

    /// Longer windows never shrink the graph.
    #[test]
    fn window_monotone_in_days(stream in arbitrary_stream()) {
        let mut prev_edges = 0u64;
        let mut prev_vertices = 0usize;
        for days in 1..=stream.config.days {
            let w = WindowWorkload::build(&stream, days);
            prop_assert!(w.graph.num_edges() >= prev_edges);
            prop_assert!(w.graph.num_vertices() >= prev_vertices);
            prev_edges = w.graph.num_edges();
            prev_vertices = w.graph.num_vertices();
        }
    }

    /// Seeds are always user vertices present in the window.
    #[test]
    fn seeds_are_valid_users(stream in arbitrary_stream(), days in 1u32..10) {
        let w = WindowWorkload::build(&stream, days);
        for s in w.seeds(&stream) {
            prop_assert!(w.is_user(s));
            prop_assert!((s as usize) < w.graph.num_vertices());
        }
    }
}
