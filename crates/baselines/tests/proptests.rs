//! Property-based cross-engine agreement: for arbitrary graphs, every
//! baseline must produce exactly the GLP engine's labels (the guarantee
//! the benchmark comparisons rest on), across multiple variants.

use glp_baselines::{CpuLp, CpuLpConfig, GHashLp, GSortLp};
use glp_core::engine::{Engine, GpuEngine, RunOptions};
use glp_core::{ClassicLp, FrontierMode, Llp, LpProgram};
use glp_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (
        4usize..48,
        prop::collection::vec((0u32..48, 0u32..48), 1..250),
    )
        .prop_map(|(n, es)| {
            let mut b = GraphBuilder::new(n);
            for (s, d) in es {
                b.add_edge(s % n as u32, d % n as u32);
            }
            b.symmetrize(true).dedup(true);
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_baselines_agree_on_classic(g in arbitrary_graph()) {
        let n = g.num_vertices();
        let opts = RunOptions::default();
        let dense = RunOptions::default().with_frontier(FrontierMode::Dense);
        let mut reference = ClassicLp::with_max_iterations(n, 8);
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();
        let want = reference.labels();

        let mut p = ClassicLp::with_max_iterations(n, 8);
        CpuLp::omp(CpuLpConfig::default()).run(&g, &mut p, &dense).unwrap();
        prop_assert_eq!(p.labels(), want);

        let mut p = ClassicLp::with_max_iterations(n, 8);
        CpuLp::ligra(CpuLpConfig::default()).run(&g, &mut p, &opts).unwrap();
        prop_assert_eq!(p.labels(), want);

        let mut p = ClassicLp::with_max_iterations(n, 8);
        CpuLp::tigergraph(CpuLpConfig::default()).run(&g, &mut p, &dense).unwrap();
        prop_assert_eq!(p.labels(), want);

        let mut p = ClassicLp::with_max_iterations(n, 8);
        GSortLp::titan_v().run(&g, &mut p, &opts).unwrap();
        prop_assert_eq!(p.labels(), want);

        let mut p = ClassicLp::with_max_iterations(n, 8);
        GHashLp::titan_v().run(&g, &mut p, &opts).unwrap();
        prop_assert_eq!(p.labels(), want);
    }

    #[test]
    fn gsort_and_ghash_agree_on_llp(g in arbitrary_graph(), gamma in 0.0f64..8.0) {
        let n = g.num_vertices();
        let opts = RunOptions::default();
        let mut reference = Llp::with_max_iterations(n, gamma, 6);
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();
        let mut p = Llp::with_max_iterations(n, gamma, 6);
        GSortLp::titan_v().run(&g, &mut p, &opts).unwrap();
        prop_assert_eq!(p.labels(), reference.labels());
        let mut p = Llp::with_max_iterations(n, gamma, 6);
        GHashLp::titan_v().run(&g, &mut p, &opts).unwrap();
        prop_assert_eq!(p.labels(), reference.labels());
    }

    /// Modeled times are always positive and finite, whatever the graph.
    #[test]
    fn modeled_times_sane(g in arbitrary_graph()) {
        let n = g.num_vertices();
        let opts = RunOptions::default();
        for report in [
            CpuLp::omp(CpuLpConfig::default()).run(&g, &mut ClassicLp::with_max_iterations(n, 3), &opts).unwrap(),
            GSortLp::titan_v().run(&g, &mut ClassicLp::with_max_iterations(n, 3), &opts).unwrap(),
            GHashLp::titan_v().run(&g, &mut ClassicLp::with_max_iterations(n, 3), &opts).unwrap(),
        ] {
            prop_assert!(report.modeled_seconds.is_finite());
            prop_assert!(report.modeled_seconds > 0.0);
            prop_assert!(report.iterations >= 1);
        }
    }
}
