//! G-Sort (Kozawa et al., CIKM'17): the segmented-sort GPU baseline.
//!
//! Per iteration (§2.2):
//! 1. a **gather kernel** loads each edge's neighbor label into a global
//!    `NL` array of size |E| — the "additional global memory equivalent to
//!    the graph size" §5.2 notes;
//! 2. a **segmented sort** orders each vertex's slice of `NL`. Small
//!    segments sort inside a thread block in one read+write pass (why
//!    G-Sort does well on small-neighborhood graphs); large segments
//!    degenerate to multi-pass radix sort over global memory (§4.1:
//!    "segmented sort degenerates to plain parallel sort for high degree
//!    vertices");
//! 3. a **count kernel** scans the sorted runs and extracts the best label.
//!
//! The kernels really execute (the run-scan produces exact winners under
//! the workspace tie rule); the cost model charges the extra traffic that
//! makes this approach lose to GLP.

use glp_core::engine::{BestLabel, Decision, Direction, Engine, EngineError, RunOptions};
use glp_core::{LpProgram, LpRunReport};
use glp_gpusim::{Device, KernelCtx, WARP_SIZE};
use glp_graph::{Graph, Label, VertexId};
use glp_trace::{Category, Clock, KernelProfile};
use std::time::Instant;

/// Segments at most this long sort in one block-local pass; longer ones
/// pay the multi-pass radix path. CUB's block-radix path handles a few
/// hundred keys before spilling to the global multi-pass sort — the
/// degeneration §4.1 describes ("segmented sort degenerates to plain
/// parallel sort for high degree vertices").
const BLOCK_SORT_MAX: usize = 256;

/// Radix passes for large segments (32-bit labels, 8-bit digits).
const RADIX_PASSES: u64 = 4;

const NL_BASE: u64 = 0x8_0000_0000;
const LABELS: u64 = 0x1_0000_0000;
const TARGETS: u64 = 0x2_0000_0000;
const DECISIONS: u64 = 0x4_0000_0000;
const LABEL_STATE: u64 = 0x7_0000_0000;

/// The G-Sort engine. Always dense: the original has no frontier, so the
/// [`RunOptions::frontier`] knob is ignored — `Push`, `Pull`, and `Auto`
/// all run the dense schedule, and every report iteration records
/// [`Direction::Dense`](glp_core::Direction) (every vertex re-sorts every
/// iteration — part of what GLP beats).
#[derive(Debug)]
pub struct GSortLp {
    device: Device,
}

impl GSortLp {
    /// G-Sort on the given device.
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// G-Sort on a modeled Titan V.
    pub fn titan_v() -> Self {
        Self::new(Device::titan_v())
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Engine for GSortLp {
    fn name(&self) -> &'static str {
        "G-Sort"
    }

    /// Runs `prog` on `g`. Faults on the modeled device (only possible
    /// with `glp-gpusim/fault-injection` active) surface as [`EngineError`];
    /// device memory is released either way.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let csr = g.incoming();
        let e = csr.num_edges();
        let shards = opts.resolve_shards();

        // G-Sort needs graph + labels + the |E|-sized NL and weight arrays.
        let footprint = g.size_bytes() + (n as u64) * 20 + e * 12;
        self.device.set_tracer(opts.tracer.clone());
        let log_mark = self.device.kernel_log().len();
        let t0 = self.device.elapsed_seconds();
        let trace_mark = opts.tracer.as_ref().map(|t| {
            let mark = t.open_depth();
            t.begin(Category::Run, self.name(), Clock::Modeled, t0);
            mark
        });
        if let Err(e) = self.device.upload(footprint) {
            if let (Some(t), Some(m)) = (&opts.tracer, trace_mark) {
                t.fail_open_to(m, self.device.elapsed_seconds());
            }
            return Err(e.into());
        }
        let mut transfer_s = self.device.elapsed_seconds() - t0;

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        let mut report = LpRunReport::default();
        let vertex_ranges: Vec<(usize, usize)> = {
            let per = n.div_ceil(shards).max(1);
            (0..shards)
                .map(|i| ((i * per).min(n), ((i + 1) * per).min(n)))
                .collect()
        };

        let scheduled = (0..n as VertexId).filter(|&v| csr.degree(v) > 0).count() as u64;
        let device = &mut self.device;
        let outcome = (|| -> Result<(), EngineError> {
            for iteration in 0..opts.max_iterations {
                if let Some(t) = &opts.tracer {
                    t.begin_arg(
                        Category::Iteration,
                        "iteration",
                        Clock::Modeled,
                        device.elapsed_seconds(),
                        u64::from(iteration),
                    );
                }
                prog.begin_iteration(iteration);
                for (v, slot) in spoken.iter_mut().enumerate() {
                    *slot = prog.pick_label(v as VertexId);
                }
                device.launch("pick_label", |ctx| {
                    ctx.global_read_seq(LABEL_STATE, n as u64, 4);
                    ctx.global_write_seq(LABELS, n as u64, 4);
                    ctx.warps_launched((n as u64).div_ceil(32));
                    ctx.alu(2 * (n as u64).div_ceil(32));
                })?;

                // 1. Gather kernel: NL[e] = L[target[e]] for every edge.
                let spoken_ref: &[Label] = &spoken;
                device.launch_parallel("gsort_gather", shards, |i, ctx: &mut KernelCtx| {
                    let (lo, hi) = vertex_ranges[i];
                    let mut addrs = [0u64; WARP_SIZE];
                    for v in lo..hi {
                        let nbrs = csr.neighbors(v as VertexId);
                        let off = csr.offset(v as VertexId);
                        for (c, chunk) in nbrs.chunks(WARP_SIZE).enumerate() {
                            ctx.global_read_seq(
                                TARGETS + (off + (c * WARP_SIZE) as u64) * 4,
                                chunk.len() as u64,
                                4,
                            );
                            for (k, &u) in chunk.iter().enumerate() {
                                addrs[k] = LABELS + u64::from(u) * 4;
                            }
                            ctx.global_read(&addrs[..chunk.len()]);
                            ctx.global_write_seq(
                                NL_BASE + (off + (c * WARP_SIZE) as u64) * 4,
                                chunk.len() as u64,
                                4,
                            );
                        }
                        let _ = spoken_ref; // labels actually read below
                    }
                    ctx.warps_launched(
                        (csr.offset(hi as VertexId) - csr.offset(lo as VertexId)).div_ceil(32),
                    );
                })?;

                // 2+3. Segmented sort + run-scan count, per vertex.
                let prog_ref: &dyn LpProgram = prog;
                let outs = device.launch_parallel(
                    "gsort_sort_count",
                    shards,
                    |i, ctx: &mut KernelCtx| {
                        let (lo, hi) = vertex_ranges[i];
                        let mut out: Vec<(VertexId, Decision)> = Vec::with_capacity(hi - lo);
                        let mut scratch: Vec<(Label, f64)> = Vec::new();
                        for v in lo..hi {
                            let v = v as VertexId;
                            let nbrs = csr.neighbors(v);
                            if nbrs.is_empty() {
                                continue;
                            }
                            let off = csr.offset(v);
                            let deg = nbrs.len();
                            // Materialize this segment of NL with the user's
                            // per-edge contributions, then sort by label.
                            scratch.clear();
                            scratch.reserve(deg);
                            for (j, &u) in nbrs.iter().enumerate() {
                                let contrib = prog_ref.load_neighbor(
                                    v,
                                    u,
                                    off + j as u64,
                                    spoken_ref[u as usize],
                                );
                                scratch.push((contrib.label, contrib.weight));
                            }
                            scratch.sort_unstable_by_key(|&(l, _)| l);
                            // Sort cost: one block-local pass for small
                            // segments, RADIX_PASSES read+write sweeps of the
                            // segment for large ones.
                            if deg <= BLOCK_SORT_MAX {
                                // Block-local radix sort: one global read+write
                                // plus per-key rank/scatter work in shared
                                // memory (4 digit passes x ~3 ops).
                                ctx.global_read_seq(NL_BASE + off * 4, deg as u64, 4);
                                ctx.global_write_seq(NL_BASE + off * 4, deg as u64, 4);
                                ctx.shared_access_uniform((deg as u64) * RADIX_PASSES / 4);
                                ctx.alu((deg as u64) * 3 * RADIX_PASSES);
                            } else {
                                // Degenerated multi-pass global radix sort:
                                // every pass streams the segment through global
                                // memory both ways.
                                for _ in 0..RADIX_PASSES {
                                    ctx.global_read_seq(NL_BASE + off * 4, deg as u64, 4);
                                    ctx.global_write_seq(NL_BASE + off * 4, deg as u64, 4);
                                }
                                ctx.alu((deg as u64) * 4 * RADIX_PASSES);
                            }
                            // Count kernel: scan sorted runs.
                            ctx.global_read_seq(NL_BASE + off * 4, deg as u64, 4);
                            ctx.alu(deg as u64);
                            let mut best: Option<BestLabel> = None;
                            let current = spoken_ref[v as usize];
                            let mut r = 0usize;
                            while r < scratch.len() {
                                let label = scratch[r].0;
                                let mut freq = 0.0;
                                while r < scratch.len() && scratch[r].0 == label {
                                    freq += scratch[r].1;
                                    r += 1;
                                }
                                let score = prog_ref.label_score(v, label, freq);
                                BestLabel::offer(&mut best, label, score, current);
                            }
                            ctx.global_write_scattered(1);
                            out.push((v, BestLabel::into_decision(best)));
                        }
                        ctx.warps_launched((hi - lo) as u64);
                        out
                    },
                )?;

                // UpdateVertex.
                device.launch("update_vertex", |ctx| {
                    ctx.global_read_seq(DECISIONS, n as u64, 12);
                    ctx.global_write_seq(LABEL_STATE, n as u64, 4);
                    ctx.warps_launched((n as u64).div_ceil(32));
                    ctx.alu(2 * (n as u64).div_ceil(32));
                })?;
                decisions.iter_mut().for_each(|d| *d = None);
                for out in outs {
                    for (v, d) in out {
                        decisions[v as usize] = d;
                    }
                }
                let mut changed = 0u64;
                for (v, &d) in decisions.iter().enumerate() {
                    if prog.update_vertex(v as VertexId, d) {
                        changed += 1;
                    }
                }
                prog.end_iteration(iteration);
                report.changed_per_iteration.push(changed);
                report.active_per_iteration.push(scheduled);
                report.direction_per_iteration.push(Direction::Dense);
                report.iterations = iteration + 1;
                if let Some(t) = &opts.tracer {
                    t.end(device.elapsed_seconds());
                }
                if prog.finished(iteration, changed) {
                    break;
                }
            }
            Ok(())
        })();

        if outcome.is_ok() {
            let t1 = device.elapsed_seconds();
            device.download(n as u64 * 4);
            transfer_s += device.elapsed_seconds() - t1;
        }
        device.free(footprint);
        if let Err(e) = outcome {
            if let (Some(t), Some(m)) = (&opts.tracer, trace_mark) {
                t.fail_open_to(m, self.device.elapsed_seconds());
            }
            return Err(e);
        }
        if let Some(t) = &opts.tracer {
            t.end(self.device.elapsed_seconds());
        }

        report.modeled_seconds = self.device.elapsed_seconds() - t0;
        report.transfer_seconds = transfer_s;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        report.gpu_counters = *self.device.totals();
        let mut profile = KernelProfile::new();
        for rec in &self.device.kernel_log()[log_mark..] {
            profile.record(self.name(), rec.name, rec.seconds);
        }
        report.kernel_profile = profile;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_core::engine::GpuEngine;
    use glp_core::{ClassicLp, Llp};
    use glp_graph::gen::{community_powerlaw, star, CommunityPowerLawConfig};

    #[test]
    fn gsort_matches_glp_labels() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 1_500,
            avg_degree: 8.0,
            ..Default::default()
        });
        let opts = RunOptions::default();
        let mut reference = ClassicLp::new(g.num_vertices());
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();
        let mut p = ClassicLp::new(g.num_vertices());
        GSortLp::titan_v().run(&g, &mut p, &opts).unwrap();
        assert_eq!(p.labels(), reference.labels());
    }

    #[test]
    fn gsort_llp_matches_glp() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 800,
            avg_degree: 6.0,
            ..Default::default()
        });
        let opts = RunOptions::default();
        let mut reference = Llp::new(g.num_vertices(), 4.0);
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();
        let mut p = Llp::new(g.num_vertices(), 4.0);
        GSortLp::titan_v().run(&g, &mut p, &opts).unwrap();
        assert_eq!(p.labels(), reference.labels());
    }

    #[test]
    fn gsort_pays_radix_passes_on_hubs() {
        // The star hub (degree >> BLOCK_SORT_MAX) must move many more
        // sectors per edge than a low-degree graph of the same size.
        let hub = star(5_000);
        let mut p = ClassicLp::with_max_iterations(hub.num_vertices(), 1);
        let mut eng = GSortLp::titan_v();
        eng.run(&hub, &mut p, &RunOptions::default()).unwrap();
        let sectors = eng.device().totals().global_sectors();
        // gather(2 dirs) + 4x2 radix + scan over ~10k directed edges.
        assert!(
            sectors > 10 * (hub.num_edges() / 8),
            "sectors {sectors} for {} edges",
            hub.num_edges()
        );
    }
}
