//! # glp-baselines — the compared approaches of §5.1
//!
//! Reimplementations of every baseline the paper evaluates against,
//! preserving each one's defining cost structure so Figures 4–6 and
//! Table 3 can be regenerated:
//!
//! | name | paper description | here |
//! |------|-------------------|------|
//! | `TG`    | classic LP in TigerGraph on multicore CPUs | [`CpuLp::tigergraph`]: accumulator engine with materialized message passing and interpreter overhead |
//! | `Ligra` | LP on the Ligra shared-memory framework   | [`CpuLp::ligra`]: frontier-based — only vertices with a changed neighbor recompute (dense fallback for LLP/SLP) |
//! | `OMP`   | OpenMP parallel-for LP                     | [`CpuLp::omp`]: dense parallel-for with per-thread counting scratch |
//! | `G-Sort`| segmented-sort GPU LP (Kozawa et al.)      | [`GSortLp`]: gather all neighbor labels to a global `NL` array, segmented sort, run-scan |
//! | `G-Hash`| per-vertex global-memory hash tables       | [`GHashLp`]: the `Global` MFL strategy of the GLP engine |
//!
//! All baselines drive the same [`LpProgram`](glp_core::LpProgram) trait and
//! use the same deterministic tie-breaking, so their label outputs are
//! bit-identical to the GLP engines' — tested in this crate.

pub mod cpu;
pub mod ghash;
pub mod gsort;

pub use cpu::{CpuLp, CpuLpConfig};
pub use ghash::GHashLp;
pub use gsort::GSortLp;
