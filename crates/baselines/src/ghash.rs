//! G-Hash: the per-vertex global-memory hash-table GPU baseline.
//!
//! §5.3 describes the `global` strategy — "a hash table in the global
//! memory is employed for each vertex to count the neighborhood label
//! frequency with the help of GPU caching mechanism, which is used in
//! G-Hash [2]" — so G-Hash is exactly the GLP engine with
//! [`MflStrategy::Global`]: every insert is a scattered global atomic.
//! Unlike G-Sort it needs no |E|-sized auxiliary array and no sort passes,
//! which is why it catches up on the largest graphs (§5.2).

use glp_core::engine::{Engine, EngineError, GpuEngine, MflStrategy, RunOptions};
use glp_core::{FrontierMode, LpProgram, LpRunReport};
use glp_gpusim::Device;
use glp_graph::Graph;

/// The G-Hash engine: a thin preset over the GLP engine that pins the
/// global-memory strategy and dense scheduling (G-Hash recomputes every
/// vertex every iteration — exactly the waste §2.2 attributes to the
/// existing approaches). Every [`FrontierMode`] — `Push`, `Pull`, and
/// `Auto` included — is coerced to `Dense`, so its reports record only
/// [`Direction::Dense`](glp_core::Direction). All other [`RunOptions`]
/// fields pass through.
#[derive(Debug)]
pub struct GHashLp {
    inner: GpuEngine,
}

impl GHashLp {
    /// G-Hash on the given device.
    pub fn new(device: Device) -> Self {
        Self {
            inner: GpuEngine::new(device),
        }
    }

    /// G-Hash on a modeled Titan V.
    pub fn titan_v() -> Self {
        Self::new(Device::titan_v())
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        self.inner.device()
    }
}

impl Engine for GHashLp {
    fn name(&self) -> &'static str {
        "G-Hash"
    }

    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        let opts = RunOptions {
            strategy: MflStrategy::Global,
            frontier: FrontierMode::Dense,
            ..opts.clone()
        };
        let mut report = self.inner.run(g, prog, &opts)?;
        // The inner engine logged its launches under "GLP"; this wrapper
        // reports them under its own name.
        report.kernel_profile = report.kernel_profile.retagged(self.name());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsort::GSortLp;
    use glp_core::engine::GpuEngine;
    use glp_core::ClassicLp;
    use glp_graph::gen::{community_powerlaw, CommunityPowerLawConfig};

    #[test]
    fn ghash_matches_glp_labels() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 1_200,
            avg_degree: 9.0,
            ..Default::default()
        });
        let opts = RunOptions::default();
        let mut reference = ClassicLp::new(g.num_vertices());
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();
        let mut p = ClassicLp::new(g.num_vertices());
        GHashLp::titan_v().run(&g, &mut p, &opts).unwrap();
        assert_eq!(p.labels(), reference.labels());
    }

    #[test]
    fn glp_beats_both_gpu_baselines() {
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 8_000,
            avg_degree: 16.0,
            ..Default::default()
        });
        let opts = RunOptions::default();
        let mut p = ClassicLp::new(g.num_vertices());
        let glp = GpuEngine::titan_v().run(&g, &mut p, &opts).unwrap();
        let mut p = ClassicLp::new(g.num_vertices());
        let gsort = GSortLp::titan_v().run(&g, &mut p, &opts).unwrap();
        let mut p = ClassicLp::new(g.num_vertices());
        let ghash = GHashLp::titan_v().run(&g, &mut p, &opts).unwrap();
        assert!(
            glp.modeled_seconds < gsort.modeled_seconds,
            "GLP {} !< G-Sort {}",
            glp.modeled_seconds,
            gsort.modeled_seconds
        );
        assert!(
            glp.modeled_seconds < ghash.modeled_seconds,
            "GLP {} !< G-Hash {}",
            glp.modeled_seconds,
            ghash.modeled_seconds
        );
    }
}
