//! Multicore-CPU baselines: OMP, Ligra, TigerGraph.
//!
//! One engine with three presets — they share the per-vertex aggregation
//! (exact, same tie rule as the GPU kernels) and differ in the cost
//! structure the paper attributes to each system:
//!
//! * **OMP** — dense parallel-for every iteration.
//! * **Ligra** — frontier-based: after iteration `t`, only vertices with an
//!   in-neighbor that changed at `t` recompute at `t+1`.
//! * **TigerGraph** — accumulator-style: messages (src label per edge) are
//!   materialized to a buffer before aggregation, and every instruction
//!   pays an interpreter overhead factor; classic LP only, like the
//!   original (§5.1: "TG only supports the classic LP").
//!
//! Scheduling is controlled by [`RunOptions::frontier`] like everywhere
//! else: [`FrontierMode::Auto`](glp_core::FrontierMode) engages the
//! frontier for sparse-activation programs (dense fallback otherwise,
//! which matches how Ligra LP handles LLP/SLP); the benchmark harness
//! pins OMP and TigerGraph to `Dense` — their historical personalities.
//!
//! Modeled time comes from [`CpuConfig`]'s roofline so it is comparable
//! with the GPU engines' modeled time.

use glp_core::engine::{BestLabel, Decision, Direction, Engine, EngineError, RunOptions};
use glp_core::{FrontierMode, LpProgram, LpRunReport};
use glp_gpusim::host::{CpuConfig, CpuCounters};
use glp_graph::{Graph, Label, VertexId};
use glp_sketch::{BoundedHashTable, InsertOutcome};
use std::time::Instant;

/// Which baseline personality a [`CpuLp`] runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavor {
    Omp,
    Ligra,
    TigerGraph,
}

/// Configuration of a CPU baseline's *machine* (run-level knobs like the
/// iteration cap and frontier mode live in [`RunOptions`]).
#[derive(Clone, Debug)]
pub struct CpuLpConfig {
    /// The machine (defaults to the paper's Xeon W-2133).
    pub cpu: CpuConfig,
    /// Software threads (capped at physical cores by the cost model).
    pub threads: u32,
}

impl Default for CpuLpConfig {
    fn default() -> Self {
        Self {
            cpu: CpuConfig::xeon_w2133(),
            threads: 12,
        }
    }
}

/// A CPU label-propagation engine (OMP / Ligra / TigerGraph preset).
#[derive(Clone, Debug)]
pub struct CpuLp {
    cfg: CpuLpConfig,
    flavor: Flavor,
    /// Interpreter/runtime overhead multiplier on instruction and
    /// random-access counts (accumulator indirection).
    instr_factor: f64,
    /// Whether messages are materialized to memory before aggregation.
    materialize_messages: bool,
    /// Fixed per-iteration coordination overhead (fork/join for OMP/Ligra,
    /// query scheduling for TigerGraph).
    superstep_overhead_s: f64,
    totals: CpuCounters,
}

impl CpuLp {
    /// The OpenMP baseline.
    pub fn omp(cfg: CpuLpConfig) -> Self {
        Self {
            cfg,
            flavor: Flavor::Omp,
            instr_factor: 1.0,
            materialize_messages: false,
            superstep_overhead_s: 1e-4,
            totals: CpuCounters::default(),
        }
    }

    /// The Ligra baseline (frontier-based).
    pub fn ligra(cfg: CpuLpConfig) -> Self {
        Self {
            cfg,
            flavor: Flavor::Ligra,
            instr_factor: 1.05, // frontier bookkeeping
            materialize_messages: false,
            superstep_overhead_s: 1e-4,
            totals: CpuCounters::default(),
        }
    }

    /// The TigerGraph baseline. Classic LP only, like the original: callers
    /// must not hand it LLP/SLP programs (the benches don't).
    pub fn tigergraph(cfg: CpuLpConfig) -> Self {
        Self {
            cfg,
            flavor: Flavor::TigerGraph,
            instr_factor: 3.0, // interpreted accumulator engine
            materialize_messages: true,
            superstep_overhead_s: 2e-3, // query scheduling per superstep
            totals: CpuCounters::default(),
        }
    }

    /// Aggregate CPU work counters of the last run.
    pub fn totals(&self) -> &CpuCounters {
        &self.totals
    }
}

impl Engine for CpuLp {
    fn name(&self) -> &'static str {
        match self.flavor {
            Flavor::Omp => "OMP",
            Flavor::Ligra => "Ligra",
            // "TG", as the paper's figure legends abbreviate it.
            Flavor::TigerGraph => "TG",
        }
    }

    /// Runs `prog` on `g`; modeled seconds come from the CPU roofline.
    /// A shard thread that panics surfaces as
    /// [`EngineError::ShardPanicked`] instead of poisoning the caller.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let csr = g.incoming();
        let threads = self.cfg.threads.max(1);
        let shards = (threads as usize).clamp(1, 16);
        let use_frontier = opts.frontier.sparse(prog.sparse_activation());
        // Direction handling mirrors the asynchronous sequential engine:
        // forced `Pull` rebuilds by gathering over in-neighbors, everything
        // else scatters (`Auto` has no device cost model to price a
        // crossover against, so it keeps Ligra's native scatter).
        let pull = use_frontier && opts.frontier == FrontierMode::Pull;

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        // Frontier state: `active[v]` = must recompute v this iteration.
        let mut active = vec![true; n];
        let mut report = LpRunReport::default();
        let mut totals = CpuCounters::default();

        for iteration in 0..opts.max_iterations {
            prog.begin_iteration(iteration);
            // PickLabel: sequential streaming pass.
            for (v, slot) in spoken.iter_mut().enumerate() {
                *slot = prog.pick_label(v as VertexId);
            }
            totals.instructions += 2 * n as u64;
            totals.seq_bytes += 8 * n as u64;

            // Aggregate per active vertex, sharded across OS threads.
            let ranges: Vec<(usize, usize)> = {
                let per = n.div_ceil(shards).max(1);
                (0..shards)
                    .map(|i| ((i * per).min(n), ((i + 1) * per).min(n)))
                    .collect()
            };
            let prog_ref: &dyn LpProgram = prog;
            let active_ref: &[bool] = &active;
            let spoken_ref: &[Label] = &spoken;
            type ShardOutput = (Vec<(VertexId, Decision)>, CpuCounters);
            let shard_results: Result<Vec<ShardOutput>, EngineError> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = ranges
                        .iter()
                        .map(|&(lo, hi)| {
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut c = CpuCounters::default();
                                let max_deg = (lo..hi)
                                    .map(|v| csr.degree(v as VertexId) as usize)
                                    .max()
                                    .unwrap_or(0);
                                let mut ht = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
                                for v in lo..hi {
                                    let v = v as VertexId;
                                    if !active_ref[v as usize] || csr.degree(v) == 0 {
                                        continue;
                                    }
                                    out.push((
                                        v,
                                        decide(prog_ref, csr, spoken_ref, v, &mut ht, &mut c),
                                    ));
                                }
                                (out, c)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .enumerate()
                        .map(|(shard, h)| {
                            h.join().map_err(|_| EngineError::ShardPanicked { shard })
                        })
                        .collect()
                });
            let shard_results = shard_results?;

            decisions.iter_mut().for_each(|d| *d = None);
            let mut scheduled = 0u64;
            for (out, c) in shard_results {
                totals.merge(&c);
                scheduled += out.len() as u64;
                for (v, d) in out {
                    decisions[v as usize] = d;
                }
            }
            report.active_per_iteration.push(scheduled);
            if self.materialize_messages {
                // TigerGraph materializes (dst, label) messages per edge:
                // one write + one read of 8 bytes each before aggregation.
                totals.seq_bytes += 16 * csr.num_edges();
            }

            // UpdateVertex + frontier maintenance.
            let mut changed_vertices: Vec<VertexId> = Vec::new();
            let mut changed = 0u64;
            for v in 0..n {
                // A frontier-skipped vertex keeps its previous state.
                if use_frontier && !active[v] {
                    continue;
                }
                if prog.update_vertex(v as VertexId, decisions[v]) {
                    changed += 1;
                    changed_vertices.push(v as VertexId);
                }
            }
            totals.instructions += 2 * n as u64;
            totals.seq_bytes += 16 * n as u64;
            if use_frontier {
                if pull {
                    // Gather: every vertex scans its in-neighbors for a
                    // changed one (early exit). Marks exactly the vertices
                    // the scatter path marks — see
                    // `recompute_active_pull` in glp-core.
                    let mut changed_flag = vec![false; n];
                    for &v in &changed_vertices {
                        changed_flag[v as usize] = true;
                    }
                    let inc = g.incoming();
                    let mut scanned = 0u64;
                    for (v, a) in active.iter_mut().enumerate() {
                        *a = false;
                        for &u in inc.neighbors(v as VertexId) {
                            scanned += 1;
                            if changed_flag[u as usize] {
                                *a = true;
                                break;
                            }
                        }
                    }
                    totals.instructions += 2 * scanned + n as u64;
                    totals.seq_bytes += 4 * scanned;
                } else {
                    // Frontier maintenance is streaming work: scan the
                    // changed vertices' out-lists and set bitmap bits.
                    active.iter_mut().for_each(|a| *a = false);
                    let out = g.outgoing();
                    let mut touched = 0u64;
                    for &v in &changed_vertices {
                        for &u in out.neighbors(v) {
                            active[u as usize] = true;
                        }
                        touched += u64::from(out.degree(v));
                    }
                    totals.instructions += 2 * touched + 4 * changed_vertices.len() as u64;
                    totals.seq_bytes += 4 * touched;
                }
            }

            prog.end_iteration(iteration);
            report.changed_per_iteration.push(changed);
            report.direction_per_iteration.push(if !use_frontier {
                Direction::Dense
            } else if pull {
                Direction::Pull
            } else {
                Direction::Push
            });
            report.iterations = iteration + 1;
            if prog.finished(iteration, changed) {
                break;
            }
        }

        totals.instructions = (totals.instructions as f64 * self.instr_factor) as u64;
        totals.random_accesses = (totals.random_accesses as f64 * self.instr_factor) as u64;
        self.totals = totals;
        report.modeled_seconds = self.cfg.cpu.seconds(&totals, threads)
            + f64::from(report.iterations) * self.superstep_overhead_s;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        Ok(report)
    }
}

/// Exact per-vertex aggregation with the workspace tie rule, charging CPU
/// work: one random access per neighbor label, hash-scratch instructions,
/// streaming bytes for the CSR slice.
fn decide<P: LpProgram + ?Sized>(
    prog: &P,
    csr: &glp_graph::Csr,
    spoken: &[Label],
    v: VertexId,
    ht: &mut BoundedHashTable,
    c: &mut CpuCounters,
) -> Decision {
    ht.clear();
    let off = csr.offset(v);
    let nbrs = csr.neighbors(v);
    for (j, &u) in nbrs.iter().enumerate() {
        let contrib = prog.load_neighbor(v, u, off + j as u64, spoken[u as usize]);
        match ht.insert_add(u64::from(contrib.label), contrib.weight) {
            InsertOutcome::Added { .. } => {}
            InsertOutcome::Full { .. } => unreachable!("scratch sized to 2x degree"),
        }
    }
    c.random_accesses += nbrs.len() as u64;
    c.instructions += 8 * nbrs.len() as u64 + 20;
    c.seq_bytes += 4 * nbrs.len() as u64;
    let mut best: Option<BestLabel> = None;
    let current = spoken[v as usize];
    for (l, freq) in ht.iter() {
        let label = l as Label;
        BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
    }
    c.instructions += 3 * ht.occupied() as u64;
    BestLabel::into_decision(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_core::engine::GpuEngine;
    use glp_core::FrontierMode;
    use glp_core::{ClassicLp, Llp, Slp};
    use glp_graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};

    fn sample() -> Graph {
        community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 2_000,
            avg_degree: 10.0,
            ..Default::default()
        })
    }

    fn dense() -> RunOptions {
        RunOptions::default().with_frontier(FrontierMode::Dense)
    }

    fn gpu_reference<P: LpProgram + Clone>(g: &Graph, prog: &P) -> Vec<Label> {
        let mut p = prog.clone();
        GpuEngine::titan_v()
            .run(g, &mut p, &RunOptions::default())
            .unwrap();
        p.labels().to_vec()
    }

    #[test]
    fn omp_matches_gpu_classic() {
        let g = sample();
        let proto = ClassicLp::new(g.num_vertices());
        let want = gpu_reference(&g, &proto);
        let mut p = proto.clone();
        let report = CpuLp::omp(CpuLpConfig::default())
            .run(&g, &mut p, &dense())
            .unwrap();
        assert_eq!(p.labels(), &want[..]);
        assert!(report.modeled_seconds > 0.0);
    }

    #[test]
    fn ligra_frontier_matches_dense() {
        let g = caveman(12, 8);
        let proto = ClassicLp::new(g.num_vertices());
        let want = gpu_reference(&g, &proto);
        let mut p = proto.clone();
        let report = CpuLp::ligra(CpuLpConfig::default())
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        assert_eq!(p.labels(), &want[..]);
        assert_eq!(report.changed_per_iteration.last(), Some(&0));
    }

    #[test]
    fn ligra_llp_uses_dense_fallback_and_matches() {
        let g = sample();
        let proto = Llp::new(g.num_vertices(), 2.0);
        let want = gpu_reference(&g, &proto);
        let mut p = proto.clone();
        CpuLp::ligra(CpuLpConfig::default())
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        assert_eq!(p.labels(), &want[..]);
    }

    #[test]
    fn slp_deterministic_across_engines() {
        let g = caveman(6, 6);
        let proto = Slp::new(g.num_vertices(), 77);
        let want = gpu_reference(&g, &proto);
        let mut p = proto.clone();
        CpuLp::omp(CpuLpConfig::default())
            .run(&g, &mut p, &dense())
            .unwrap();
        assert_eq!(p.labels(), &want[..]);
    }

    #[test]
    fn tigergraph_models_slower_than_omp() {
        let g = sample();
        let mut p1 = ClassicLp::new(g.num_vertices());
        let r_omp = CpuLp::omp(CpuLpConfig::default())
            .run(&g, &mut p1, &dense())
            .unwrap();
        let mut p2 = ClassicLp::new(g.num_vertices());
        let r_tg = CpuLp::tigergraph(CpuLpConfig::default())
            .run(&g, &mut p2, &dense())
            .unwrap();
        assert_eq!(p1.labels(), p2.labels());
        assert!(
            r_tg.modeled_seconds > r_omp.modeled_seconds,
            "TG {} !> OMP {}",
            r_tg.modeled_seconds,
            r_omp.modeled_seconds
        );
    }

    #[test]
    fn ligra_does_less_work_than_omp_on_unevenly_converging_graph() {
        // Cliques converge in a couple of iterations; the attached path
        // keeps churning for many more. The frontier lets Ligra skip the
        // settled cliques while OMP rescans everything every iteration.
        let cliques = 30usize;
        let k = 8usize;
        let path_len = 300usize;
        let n = cliques * k + path_len;
        let mut b = glp_graph::GraphBuilder::new(n);
        for c in 0..cliques {
            let base = c * k;
            for a in 0..k {
                for z in (a + 1)..k {
                    b.add_edge((base + a) as VertexId, (base + z) as VertexId);
                }
            }
        }
        for i in 0..path_len {
            let v = (cliques * k + i) as VertexId;
            b.add_edge(v - 1, v); // attaches the path to the last clique
        }
        b.symmetrize(true);
        let g = b.build();

        let opts = RunOptions::default().with_max_iterations(40);
        let mut p1 = ClassicLp::with_max_iterations(n, 40);
        let mut omp = CpuLp::omp(CpuLpConfig::default());
        omp.run(
            &g,
            &mut p1,
            &opts.clone().with_frontier(FrontierMode::Dense),
        )
        .unwrap();
        let mut p2 = ClassicLp::with_max_iterations(n, 40);
        let mut ligra = CpuLp::ligra(CpuLpConfig::default());
        ligra.run(&g, &mut p2, &opts).unwrap();
        assert_eq!(p1.labels(), p2.labels());
        assert!(
            2 * ligra.totals().random_accesses < omp.totals().random_accesses,
            "frontier should cut work: ligra {} vs omp {}",
            ligra.totals().random_accesses,
            omp.totals().random_accesses
        );
    }
}
