//! # glp-test-support — shared builders for the workspace test suites
//!
//! The integration suites (`tests/frontier_equivalence.rs`,
//! `tests/engine_faults.rs`, `tests/golden_trace.rs`, the serve
//! determinism tests) all need the same fixtures: a small pool of graphs
//! with known structure, fresh program instances of every LP variant,
//! one engine of every tier, a fault-free reference run, and a
//! deterministic transaction stream for the fraud pipeline. This crate
//! is the single home for those builders so the suites stay in lockstep
//! — a new program variant or engine tier added here is exercised by
//! every suite at once.
//!
//! Everything here is deterministic: fixed seeds, fixed sizes, no
//! clocks. Builders hand out *fresh* instances per call (programs and
//! engines are stateful), so each run owns its state.

use glp_core::engine::{
    BarrierHook, Engine, GpuEngine, HybridEngine, MultiGpuEngine, SequentialEngine,
};
use glp_core::{
    CapacityLp, ClassicLp, Llp, LpProgram, RiskWeightedLp, RunOptions, SeededLp, Slp, WeightedLp,
};
use glp_fraud::{
    AdversarialStream, AdversaryConfig, RegionalStream, RegionalTxConfig, TxConfig, TxStream,
};
use glp_gpusim::{Device, DeviceConfig};
use glp_graph::gen::{caveman, community_powerlaw, two_cliques_bridge, CommunityPowerLawConfig};
use glp_graph::Graph;
use std::sync::Arc;

/// Iteration budget shared by the equivalence suites: long enough for
/// the test graphs to settle, short enough to keep the full
/// graphs × engines × variants × modes sweep cheap.
pub const ITERS: u32 = 12;

/// The standard small-graph pool: one planted-community graph where LP
/// converges crisply, one power-law graph that exercises every
/// degree-bucket path (isolated through global-hash).
pub fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("caveman", caveman(12, 8)),
        (
            "powerlaw",
            community_powerlaw(&CommunityPowerLawConfig {
                num_vertices: 1_500,
                avg_degree: 8.0,
                ..Default::default()
            }),
        ),
    ]
}

/// A tiny two-community graph for tests that pin exact structure (the
/// golden-trace suite): converges in a handful of iterations.
pub fn tiny_graph() -> Graph {
    two_cliques_bridge(9)
}

/// Fresh program instances of every LP variant, sized for `g`.
/// Sparse-activation programs (classic, seeded, weighted, risk) exercise
/// the real frontier machinery; globally-coupled ones (LLP, SLP,
/// capacity) pin the dense fallback. Programs are stateful; each run
/// needs its own instance.
pub fn variants(g: &Graph) -> Vec<(&'static str, Box<dyn LpProgram>)> {
    let n = g.num_vertices();
    let seeds: Vec<u32> = (0..n as u32).step_by(53).collect();
    let risk_seeds: Vec<(u32, f32)> = seeds.iter().map(|&v| (v, 1.0 + (v % 5) as f32)).collect();
    // The generators emit unweighted graphs; give WeightedLp a synthetic
    // deterministic weight per incoming edge so it exercises real weights.
    let edge_weights: Arc<Vec<f32>> =
        Arc::new((0..g.num_edges()).map(|e| 0.5 + (e % 7) as f32).collect());
    vec![
        (
            "classic",
            Box::new(ClassicLp::with_max_iterations(n, ITERS)),
        ),
        ("llp", Box::new(Llp::with_max_iterations(n, 2.0, ITERS))),
        ("slp", Box::new(Slp::with_params(n, 5, 0.2, ITERS, 0x5EED))),
        (
            "seeded",
            Box::new(SeededLp::with_max_iterations(n, &seeds, ITERS)),
        ),
        (
            "weighted",
            Box::new(WeightedLp::new(n, edge_weights, ITERS).with_retention(0.3)),
        ),
        ("risk", Box::new(RiskWeightedLp::new(n, &risk_seeds, ITERS))),
        (
            "capacity",
            Box::new(CapacityLp::with_max_iterations(n, 64, ITERS)),
        ),
    ]
}

/// One fresh engine of every tier, sized for `g`: host sweep, in-core
/// GPU, out-of-core hybrid (on a device too small for the graph, so
/// streaming engages), and a two-device multi-GPU.
pub fn engines(g: &Graph) -> Vec<(&'static str, Box<dyn Engine>)> {
    let tiny = (g.num_vertices() as u64) * 20 + g.size_bytes() / 3;
    vec![
        ("sequential", Box::new(SequentialEngine::new())),
        ("gpu", Box::new(GpuEngine::titan_v())),
        (
            "hybrid",
            Box::new(HybridEngine::new(Device::new(DeviceConfig::tiny(tiny)))),
        ),
        ("multi", Box::new(MultiGpuEngine::titan_v(2))),
    ]
}

/// A fault-free `ClassicLp` reference run on the plain GPU engine:
/// `(labels, changed_per_iteration, active_per_iteration)`.
pub fn reference(g: &Graph, opts: &RunOptions) -> (Vec<u32>, Vec<u64>, Vec<u64>) {
    let mut prog = ClassicLp::new(g.num_vertices());
    let report = GpuEngine::titan_v()
        .run(g, &mut prog, opts)
        .expect("fault-free reference");
    (
        prog.labels().to_vec(),
        report.changed_per_iteration,
        report.active_per_iteration,
    )
}

/// Kernel launches one checkpointed iteration costs on the GPU engine
/// for this graph (pick + bucket kernels + update + barrier snapshot),
/// measured rather than assumed so fault-index arithmetic stays correct
/// if the kernel schedule grows.
pub fn launches_per_iteration(g: &Graph, opts: &RunOptions) -> u32 {
    let mut probe = GpuEngine::titan_v();
    let mut prog = ClassicLp::new(g.num_vertices());
    let hooked = opts.clone().with_barrier_hook(BarrierHook::new(|_| {}));
    let report = probe.run(g, &mut prog, &hooked).expect("healthy probe");
    assert!(report.iterations >= 3, "test graph converges too fast");
    (probe.device().kernel_log().len() as u64 / u64::from(report.iterations)) as u32
}

/// The standard deterministic fraud workload: three planted rings in a
/// background of organic traffic, sized so LP flags the rings within a
/// couple of reclusters. Shared by the serve and pipeline suites.
pub fn tx_stream() -> TxStream {
    TxStream::generate(&TxConfig {
        num_users: 1_000,
        num_items: 400,
        days: 20,
        tx_per_day: 600,
        num_rings: 3,
        ring_size: 10,
        ring_tx_per_day: 30,
        blacklist_fraction: 0.25,
        ..Default::default()
    })
}

/// The standard deterministic *regional* fraud workload for the sharded
/// fleet suites: organic traffic strictly region-local (communities the
/// partitioner can co-locate), with fraud rings straddling adjacent
/// region pairs so the cross-shard label exchange always has real
/// boundary components to reconcile. Shared by the fleet determinism,
/// shard-loss, and recovery suites.
pub fn regional_stream() -> RegionalStream {
    RegionalStream::generate(&RegionalTxConfig {
        regions: 8,
        users_per_region: 200,
        items_per_region: 80,
        days: 12,
        tx_per_day: 800,
        cross_rings: 8,
        ring_size: 10,
        ring_tx_per_day: 30,
        blacklist_fraction: 0.3,
        ..Default::default()
    })
}

/// The standard deterministic *adversarial* workload for the robustness
/// suites: evolving rings that rotate members daily behind camouflage
/// purchases, a mid-stream burst flood, and planted blacklist label
/// noise — each attack with per-day ground truth. Shared by the
/// overload/label-noise suites and the `adversarial_serve` bench.
pub fn adversarial_stream() -> AdversarialStream {
    AdversarialStream::generate(&AdversaryConfig {
        base: RegionalTxConfig {
            regions: 4,
            users_per_region: 200,
            items_per_region: 80,
            days: 12,
            tx_per_day: 800,
            cross_rings: 4,
            // Pools much larger than the active subset, so rotation
            // genuinely walks the ring *away* from old snapshots
            // (rotate 2/day never wraps within the 12-day stream).
            ring_size: 30,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.3,
            ..Default::default()
        },
        active_members: 6,
        rotate_per_day: 2,
        camouflage_per_day: 10,
        burst_day: Some(6),
        burst_tx: 4_000,
        label_noise: 6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic_and_sized_consistently() {
        let pool = graphs();
        assert_eq!(pool.len(), 2);
        for (name, g) in &pool {
            assert!(g.num_vertices() > 0, "{name} empty");
            assert_eq!(variants(g).len(), 7);
            assert_eq!(engines(g).len(), 4);
        }
        let a = tx_stream();
        let b = tx_stream();
        assert_eq!(a.blacklist, b.blacklist, "stream builder must be seeded");
        let r = regional_stream();
        let r2 = regional_stream();
        assert_eq!(r.blacklist, r2.blacklist, "regional builder must be seeded");
        assert!(!r.blacklist.is_empty(), "rings must seed a blacklist");
        let adv = adversarial_stream();
        let adv2 = adversarial_stream();
        assert_eq!(
            adv.transactions, adv2.transactions,
            "adversarial builder must be seeded"
        );
        assert!(!adv.noise.is_empty(), "preset must plant label noise");
        assert!(
            adv.truth_by_day.windows(2).any(|w| w[0] != w[1]),
            "preset rings must actually rotate"
        );
        let burst_day = adv.config.burst_day.expect("preset must flood") as usize;
        let per_day = |s: &AdversarialStream, d: u32| s.window(d, d + 1).count();
        assert!(
            per_day(&adv, burst_day as u32) > 2 * per_day(&adv, burst_day as u32 - 1),
            "burst day must dwarf a calm day"
        );
    }

    #[test]
    fn reference_run_is_reproducible() {
        let g = tiny_graph();
        let opts = RunOptions::default();
        let (labels_a, changed_a, active_a) = reference(&g, &opts);
        let (labels_b, changed_b, active_b) = reference(&g, &opts);
        assert_eq!(labels_a, labels_b);
        assert_eq!(changed_a, changed_b);
        assert_eq!(active_a, active_b);
        assert!(launches_per_iteration(&g, &opts) > 0);
    }
}
