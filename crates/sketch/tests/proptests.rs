//! Property-based invariants of the frequency-estimation structures — the
//! guarantees the §4.1 pruning correctness rests on.

use glp_sketch::{BoundedHashTable, CountMinSketch, InsertOutcome};
use proptest::prelude::*;
use std::collections::HashMap;

fn streams() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..100, 0..400)
}

proptest! {
    /// The CMS never underestimates any key's true count — the property
    /// that makes s(CMS) a sound pruning ceiling.
    #[test]
    fn cms_never_underestimates(stream in streams(), depth in 1usize..6, width in 1usize..128) {
        let mut cms = CountMinSketch::new(depth, width);
        let mut truth: HashMap<u64, f64> = HashMap::new();
        for &k in &stream {
            cms.add(k, 1.0);
            *truth.entry(k).or_default() += 1.0;
        }
        for (&k, &t) in &truth {
            prop_assert!(cms.estimate(k) >= t, "key {k}: est {} < true {t}", cms.estimate(k));
        }
    }

    /// max_count dominates every estimate (the block-reduce analogue).
    #[test]
    fn cms_max_dominates(stream in streams()) {
        let mut cms = CountMinSketch::new(4, 64);
        for &k in &stream {
            cms.add(k, 1.0);
        }
        let max = cms.max_count();
        for &k in &stream {
            prop_assert!(cms.estimate(k) <= max);
        }
    }

    /// Accepted keys in the bounded HT carry *exact* counts, and the HT +
    /// overflow partition of the stream is lossless — together these give
    /// §4.1's exactness ("not an approximated solution").
    #[test]
    fn ht_partition_is_exact(stream in streams(), cap in 1usize..64) {
        let mut ht = BoundedHashTable::new(cap, cap as u32);
        let mut overflow: HashMap<u64, f64> = HashMap::new();
        let mut truth: HashMap<u64, f64> = HashMap::new();
        for &k in &stream {
            *truth.entry(k).or_default() += 1.0;
            match ht.insert_add(k, 1.0) {
                InsertOutcome::Added { .. } => {}
                InsertOutcome::Full { .. } => {
                    *overflow.entry(k).or_default() += 1.0;
                }
            }
        }
        for (&k, &t) in &truth {
            let in_ht = ht.get(k).unwrap_or(0.0);
            let in_of = overflow.get(&k).copied().unwrap_or(0.0);
            prop_assert_eq!(in_ht + in_of, t, "key {} split {}+{} != {}", k, in_ht, in_of, t);
            // A key never straddles both homes.
            prop_assert!(in_ht == 0.0 || in_of == 0.0, "key {} in both", k);
        }
    }

    /// max_entry returns the true maximum (ties to the smaller key).
    #[test]
    fn ht_max_entry_correct(stream in streams()) {
        let mut ht = BoundedHashTable::new(256, 256);
        let mut truth: HashMap<u64, f64> = HashMap::new();
        for &k in &stream {
            ht.insert_add(k, 1.0);
            *truth.entry(k).or_default() += 1.0;
        }
        let expect = truth
            .iter()
            .map(|(&k, &c)| (k, c))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)));
        prop_assert_eq!(ht.max_entry(), expect);
    }

    /// clear() really resets state (the recycled-scratch correctness the
    /// engines depend on).
    #[test]
    fn ht_clear_resets(stream in streams()) {
        let mut ht = BoundedHashTable::new(64, 64);
        for &k in &stream {
            ht.insert_add(k, 1.0);
        }
        ht.clear();
        prop_assert_eq!(ht.occupied(), 0);
        for &k in &stream {
            prop_assert_eq!(ht.get(k), None);
        }
        // And it is fully usable afterwards.
        ht.insert_add(7, 3.0);
        prop_assert_eq!(ht.get(7), Some(3.0));
    }
}
