//! # glp-sketch — frequency-estimation substrate for GLP
//!
//! The paper's high-degree optimization (§4.1) combines two shared-memory
//! resident structures to find the most frequent label (MFL) of a large
//! neighborhood in a single scan:
//!
//! * a [`BoundedHashTable`] holding exact counts for the first labels that
//!   fit (the HT of Procedure `SharedMemBigNodes`), and
//! * a [`CountMinSketch`] absorbing the overflow with only-overestimating
//!   counts (the CMS).
//!
//! If the best exact score in the HT is at least the best estimated score in
//! the CMS, the MFL is provably in the HT and no global memory is touched.
//! The [`theory`] module implements the paper's Lemma 1, Lemma 2 and
//! Theorem 1 bounds on how often the slow path is needed; the test suite
//! validates them by Monte-Carlo simulation.

#![forbid(unsafe_code)]

pub mod cms;
pub mod ht;
pub mod theory;

pub use cms::CountMinSketch;
pub use ht::{BoundedHashTable, InsertOutcome};
