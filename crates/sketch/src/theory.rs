//! The paper's probabilistic guarantees (§4.1, Lemmas 1–2, Theorem 1).
//!
//! These bound the probability that `SharedMemBigNodes` must fall back to
//! global memory for a vertex whose neighborhood has `m` distinct labels,
//! maximum label frequency `f_max`, an HT with `h` slots and a CMS with `d`
//! rows. The test suite validates each bound by Monte-Carlo simulation of
//! the exact random processes the proofs analyze.

/// Lemma 1: probability that the most frequent label `l*` is **not**
/// captured by the HT after inserting all labels in random order,
/// `P[l* ∉ HT] ≤ (1 − h/(m+k))^{2k}` with `k = (f_max − 1)/2`.
///
/// The analysis assumes all labels other than `l*` appear once. Returns 0
/// when every distinct label fits (`m ≤ h`).
pub fn lemma1_bound(m: u64, h: u64, f_max: u64) -> f64 {
    assert!(f_max >= 1, "the MFL appears at least once");
    if m <= h {
        return 0.0;
    }
    let k = (f_max as f64 - 1.0) / 2.0;
    let base = 1.0 - h as f64 / (m as f64 + k);
    base.max(0.0).powf(2.0 * k)
}

/// Lemma 2: probability that the CMS-estimated maximum exceeds the true
/// maximum frequency, `P[max_l g(l) > f_max] ≤ m · 2^{-d}` (with the CMS
/// width set to twice the overflow count, as the engine does). Capped at 1.
pub fn lemma2_bound(m: u64, d: u32) -> f64 {
    (m as f64 * 2f64.powi(-(d as i32))).min(1.0)
}

/// Theorem 1: the probability of needing global memory accesses for a
/// vertex, bounded by `m·2^{-d} + e^{-h}` in the regime `m ≤ (f_max−1)/2`
/// with large `f_max` (communities already formed). Capped at 1.
pub fn theorem1_bound(m: u64, h: u64, d: u32) -> f64 {
    (lemma2_bound(m, d) + (-(h as f64)).exp()).min(1.0)
}

/// The exact (non-asymptotic) combination: Lemma 1 at finite `f_max` plus
/// Lemma 2. This is the quantity the engine's instrumentation is compared
/// against in integration tests.
pub fn global_access_bound(m: u64, h: u64, f_max: u64, d: u32) -> f64 {
    (lemma1_bound(m, h, f_max) + lemma2_bound(m, d)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundedHashTable, CountMinSketch, InsertOutcome};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lemma1_zero_when_labels_fit() {
        assert_eq!(lemma1_bound(10, 16, 100), 0.0);
        assert_eq!(lemma1_bound(16, 16, 2), 0.0);
    }

    #[test]
    fn lemma1_decreases_with_h_and_fmax() {
        let base = lemma1_bound(1000, 64, 33);
        assert!(lemma1_bound(1000, 128, 33) < base);
        assert!(lemma1_bound(1000, 64, 129) < base);
        assert!(base > 0.0 && base < 1.0);
    }

    #[test]
    fn lemma2_shape() {
        assert_eq!(lemma2_bound(16, 4), 1.0);
        assert_eq!(lemma2_bound(16, 8), 16.0 / 256.0);
        assert!(lemma2_bound(1, 20) < 1e-6);
    }

    #[test]
    fn theorem1_small_in_practical_regime() {
        // After a few LP iterations on a community graph: few distinct
        // labels, large f_max, h = 1024, d = 8.
        let p = theorem1_bound(64, 1024, 8);
        assert!(p < 0.26, "{p}");
        let p = theorem1_bound(8, 1024, 10);
        assert!(p < 0.01, "{p}");
    }

    /// Monte-Carlo check of Lemma 1's random process: m distinct labels,
    /// the MFL repeated f_max times, inserted in random order into an HT
    /// with h slots (first-come-first-kept). The empirical miss rate must
    /// not exceed the bound (within sampling noise).
    #[test]
    fn lemma1_monte_carlo() {
        let (m, h, f_max) = (256u64, 32u64, 17u64);
        let bound = lemma1_bound(m, h, f_max);
        assert!(bound > 0.0 && bound < 1.0, "pick a nondegenerate regime");
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let trials = 3000;
        let mut misses = 0usize;
        for _ in 0..trials {
            // Stream: label 0 appears f_max times, labels 1..m once each.
            let mut stream: Vec<u64> = (1..m).collect();
            stream.extend(std::iter::repeat_n(0, f_max as usize));
            stream.shuffle(&mut rng);
            // First h distinct labels occupy the HT.
            let mut ht = BoundedHashTable::new(h as usize * 4, 64);
            let mut captured = std::collections::HashSet::new();
            for &l in &stream {
                if captured.len() < h as usize || captured.contains(&l) {
                    captured.insert(l);
                    ht.insert_add(l, 1.0);
                }
            }
            if !captured.contains(&0) {
                misses += 1;
            }
        }
        let rate = misses as f64 / trials as f64;
        // Allow 3 sigma of binomial noise above the bound.
        let sigma = (bound * (1.0 - bound) / trials as f64).sqrt();
        assert!(
            rate <= bound + 3.0 * sigma + 0.01,
            "empirical {rate} vs bound {bound}"
        );
    }

    /// Monte-Carlo check of Lemma 2: overflow labels go into a CMS with
    /// width = 2 × overflow count; the estimated max must rarely exceed the
    /// true maximum frequency.
    #[test]
    fn lemma2_monte_carlo() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let d = 4u32;
        let m = 64u64;
        let f_max = 50.0;
        let trials = 1000;
        let mut violations = 0usize;
        for t in 0..trials {
            // Overflow stream: m singleton labels (the HT kept the heavy one).
            let s = m as usize;
            let mut cms = CountMinSketch::new(d as usize, 2 * s);
            let mut overflow: Vec<u64> = (1..=m).map(|x| x * 7919 + t).collect();
            overflow.shuffle(&mut rng);
            for &l in &overflow {
                cms.add(l, 1.0);
            }
            let est_max = overflow
                .iter()
                .map(|&l| cms.estimate(l))
                .fold(0.0, f64::max);
            if est_max > f_max {
                violations += 1;
            }
        }
        let rate = violations as f64 / trials as f64;
        let bound = lemma2_bound(m, d);
        assert!(rate <= bound + 0.02, "empirical {rate} vs bound {bound}");
    }

    /// End-to-end: run the actual HT+CMS combination of SharedMemBigNodes
    /// on community-like neighborhoods and check the fallback frequency
    /// against `global_access_bound`.
    #[test]
    fn combined_fallback_rate_within_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let h = 64usize;
        let d = 4usize;
        // Neighborhood: 8 communities of 40 + 120 singleton labels.
        let mut neighborhood: Vec<u64> = Vec::new();
        for c in 0..8u64 {
            neighborhood.extend(std::iter::repeat_n(c, 40));
        }
        neighborhood.extend(1000..1120u64);
        let m = 8 + 120;
        let f_max = 40u64;
        let trials = 500;
        let mut fallbacks = 0usize;
        for _ in 0..trials {
            neighborhood.shuffle(&mut rng);
            let mut ht = BoundedHashTable::new(h, 32);
            let overflow_guess = neighborhood.len();
            let mut cms = CountMinSketch::new(d, 2 * overflow_guess);
            let mut s_cms = 0.0f64;
            for &l in &neighborhood {
                match ht.insert_add(l, 1.0) {
                    InsertOutcome::Added { .. } => {}
                    InsertOutcome::Full { .. } => {
                        s_cms = s_cms.max(cms.add(l, 1.0));
                    }
                }
            }
            let s_ht = ht.max_entry().map_or(0.0, |e| e.1);
            if s_ht < s_cms {
                fallbacks += 1;
            }
        }
        let rate = fallbacks as f64 / trials as f64;
        let bound = global_access_bound(m, h as u64, f_max, d as u32);
        assert!(rate <= bound + 0.05, "empirical {rate} vs bound {bound}");
    }
}
