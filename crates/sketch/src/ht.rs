//! Bounded open-addressing hash table — the shared-memory HT of Procedure
//! `SharedMemBigNodes` and, with a large capacity, the global-memory GHT.
//!
//! Semantics match the GPU structure: fixed capacity, linear probing with a
//! bounded probe budget, `atomicAdd`-style insert-or-accumulate. An insert
//! is *unsuccessful* (label overflows to the CMS) when the probe budget is
//! exhausted without finding the key or an empty slot.

/// Result of [`BoundedHashTable::insert_add`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InsertOutcome {
    /// Key present (inserted or already there); carries the updated count
    /// and the number of probes used (for bank-conflict/cost accounting).
    Added { count: f64, probes: u32 },
    /// Probe budget exhausted; key must overflow to the CMS.
    Full { probes: u32 },
}

/// Sentinel for an empty slot.
const EMPTY: u64 = u64::MAX;

/// Fixed-capacity open-addressing hash table with accumulate-on-insert.
///
/// ```
/// use glp_sketch::{BoundedHashTable, InsertOutcome};
/// let mut ht = BoundedHashTable::new(64, 8);
/// assert!(matches!(ht.insert_add(7, 2.0), InsertOutcome::Added { .. }));
/// ht.insert_add(7, 3.0);
/// assert_eq!(ht.get(7), Some(5.0));
/// assert_eq!(ht.max_entry(), Some((7, 5.0)));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedHashTable {
    keys: Vec<u64>,
    counts: Vec<f64>,
    mask: usize,
    probe_limit: u32,
    occupied: usize,
    touched: Vec<usize>,
}

impl BoundedHashTable {
    /// A table with `capacity` slots (rounded up to a power of two) and a
    /// probe budget of `probe_limit` slots per operation.
    ///
    /// # Panics
    /// Panics if `capacity` or `probe_limit` is 0.
    pub fn new(capacity: usize, probe_limit: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(probe_limit > 0, "probe limit must be positive");
        let cap = capacity.next_power_of_two();
        Self {
            keys: vec![EMPTY; cap],
            counts: vec![0.0; cap],
            mask: cap - 1,
            probe_limit: probe_limit.min(cap as u32),
            occupied: 0,
            touched: Vec::new(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Occupied slot count.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Probe budget per operation.
    pub fn probe_limit(&self) -> u32 {
        self.probe_limit
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Fibonacci multiply-shift; the low bits index the table.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) as usize & self.mask
    }

    /// Inserts `key` with `weight` or accumulates onto its existing count.
    pub fn insert_add(&mut self, key: u64, weight: f64) -> InsertOutcome {
        debug_assert_ne!(key, EMPTY, "sentinel key");
        let mut slot = self.home(key);
        for probe in 1..=self.probe_limit {
            if self.keys[slot] == key {
                self.counts[slot] += weight;
                return InsertOutcome::Added {
                    count: self.counts[slot],
                    probes: probe,
                };
            }
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.counts[slot] = weight;
                self.occupied += 1;
                self.touched.push(slot);
                return InsertOutcome::Added {
                    count: weight,
                    probes: probe,
                };
            }
            slot = (slot + 1) & self.mask;
        }
        InsertOutcome::Full {
            probes: self.probe_limit,
        }
    }

    /// Current count for `key`, if present within the probe budget.
    pub fn get(&self, key: u64) -> Option<f64> {
        let mut slot = self.home(key);
        for _ in 0..self.probe_limit {
            if self.keys[slot] == key {
                return Some(self.counts[slot]);
            }
            if self.keys[slot] == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Iterates occupied `(key, count)` entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &c)| (k, c))
    }

    /// The entry with the maximum count; ties break toward the smaller key
    /// (the workspace-wide deterministic tie rule). `None` when empty.
    pub fn max_entry(&self) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for (k, c) in self.iter() {
            best = match best {
                None => Some((k, c)),
                Some((bk, bc)) if c > bc || (c == bc && k < bk) => Some((k, c)),
                keep => keep,
            };
        }
        best
    }

    /// Empties the table in O(occupied) — the per-vertex reset the engines
    /// use when recycling one scratch table across millions of vertices.
    pub fn clear(&mut self) {
        for &slot in &self.touched {
            self.keys[slot] = EMPTY;
            self.counts[slot] = 0.0;
        }
        self.touched.clear();
        self.occupied = 0;
    }

    /// Shared-memory footprint: the GPU layout packs a 32-bit label and a
    /// 32-bit count per slot.
    pub fn size_bytes(&self) -> usize {
        self.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_accumulate() {
        let mut ht = BoundedHashTable::new(8, 8);
        match ht.insert_add(5, 1.0) {
            InsertOutcome::Added { count, .. } => assert_eq!(count, 1.0),
            full => panic!("{full:?}"),
        }
        match ht.insert_add(5, 2.0) {
            InsertOutcome::Added { count, .. } => assert_eq!(count, 3.0),
            full => panic!("{full:?}"),
        }
        assert_eq!(ht.occupied(), 1);
        assert_eq!(ht.get(5), Some(3.0));
    }

    #[test]
    fn fills_up_then_rejects() {
        let mut ht = BoundedHashTable::new(4, 4);
        let mut accepted = 0;
        let mut rejected = 0;
        for k in 0..64u64 {
            match ht.insert_add(k, 1.0) {
                InsertOutcome::Added { .. } => accepted += 1,
                InsertOutcome::Full { .. } => rejected += 1,
            }
        }
        assert_eq!(accepted, 4, "table has 4 slots");
        assert_eq!(rejected, 60);
        assert_eq!(ht.occupied(), 4);
        // Accumulating onto a resident key still works when full.
        let resident = ht.iter().next().unwrap().0;
        assert!(matches!(
            ht.insert_add(resident, 1.0),
            InsertOutcome::Added { .. }
        ));
    }

    #[test]
    fn probe_limit_can_reject_before_full() {
        let mut ht = BoundedHashTable::new(64, 1);
        // With a probe budget of 1, a key whose home slot is taken by
        // another key is rejected even though the table has room.
        let mut home_taken = None;
        for k in 0..1000u64 {
            match ht.insert_add(k, 1.0) {
                InsertOutcome::Full { probes } => {
                    assert_eq!(probes, 1);
                    home_taken = Some(k);
                    break;
                }
                InsertOutcome::Added { .. } => {}
            }
        }
        assert!(
            home_taken.is_some(),
            "some collision must occur in 1000 keys"
        );
        assert!(ht.occupied() < 64);
    }

    #[test]
    fn max_entry_breaks_ties_to_smaller_key() {
        let mut ht = BoundedHashTable::new(16, 16);
        ht.insert_add(9, 5.0);
        ht.insert_add(3, 5.0);
        ht.insert_add(7, 1.0);
        assert_eq!(ht.max_entry(), Some((3, 5.0)));
    }

    #[test]
    fn max_entry_none_when_empty() {
        assert!(BoundedHashTable::new(4, 4).max_entry().is_none());
    }

    #[test]
    fn get_absent_key() {
        let mut ht = BoundedHashTable::new(8, 8);
        ht.insert_add(1, 1.0);
        assert_eq!(ht.get(2), None);
        assert!(!ht.contains(2));
    }

    #[test]
    fn clear_empties() {
        let mut ht = BoundedHashTable::new(8, 8);
        ht.insert_add(1, 1.0);
        ht.clear();
        assert_eq!(ht.occupied(), 0);
        assert_eq!(ht.get(1), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(BoundedHashTable::new(100, 8).capacity(), 128);
        assert_eq!(BoundedHashTable::new(100, 8).size_bytes(), 1024);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut ht = BoundedHashTable::new(32, 32);
        for k in 10..20u64 {
            ht.insert_add(k, k as f64);
        }
        let mut entries: Vec<_> = ht.iter().collect();
        entries.sort_unstable_by_key(|e| e.0);
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[0], (10, 10.0));
        assert_eq!(entries[9], (19, 19.0));
    }
}
