//! Count-Min Sketch (Cormode & Muthukrishnan, 2005).
//!
//! `d` rows of `w` counters; a label hashes to one counter per row and
//! increments all of them; its estimate is the minimum over its counters,
//! which can only *over*estimate the true count — the property Lemma 2
//! builds on (with `w = 2s`, the over-by-more-than-1/s·s probability per
//! row is ≤ 1/2, so `P[g(l) > f_max] ≤ 2^-d`).
//!
//! Counters are `f64` because the GLP APIs allow weighted neighbor
//! contributions ([`LoadNeighbor` returns a frequency], Table 1).

/// A d×w count-min sketch.
///
/// ```
/// use glp_sketch::CountMinSketch;
/// let mut cms = CountMinSketch::new(4, 256);
/// for _ in 0..5 { cms.add(42, 1.0); }
/// assert!(cms.estimate(42) >= 5.0); // never underestimates
/// ```
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    depth: usize,
    width: usize,
    counts: Vec<f64>,
    touched: Vec<u32>,
}

/// Per-row multiply-shift hash multipliers (distinct large odd constants).
const ROW_MULTIPLIERS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
    0x8538_ecb5_bd45_6ea3,
    0xff51_afd7_ed55_8ccd,
    0xc4ce_b9fe_1a85_ec53,
    0x2545_f491_4f6c_dd1d,
];

impl CountMinSketch {
    /// A sketch with `depth` rows (1..=8) and `width` buckets per row.
    ///
    /// # Panics
    /// Panics if `depth` is outside 1..=8 or `width` is 0.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!((1..=8).contains(&depth), "depth must be in 1..=8");
        assert!(width > 0, "width must be positive");
        Self {
            depth,
            width,
            counts: vec![0.0; depth * width],
            touched: Vec::new(),
        }
    }

    /// Rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Bucket index of `key` in `row`.
    #[inline]
    fn bucket(&self, row: usize, key: u64) -> usize {
        let h = key
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(ROW_MULTIPLIERS[row]);
        ((h >> 33) as usize) % self.width
    }

    /// Adds `weight` to `key`'s counters and returns the updated estimate
    /// (minimum over rows) — the single-pass use in `SharedMemBigNodes`.
    pub fn add(&mut self, key: u64, weight: f64) -> f64 {
        let mut est = f64::INFINITY;
        for row in 0..self.depth {
            let b = row * self.width + self.bucket(row, key);
            if self.counts[b] == 0.0 {
                self.touched.push(b as u32);
            }
            self.counts[b] += weight;
            est = est.min(self.counts[b]);
        }
        est
    }

    /// Current estimate for `key` (an upper bound on its true count).
    pub fn estimate(&self, key: u64) -> f64 {
        let mut est = f64::INFINITY;
        for row in 0..self.depth {
            est = est.min(self.counts[row * self.width + self.bucket(row, key)]);
        }
        est
    }

    /// Largest counter value anywhere (an upper bound on the maximum
    /// estimate; cheap block-reduce analogue for s(CMS)).
    pub fn max_count(&self) -> f64 {
        self.counts.iter().copied().fold(0.0, f64::max)
    }

    /// Zeroes all counters in O(touched buckets) — cheap per-vertex reset
    /// when one scratch sketch is recycled across many vertices.
    pub fn clear(&mut self) {
        for &b in &self.touched {
            self.counts[b as usize] = 0.0;
        }
        self.touched.clear();
    }

    /// Shared-memory footprint: the GPU layout uses 32-bit counters.
    pub fn size_bytes(&self) -> usize {
        self.depth * self.width * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(4, 64);
        for k in 0..200u64 {
            for _ in 0..(k % 7 + 1) {
                cms.add(k, 1.0);
            }
        }
        for k in 0..200u64 {
            let truth = (k % 7 + 1) as f64;
            assert!(cms.estimate(k) >= truth, "key {k}");
        }
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cms = CountMinSketch::new(4, 4096);
        cms.add(42, 3.0);
        cms.add(42, 2.0);
        assert_eq!(cms.estimate(42), 5.0);
    }

    #[test]
    fn add_returns_running_estimate() {
        let mut cms = CountMinSketch::new(2, 1024);
        assert_eq!(cms.add(7, 1.5), 1.5);
        assert!(cms.add(7, 1.0) >= 2.5);
    }

    #[test]
    fn unknown_key_estimate_is_bounded_by_collisions() {
        let mut cms = CountMinSketch::new(4, 1024);
        for k in 0..50u64 {
            cms.add(k, 1.0);
        }
        // A key never added can only pick up collision mass.
        assert!(cms.estimate(999_999) <= 50.0);
    }

    #[test]
    fn max_count_bounds_estimates() {
        let mut cms = CountMinSketch::new(3, 128);
        for k in 0..500u64 {
            cms.add(k % 17, 1.0);
        }
        let max = cms.max_count();
        for k in 0..17u64 {
            assert!(cms.estimate(k) <= max);
        }
    }

    #[test]
    fn clear_resets() {
        let mut cms = CountMinSketch::new(2, 32);
        cms.add(1, 10.0);
        cms.clear();
        assert_eq!(cms.estimate(1), 0.0);
        assert_eq!(cms.max_count(), 0.0);
    }

    #[test]
    #[should_panic(expected = "depth must be in 1..=8")]
    fn zero_depth_rejected() {
        CountMinSketch::new(0, 8);
    }

    #[test]
    fn size_is_gpu_layout() {
        assert_eq!(CountMinSketch::new(4, 256).size_bytes(), 4 * 256 * 4);
    }
}
