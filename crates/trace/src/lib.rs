//! End-to-end span tracing for the GLP stack.
//!
//! One [`Tracer`] handle is threaded through engines
//! (`RunOptions::tracer`), the simulated device (kernel launches and PCIe
//! transfers), and the serving pipeline, so a single flag lights up the
//! whole stack. The design constraints, in order:
//!
//! * **Zero dependencies.** Both `glp-gpusim` and `glp-core` depend on
//!   this crate, so it must sit below everything else in the workspace.
//! * **Simulated time is the timeline.** Device-side spans carry the cost
//!   model's charged seconds ([`Clock::Modeled`]), not wall time; host-side
//!   stages (serve, the resilience ladder) use wall seconds relative to a
//!   local epoch ([`Clock::Wall`]). Nesting is *structural* — a span's
//!   parent is whatever span the recording thread had open — so the two
//!   clocks compose without comparison.
//! * **Lock-free-enough.** Each thread records into a thread-local ring
//!   buffer; the shared sink's mutex is only taken when a ring fills or
//!   the thread's span stack empties (end of an engine run / serve stage).
//!
//! Recorded traces export to Chrome trace-event JSON
//! ([`Trace::chrome_json`], loadable in `chrome://tracing` or Perfetto), a
//! durations-free structural form ([`Trace::structure`]) pinned by the
//! golden-trace regression test, and a per-kernel aggregation table
//! ([`KernelProfile`]) surfaced in `LpRunReport` and serve telemetry.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// What layer of the stack a span belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// One `Engine::run` invocation.
    Run,
    /// One BSP iteration.
    Iteration,
    /// Degree-bucket dispatch (the propagate phase of an iteration).
    Dispatch,
    /// One simulated kernel launch; duration is the cost model's charge.
    Kernel,
    /// One modeled PCIe transfer (upload / download / hybrid stream).
    Transfer,
    /// Fault-tolerance events: snapshot, retry, degrade, repartition.
    Resilience,
    /// Serving-pipeline stages: ingest, batch, apply, recluster, swap.
    Serve,
}

impl Category {
    /// Lower-case label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Run => "run",
            Category::Iteration => "iteration",
            Category::Dispatch => "dispatch",
            Category::Kernel => "kernel",
            Category::Transfer => "transfer",
            Category::Resilience => "resilience",
            Category::Serve => "serve",
        }
    }
}

/// Which timeline a span's timestamps live on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Clock {
    /// The simulator's modeled seconds (the paper's reported time).
    Modeled,
    /// Host wall seconds relative to a caller-chosen epoch.
    Wall,
}

/// Span or point event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// An interval with a duration.
    Span,
    /// A zero-duration marker.
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Unique per tracer; assigned in begin/record order, so a parent's id
    /// is always smaller than its children's.
    pub id: u64,
    /// Enclosing span's id, or 0 for a root.
    pub parent: u64,
    /// Nesting depth on the recording thread (roots are 0).
    pub depth: u16,
    /// Stack layer.
    pub cat: Category,
    /// Span name (engine tier, kernel name, serve stage, ...).
    pub name: &'static str,
    /// Timeline of `start_s`/`dur_s`.
    pub clock: Clock,
    /// Rendering track: 0 = host/engine thread, `device id + 1` for
    /// device-side events. Not part of the pinned structure.
    pub track: u32,
    /// Start time in seconds on `clock`.
    pub start_s: f64,
    /// Duration in seconds (0 for instants).
    pub dur_s: f64,
    /// Span or instant.
    pub kind: Kind,
    /// Whether the span ended on an error path.
    pub err: bool,
    /// Optional small payload (iteration index, batch size, ...).
    pub arg: Option<u64>,
}

impl Event {
    /// End time in seconds on this event's clock.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.dur_s
    }
}

/// Identity of a span that ended on an error path — enough to parent a
/// follow-up resilience event to it from another stack context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErrorSpan {
    /// The failed span's event id.
    pub id: u64,
    /// Its recorded depth.
    pub depth: u16,
}

/// Destination for flushed event batches. The default in-memory sink is
/// what [`Tracer::finish`] drains; custom sinks can stream elsewhere.
pub trait TraceSink: Send + Sync {
    /// Accepts one flushed batch. Returns how many events were kept (the
    /// difference is reported as dropped).
    fn write(&self, batch: &[Event]) -> usize;
}

/// Bounded in-memory sink.
struct MemorySink {
    events: Mutex<Vec<Event>>,
    max_events: usize,
}

impl TraceSink for MemorySink {
    fn write(&self, batch: &[Event]) -> usize {
        let mut events = self.events.lock().expect("trace sink poisoned");
        let room = self.max_events.saturating_sub(events.len());
        let take = batch.len().min(room);
        events.extend_from_slice(&batch[..take]);
        take
    }
}

/// A span begun but not yet ended on some thread.
struct OpenSpan {
    id: u64,
    parent: u64,
    depth: u16,
    cat: Category,
    name: &'static str,
    clock: Clock,
    start_s: f64,
    arg: Option<u64>,
}

/// Per-thread recording state for one tracer.
#[derive(Default)]
struct ThreadState {
    stack: Vec<OpenSpan>,
    ring: Vec<Event>,
}

thread_local! {
    /// Ring buffers and span stacks, keyed by tracer key. Entries persist
    /// for the thread's lifetime; they are tiny and tests churn through
    /// tracers far too slowly for this to matter.
    static THREAD_STATES: RefCell<HashMap<usize, ThreadState>> = RefCell::new(HashMap::new());
}

/// Process-unique tracer keys for the thread-local map.
static NEXT_TRACER_KEY: AtomicUsize = AtomicUsize::new(1);

struct Inner {
    key: usize,
    ring_capacity: usize,
    seq: AtomicU64,
    open: AtomicI64,
    dropped: AtomicU64,
    last_error: Mutex<Option<ErrorSpan>>,
    memory: Arc<MemorySink>,
    sink: Arc<dyn TraceSink>,
}

/// A cheap, cloneable handle to one trace recording.
///
/// All methods take `&self`; recording is thread-safe and (on the hot
/// path) lock-free: events land in a thread-local ring that is flushed to
/// the sink when full or when the thread's span stack empties.
///
/// ```
/// use glp_trace::{Category, Clock, Tracer};
/// let tracer = Tracer::new();
/// tracer.begin(Category::Run, "GLP", Clock::Modeled, 0.0);
/// tracer.complete(Category::Kernel, "pick_label", Clock::Modeled, 0.0, 1e-6);
/// tracer.end(2e-6);
/// let trace = tracer.finish();
/// assert_eq!(trace.events.len(), 2);
/// assert_eq!(trace.events[1].parent, trace.events[0].id);
/// ```
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(#{})", self.inner.key)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Default ring size: large enough that a full BSP iteration's kernels
/// flush in one batch.
const DEFAULT_RING: usize = 256;
/// Default sink bound: events past this are counted as dropped instead of
/// growing without limit.
const DEFAULT_MAX_EVENTS: usize = 1 << 20;

impl Tracer {
    /// A tracer with the default in-memory sink and capacities.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING, DEFAULT_MAX_EVENTS)
    }

    /// A tracer with explicit per-thread ring size and sink bound.
    pub fn with_capacity(ring_capacity: usize, max_events: usize) -> Self {
        let memory = Arc::new(MemorySink {
            events: Mutex::new(Vec::new()),
            max_events,
        });
        Self {
            inner: Arc::new(Inner {
                key: NEXT_TRACER_KEY.fetch_add(1, Ordering::Relaxed),
                ring_capacity: ring_capacity.max(1),
                seq: AtomicU64::new(1),
                open: AtomicI64::new(0),
                dropped: AtomicU64::new(0),
                last_error: Mutex::new(None),
                memory: memory.clone(),
                sink: memory,
            }),
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&Inner, &mut ThreadState) -> R) -> R {
        THREAD_STATES.with(|states| {
            let mut states = states.borrow_mut();
            let state = states.entry(self.inner.key).or_default();
            f(&self.inner, state)
        })
    }

    fn next_id(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn push(inner: &Inner, state: &mut ThreadState, event: Event) {
        state.ring.push(event);
        if state.ring.len() >= inner.ring_capacity || state.stack.is_empty() {
            Self::flush_state(inner, state);
        }
    }

    fn flush_state(inner: &Inner, state: &mut ThreadState) {
        if state.ring.is_empty() {
            return;
        }
        let kept = inner.sink.write(&state.ring);
        let lost = (state.ring.len() - kept) as u64;
        if lost > 0 {
            inner.dropped.fetch_add(lost, Ordering::Relaxed);
        }
        state.ring.clear();
    }

    /// Opens a span on the calling thread's stack. Returns its event id.
    pub fn begin(&self, cat: Category, name: &'static str, clock: Clock, start_s: f64) -> u64 {
        self.begin_inner(cat, name, clock, start_s, None)
    }

    /// [`begin`](Self::begin) with a small payload (iteration index, ...).
    pub fn begin_arg(
        &self,
        cat: Category,
        name: &'static str,
        clock: Clock,
        start_s: f64,
        arg: u64,
    ) -> u64 {
        self.begin_inner(cat, name, clock, start_s, Some(arg))
    }

    fn begin_inner(
        &self,
        cat: Category,
        name: &'static str,
        clock: Clock,
        start_s: f64,
        arg: Option<u64>,
    ) -> u64 {
        let id = self.next_id();
        self.inner.open.fetch_add(1, Ordering::Relaxed);
        self.with_state(|_, state| {
            let (parent, depth) = match state.stack.last() {
                Some(top) => (top.id, top.depth + 1),
                None => (0, 0),
            };
            state.stack.push(OpenSpan {
                id,
                parent,
                depth,
                cat,
                name,
                clock,
                start_s,
                arg,
            });
        });
        id
    }

    /// Ends the innermost open span on the calling thread.
    ///
    /// # Panics
    /// Panics if no span is open on this thread (unbalanced instrumentation
    /// is a bug, not a runtime condition).
    pub fn end(&self, end_s: f64) {
        self.end_inner(end_s, false);
    }

    /// Ends the innermost open span on an error path, remembering it so a
    /// recovery layer can parent follow-up events to it via
    /// [`take_error_span`](Self::take_error_span).
    pub fn end_err(&self, end_s: f64) {
        self.end_inner(end_s, true);
    }

    fn end_inner(&self, end_s: f64, err: bool) {
        self.end_full(end_s, err, err);
    }

    fn end_full(&self, end_s: f64, err: bool, record_error: bool) {
        self.inner.open.fetch_sub(1, Ordering::Relaxed);
        self.with_state(|inner, state| {
            let open = state.stack.pop().expect("Tracer::end with no open span");
            if record_error {
                *inner.last_error.lock().expect("trace state poisoned") = Some(ErrorSpan {
                    id: open.id,
                    depth: open.depth,
                });
            }
            let event = Event {
                id: open.id,
                parent: open.parent,
                depth: open.depth,
                cat: open.cat,
                name: open.name,
                clock: open.clock,
                track: 0,
                start_s: open.start_s,
                dur_s: (end_s - open.start_s).max(0.0),
                kind: Kind::Span,
                err,
                arg: open.arg,
            };
            Self::push(inner, state, event);
        });
    }

    /// Error-path unwind: ends every span the calling thread opened above
    /// `mark` (a depth captured with [`open_depth`](Self::open_depth))
    /// innermost-first, all flagged as errors. The innermost
    /// [`Category::Iteration`] span being unwound — the iteration the
    /// fault actually interrupted — is what
    /// [`take_error_span`](Self::take_error_span) reports afterwards (the
    /// innermost span overall when no iteration span is open).
    pub fn fail_open_to(&self, mark: usize, end_s: f64) {
        let (depth, anchor) = self.with_state(|_, state| {
            let mark = mark.min(state.stack.len());
            let anchor = state.stack[mark..]
                .iter()
                .rev()
                .position(|s| s.cat == Category::Iteration)
                .map(|from_top| state.stack.len() - 1 - from_top);
            (state.stack.len(), anchor)
        });
        if depth <= mark {
            return;
        }
        let anchor = anchor.unwrap_or(depth - 1);
        for idx in (mark..depth).rev() {
            self.end_full(end_s, true, idx == anchor);
        }
    }

    /// Number of spans the calling thread currently has open.
    pub fn open_depth(&self) -> usize {
        self.with_state(|_, state| state.stack.len())
    }

    /// Consumes the most recent error span (set by
    /// [`end_err`](Self::end_err) / [`fail_open_to`](Self::fail_open_to)).
    pub fn take_error_span(&self) -> Option<ErrorSpan> {
        self.inner
            .last_error
            .lock()
            .expect("trace state poisoned")
            .take()
    }

    /// Records a complete leaf span (a kernel launch or transfer whose
    /// duration is already known), parented to the calling thread's
    /// innermost open span.
    pub fn complete(
        &self,
        cat: Category,
        name: &'static str,
        clock: Clock,
        start_s: f64,
        dur_s: f64,
    ) {
        self.complete_on(cat, name, clock, 0, start_s, dur_s);
    }

    /// [`complete`](Self::complete) on an explicit rendering track
    /// (devices pass `id + 1`).
    pub fn complete_on(
        &self,
        cat: Category,
        name: &'static str,
        clock: Clock,
        track: u32,
        start_s: f64,
        dur_s: f64,
    ) {
        let id = self.next_id();
        self.with_state(|inner, state| {
            let (parent, depth) = match state.stack.last() {
                Some(top) => (top.id, top.depth + 1),
                None => (0, 0),
            };
            let event = Event {
                id,
                parent,
                depth,
                cat,
                name,
                clock,
                track,
                start_s,
                dur_s: dur_s.max(0.0),
                kind: Kind::Span,
                err: false,
                arg: None,
            };
            Self::push(inner, state, event);
        });
    }

    /// Records a point event, parented to the calling thread's innermost
    /// open span.
    pub fn instant(&self, cat: Category, name: &'static str, clock: Clock, at_s: f64) {
        self.instant_with_parent(cat, name, clock, at_s, None);
    }

    /// Records a point event under an explicit parent (typically an
    /// [`ErrorSpan`] from [`take_error_span`](Self::take_error_span)); with
    /// `None` it parents to the thread's innermost open span.
    pub fn instant_with_parent(
        &self,
        cat: Category,
        name: &'static str,
        clock: Clock,
        at_s: f64,
        parent: Option<ErrorSpan>,
    ) {
        let id = self.next_id();
        self.with_state(|inner, state| {
            let (parent, depth) = match (parent, state.stack.last()) {
                (Some(p), _) => (p.id, p.depth + 1),
                (None, Some(top)) => (top.id, top.depth + 1),
                (None, None) => (0, 0),
            };
            let event = Event {
                id,
                parent,
                depth,
                cat,
                name,
                clock,
                track: 0,
                start_s: at_s,
                dur_s: 0.0,
                kind: Kind::Instant,
                err: false,
                arg: None,
            };
            Self::push(inner, state, event);
        });
    }

    /// Flushes the calling thread's ring to the sink. Rings also flush
    /// automatically when full or when the thread's span stack empties, so
    /// this is only needed for threads that record leaf events without
    /// ever opening a span.
    pub fn flush(&self) {
        self.with_state(Self::flush_state);
    }

    /// Events dropped at the sink bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently open across all threads (0 for a balanced trace).
    pub fn open_spans(&self) -> i64 {
        self.inner.open.load(Ordering::Relaxed)
    }

    /// Flushes the calling thread and drains the in-memory sink into a
    /// [`Trace`], sorted by event id (begin order). Other threads must
    /// have closed their spans (their rings flush on stack-empty).
    pub fn finish(&self) -> Trace {
        self.flush();
        let mut events = {
            let mut sink = self
                .inner
                .memory
                .events
                .lock()
                .expect("trace sink poisoned");
            std::mem::take(&mut *sink)
        };
        events.sort_by_key(|e| e.id);
        Trace {
            events,
            dropped: self.dropped(),
        }
    }
}

/// A finished recording: every flushed event, in begin order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events sorted by id (= begin/record order per thread).
    pub events: Vec<Event>,
    /// Events lost at the sink bound.
    pub dropped: u64,
}

impl Trace {
    /// The event with this id, if present.
    pub fn event(&self, id: u64) -> Option<&Event> {
        self.events
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.events[i])
    }

    /// All events with this name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Sum of durations over all spans with this name.
    pub fn total_seconds(&self, name: &str) -> f64 {
        self.named(name)
            .filter(|e| e.kind == Kind::Span)
            .map(|e| e.dur_s)
            .sum()
    }

    /// Sum of durations over all spans in this category.
    pub fn category_seconds(&self, cat: Category) -> f64 {
        self.events
            .iter()
            .filter(|e| e.cat == cat && e.kind == Kind::Span)
            .map(|e| e.dur_s)
            .sum()
    }

    /// Structural validity: unique ids, existing span parents with
    /// consistent depths, and — for a child sharing its parent's clock —
    /// interval containment within `eps` seconds. Returns the first
    /// violation as an error string.
    pub fn check_well_formed(&self, eps: f64) -> Result<(), String> {
        let mut by_id: HashMap<u64, &Event> = HashMap::with_capacity(self.events.len());
        for e in &self.events {
            if e.id == 0 {
                return Err(format!("event id 0 is reserved ({})", e.name));
            }
            if by_id.insert(e.id, e).is_some() {
                return Err(format!("duplicate event id {}", e.id));
            }
        }
        for e in &self.events {
            if e.parent == 0 {
                if e.depth != 0 {
                    return Err(format!("root {} has depth {}", e.name, e.depth));
                }
                continue;
            }
            let p = by_id
                .get(&e.parent)
                .ok_or_else(|| format!("{} parents missing event {}", e.name, e.parent))?;
            if p.kind != Kind::Span {
                return Err(format!("{} parents non-span {}", e.name, p.name));
            }
            if e.depth != p.depth + 1 {
                return Err(format!(
                    "{} depth {} under {} depth {}",
                    e.name, e.depth, p.name, p.depth
                ));
            }
            if p.id >= e.id {
                return Err(format!("{} begins before its parent {}", e.name, p.name));
            }
            if e.clock == p.clock && (e.start_s < p.start_s - eps || e.end_s() > p.end_s() + eps) {
                return Err(format!(
                    "{} [{}, {}] escapes parent {} [{}, {}]",
                    e.name,
                    e.start_s,
                    e.end_s(),
                    p.name,
                    p.start_s,
                    p.end_s()
                ));
            }
        }
        Ok(())
    }

    /// Durations-free structural export: one line per event, indented by
    /// nesting depth, `category:name` plus `!` for error spans and `*` for
    /// instants. Timestamps, tracks, and args are deliberately excluded so
    /// the string is byte-stable across shard counts and cost-model
    /// changes — this is what the golden-trace test pins.
    pub fn structure(&self) -> String {
        let mut children: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
        let mut roots: Vec<&Event> = Vec::new();
        for e in &self.events {
            if e.parent == 0 {
                roots.push(e);
            } else {
                children.entry(e.parent).or_default().push(e);
            }
        }
        let mut out = String::new();
        fn emit(out: &mut String, e: &Event, depth: usize, children: &BTreeMap<u64, Vec<&Event>>) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(e.cat.as_str());
            out.push(':');
            out.push_str(e.name);
            if e.err {
                out.push_str(" !");
            }
            if e.kind == Kind::Instant {
                out.push_str(" *");
            }
            out.push('\n');
            if let Some(kids) = children.get(&e.id) {
                for kid in kids {
                    emit(out, kid, depth + 1, children);
                }
            }
        }
        for root in roots {
            emit(&mut out, root, 0, &children);
        }
        out
    }

    /// Chrome trace-event JSON (the "JSON object format"): load the string
    /// in `chrome://tracing` or <https://ui.perfetto.dev>. Modeled-clock
    /// events render under pid 1, wall-clock events under pid 2; device
    /// events use their track as the tid.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(concat!(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,",
            "\"args\":{\"name\":\"modeled time\"}},",
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,",
            "\"args\":{\"name\":\"wall time\"}}"
        ));
        for e in &self.events {
            let pid = match e.clock {
                Clock::Modeled => 1,
                Clock::Wall => 2,
            };
            out.push(',');
            let _ = write!(
                out,
                "{{\"ph\":\"{}\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                match e.kind {
                    Kind::Span => "X",
                    Kind::Instant => "i",
                },
                escape_json(e.name),
                e.cat.as_str(),
                e.start_s * 1e6,
                pid,
                e.track,
            );
            match e.kind {
                Kind::Span => {
                    let _ = write!(out, ",\"dur\":{}", e.dur_s * 1e6);
                }
                Kind::Instant => out.push_str(",\"s\":\"t\""),
            }
            let _ = write!(out, ",\"args\":{{\"id\":{}", e.id);
            if e.parent != 0 {
                let _ = write!(out, ",\"parent\":{}", e.parent);
            }
            if let Some(arg) = e.arg {
                let _ = write!(out, ",\"arg\":{arg}");
            }
            if e.err {
                out.push_str(",\"err\":true");
            }
            out.push_str("}}");
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        );
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-kernel aggregation: count / total / p50 / max seconds, keyed by
/// (engine tier, kernel name). Engines fill one from the device's kernel
/// log after every run (tracer or not), so `LpRunReport::kernel_profile`
/// is always populated; serve telemetry merges profiles across recluster
/// passes.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    rows: BTreeMap<(&'static str, &'static str), KernelRow>,
}

/// Aggregated launches of one kernel on one engine tier.
#[derive(Clone, Debug, Default)]
pub struct KernelRow {
    /// Number of launches.
    pub count: u64,
    /// Total modeled seconds across launches.
    pub total_s: f64,
    /// Slowest single launch.
    pub max_s: f64,
    samples: Vec<f64>,
}

impl KernelRow {
    /// Median launch duration (0 when empty).
    pub fn p50_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("kernel seconds are finite"));
        sorted[sorted.len() / 2]
    }
}

impl KernelProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one launch of `kernel` on `tier`.
    pub fn record(&mut self, tier: &'static str, kernel: &'static str, seconds: f64) {
        let row = self.rows.entry((tier, kernel)).or_default();
        row.count += 1;
        row.total_s += seconds;
        if seconds > row.max_s {
            row.max_s = seconds;
        }
        row.samples.push(seconds);
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &KernelProfile) {
        for (&(tier, kernel), row) in &other.rows {
            let mine = self.rows.entry((tier, kernel)).or_default();
            mine.count += row.count;
            mine.total_s += row.total_s;
            if row.max_s > mine.max_s {
                mine.max_s = row.max_s;
            }
            mine.samples.extend_from_slice(&row.samples);
        }
    }

    /// The same rows re-keyed under `tier`. Wrapper engines (G-Hash is a
    /// preset over the GLP engine) delegate the run but report launches
    /// under their own name.
    #[must_use]
    pub fn retagged(&self, tier: &'static str) -> KernelProfile {
        let mut out = KernelProfile::new();
        for (&(_, kernel), row) in &self.rows {
            let mine = out.rows.entry((tier, kernel)).or_default();
            mine.count += row.count;
            mine.total_s += row.total_s;
            if row.max_s > mine.max_s {
                mine.max_s = row.max_s;
            }
            mine.samples.extend_from_slice(&row.samples);
        }
        out
    }

    /// Whether any launch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of (tier, kernel) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Rows in (tier, kernel) order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &'static str, &KernelRow)> + '_ {
        self.rows.iter().map(|(&(t, k), row)| (t, k, row))
    }

    /// Total seconds across every row.
    pub fn total_seconds(&self) -> f64 {
        self.rows.values().map(|r| r.total_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn nesting_is_structural_and_ordered() {
        let t = Tracer::new();
        let run = t.begin(Category::Run, "GLP", Clock::Modeled, 0.0);
        let iter = t.begin_arg(Category::Iteration, "iteration", Clock::Modeled, 0.0, 0);
        t.complete(Category::Kernel, "pick_label", Clock::Modeled, 0.0, 0.5);
        t.instant(Category::Resilience, "snapshot", Clock::Modeled, 0.6);
        t.end(1.0); // iteration
        t.end(2.0); // run
        let trace = t.finish();
        assert_eq!(trace.events.len(), 4);
        trace.check_well_formed(1e-12).unwrap();
        let kernel = trace.named("pick_label").next().unwrap();
        assert_eq!(kernel.parent, iter);
        assert_eq!(kernel.depth, 2);
        let snap = trace.named("snapshot").next().unwrap();
        assert_eq!(snap.parent, iter);
        assert_eq!(snap.kind, Kind::Instant);
        let run_ev = trace.event(run).unwrap();
        assert_eq!(run_ev.parent, 0);
        assert_eq!(run_ev.dur_s, 2.0);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn fail_open_to_unwinds_innermost_first_and_records_error_span() {
        let t = Tracer::new();
        let mark = t.open_depth();
        t.begin(Category::Run, "GLP", Clock::Modeled, 0.0);
        let iter = t.begin(Category::Iteration, "iteration", Clock::Modeled, 0.1);
        t.begin(Category::Dispatch, "dispatch", Clock::Modeled, 0.2);
        t.fail_open_to(mark, 0.5);
        assert_eq!(t.open_depth(), 0);
        let err = t.take_error_span().expect("error span recorded");
        assert_eq!(err.id, iter, "the failed *iteration* is the anchor");
        assert_eq!(err.depth, 1);
        assert!(t.take_error_span().is_none(), "consumed once");
        t.instant_with_parent(Category::Resilience, "degrade", Clock::Wall, 0.6, Some(err));
        let trace = t.finish();
        trace.check_well_formed(1e-12).unwrap();
        assert!(trace
            .events
            .iter()
            .all(|e| e.kind == Kind::Instant || e.err));
        let degrade = trace.named("degrade").next().unwrap();
        assert_eq!(degrade.parent, iter);
    }

    #[test]
    fn rings_flush_across_threads() {
        let t = Tracer::with_capacity(4, 1 << 16);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                thread::spawn(move || {
                    t.begin(Category::Serve, "apply", Clock::Wall, 0.0);
                    for _ in 0..10 {
                        t.complete(Category::Kernel, "update_vertex", Clock::Modeled, 0.0, 0.1);
                    }
                    t.end(1.0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = t.finish();
        assert_eq!(trace.events.len(), 44);
        assert_eq!(trace.dropped, 0);
        trace.check_well_formed(1e-12).unwrap();
        // ids are unique and sorted even across threads
        assert!(trace.events.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn sink_bound_counts_dropped() {
        let t = Tracer::with_capacity(2, 3);
        for _ in 0..5 {
            t.instant(Category::Serve, "ingest", Clock::Wall, 0.0);
        }
        let trace = t.finish();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 2);
    }

    #[test]
    fn structure_excludes_durations() {
        let build = |scale: f64| {
            let t = Tracer::new();
            t.begin(Category::Run, "GLP", Clock::Modeled, 0.0);
            t.complete(Category::Kernel, "pick_label", Clock::Modeled, 0.0, scale);
            t.end(2.0 * scale);
            t.finish().structure()
        };
        let a = build(1.0);
        let b = build(123.456);
        assert_eq!(a, b, "structure must not depend on timings");
        assert_eq!(a, "run:GLP\n  kernel:pick_label\n");
    }

    #[test]
    fn chrome_json_is_valid_and_scaled_to_micros() {
        let t = Tracer::new();
        t.begin(Category::Run, "GLP", Clock::Modeled, 0.0);
        t.complete(Category::Kernel, "pick_label", Clock::Modeled, 0.25, 0.5);
        t.instant(Category::Resilience, "retry", Clock::Wall, 1.0);
        t.end(2.0);
        let json = t.finish().chrome_json();
        let value = serde_json::from_str(&json).expect("chrome export parses");
        let events = value["traceEvents"].as_array().unwrap();
        // 2 metadata + 3 recorded
        assert_eq!(events.len(), 5);
        let kernel = events
            .iter()
            .find(|e| e["name"].as_str() == Some("pick_label"))
            .unwrap();
        assert_eq!(kernel["ph"].as_str(), Some("X"));
        assert!((kernel["ts"].as_f64().unwrap() - 0.25e6).abs() < 1e-6);
        assert!((kernel["dur"].as_f64().unwrap() - 0.5e6).abs() < 1e-6);
        assert_eq!(kernel["pid"].as_u64(), Some(1));
        let retry = events
            .iter()
            .find(|e| e["name"].as_str() == Some("retry"))
            .unwrap();
        assert_eq!(retry["ph"].as_str(), Some("i"));
        assert_eq!(retry["pid"].as_u64(), Some(2), "wall clock renders apart");
    }

    #[test]
    fn well_formedness_catches_escaping_child() {
        let trace = Trace {
            events: vec![
                Event {
                    id: 1,
                    parent: 0,
                    depth: 0,
                    cat: Category::Run,
                    name: "GLP",
                    clock: Clock::Modeled,
                    track: 0,
                    start_s: 0.0,
                    dur_s: 1.0,
                    kind: Kind::Span,
                    err: false,
                    arg: None,
                },
                Event {
                    id: 2,
                    parent: 1,
                    depth: 1,
                    cat: Category::Kernel,
                    name: "late",
                    clock: Clock::Modeled,
                    track: 0,
                    start_s: 0.9,
                    dur_s: 0.5,
                    kind: Kind::Span,
                    err: false,
                    arg: None,
                },
            ],
            dropped: 0,
        };
        let err = trace.check_well_formed(1e-9).unwrap_err();
        assert!(err.contains("escapes"), "{err}");
    }

    #[test]
    fn kernel_profile_aggregates_by_tier_and_kernel() {
        let mut p = KernelProfile::new();
        p.record("GLP", "pick_label", 0.2);
        p.record("GLP", "pick_label", 0.4);
        p.record("GLP", "pick_label", 0.3);
        p.record("GLP-hybrid", "pick_label", 1.0);
        let mut other = KernelProfile::new();
        other.record("GLP", "pick_label", 0.1);
        p.merge(&other);
        assert_eq!(p.len(), 2);
        let (tier, kernel, row) = p.rows().next().unwrap();
        assert_eq!((tier, kernel), ("GLP", "pick_label"));
        assert_eq!(row.count, 4);
        assert!((row.total_s - 1.0).abs() < 1e-12);
        assert!((row.max_s - 0.4).abs() < 1e-12);
        assert!((row.p50_s() - 0.3).abs() < 1e-12);
        assert!((p.total_seconds() - 2.0).abs() < 1e-12);
    }
}
