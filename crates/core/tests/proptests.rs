//! Property-based end-to-end checks of the GLP engine: for arbitrary small
//! graphs, every kernel path must agree with a brute-force MFL reference
//! under the workspace tie rule, across strategies and variants.

use glp_core::engine::{
    Engine, FrontierMode, GpuEngine, MflStrategy, RunOptions, SequentialEngine,
};
use glp_core::{ClassicLp, Llp, LpProgram};
use glp_graph::{Graph, GraphBuilder, Label, VertexId, INVALID_LABEL};
use proptest::prelude::*;
use std::collections::HashMap;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (
        2usize..40,
        prop::collection::vec((0u32..40, 0u32..40), 1..300),
    )
        .prop_map(|(n, es)| {
            let n = n.max(2);
            let mut b = GraphBuilder::new(n);
            for (s, d) in es {
                b.add_edge(s % n as u32, d % n as u32);
            }
            b.symmetrize(true).dedup(true);
            b.build()
        })
}

/// One synchronous reference iteration of classic LP with the shared tie
/// rule (score desc, current label, then smaller label).
fn reference_step(g: &Graph, labels: &[Label]) -> Vec<Label> {
    let mut next = labels.to_vec();
    for v in 0..g.num_vertices() as VertexId {
        let mut counts: HashMap<Label, u64> = HashMap::new();
        for &u in g.neighbors(v) {
            *counts.entry(labels[u as usize]).or_default() += 1;
        }
        let current = labels[v as usize];
        let mut best: Option<(Label, u64)> = None;
        for (&l, &c) in &counts {
            let wins = match best {
                None => true,
                Some((bl, bc)) => c > bc || (c == bc && bl != current && (l == current || l < bl)),
            };
            if wins {
                best = Some((l, c));
            }
        }
        if let Some((l, _)) = best {
            next[v as usize] = l;
        }
    }
    next
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One engine iteration == the brute-force reference, per strategy.
    #[test]
    fn engine_matches_reference_step(g in arbitrary_graph()) {
        let expected = reference_step(&g, &(0..g.num_vertices() as Label).collect::<Vec<_>>());
        for strategy in [MflStrategy::Global, MflStrategy::Smem, MflStrategy::SmemWarp] {
            let mut engine = GpuEngine::titan_v();
            let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 1);
            engine
                .run(&g, &mut prog, &RunOptions::default().with_strategy(strategy))
                .unwrap();
            prop_assert_eq!(prog.labels(), &expected[..], "{:?}", strategy);
        }
    }

    /// Tiny CMS+HT geometry (forcing overflow + fallback paths) still
    /// produces exact results — §4.1's "not an approximated solution".
    #[test]
    fn tiny_smem_geometry_still_exact(g in arbitrary_graph()) {
        let expected = reference_step(&g, &(0..g.num_vertices() as Label).collect::<Vec<_>>());
        let opts = RunOptions {
            strategy: MflStrategy::SmemWarp,
            ht_slots: 2,
            ht_probe_limit: 1,
            cms_depth: 2,
            cms_width: 8,
            thresholds: glp_core::engine::DegreeThresholds { low: 3, high: 4 },
            mid_ht_slots: 256,
            ..Default::default()
        };
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 1);
        engine.run(&g, &mut prog, &opts).unwrap();
        prop_assert_eq!(prog.labels(), &expected[..]);
    }

    /// Multi-iteration runs: label count never increases and labels are
    /// always drawn from the original id space.
    #[test]
    fn labels_stay_in_domain(g in arbitrary_graph()) {
        let n = g.num_vertices();
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::with_max_iterations(n, 8);
        engine.run(&g, &mut prog, &RunOptions::default()).unwrap();
        for (v, &l) in prog.labels().iter().enumerate() {
            prop_assert!(l != INVALID_LABEL);
            prop_assert!((l as usize) < n, "vertex {v} got out-of-domain label {l}");
        }
    }

    /// LLP with γ=0 is exactly classic LP, for any graph.
    #[test]
    fn llp_gamma_zero_is_classic(g in arbitrary_graph()) {
        let n = g.num_vertices();
        let mut classic = ClassicLp::with_max_iterations(n, 6);
        GpuEngine::titan_v()
            .run(&g, &mut classic, &RunOptions::default())
            .unwrap();
        let mut llp = Llp::with_max_iterations(n, 0.0, 6);
        GpuEngine::titan_v()
            .run(&g, &mut llp, &RunOptions::default())
            .unwrap();
        prop_assert_eq!(classic.labels(), llp.labels());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frontier scheduling is invisible in the results: labels, changed
    /// counts, and iteration counts all match dense execution, for any
    /// graph, on both the BSP and the asynchronous engine.
    #[test]
    fn frontier_is_bit_identical_to_dense(g in arbitrary_graph()) {
        let n = g.num_vertices();
        let dense_opts = RunOptions::default()
            .with_max_iterations(12)
            .with_frontier(FrontierMode::Dense);
        let auto_opts = RunOptions::default().with_max_iterations(12);

        let mut dense = ClassicLp::with_max_iterations(n, 12);
        let rd = GpuEngine::titan_v().run(&g, &mut dense, &dense_opts).unwrap();
        let mut auto = ClassicLp::with_max_iterations(n, 12);
        let ra = GpuEngine::titan_v().run(&g, &mut auto, &auto_opts).unwrap();
        prop_assert_eq!(dense.labels(), auto.labels());
        prop_assert_eq!(&rd.changed_per_iteration, &ra.changed_per_iteration);

        let mut seq_dense = ClassicLp::with_max_iterations(n, 12);
        let sd = SequentialEngine::new()
            .run(&g, &mut seq_dense, &dense_opts)
            .unwrap();
        let mut seq_auto = ClassicLp::with_max_iterations(n, 12);
        let sa = SequentialEngine::new()
            .run(&g, &mut seq_auto, &auto_opts)
            .unwrap();
        prop_assert_eq!(seq_dense.labels(), seq_auto.labels());
        prop_assert_eq!(&sd.changed_per_iteration, &sa.changed_per_iteration);
    }
}
