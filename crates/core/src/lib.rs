//! # glp-core — the GLP framework
//!
//! GLP (paper §3) is a GPU framework for user-customizable label
//! propagation. Data engineers implement four small callbacks (Table 1) and
//! the framework runs the bulk-synchronous iteration on the device:
//!
//! | API | role |
//! |-----|------|
//! | `pick_label(v)`                | decide `v`'s outgoing label this round |
//! | `load_neighbor(v, u)`          | label + weight contributed by neighbor `u` |
//! | `label_score(v, l, freq)`      | score of candidate label `l` for `v` |
//! | `update_vertex(v, l, score)`   | absorb the winning label |
//!
//! Each iteration runs three phases (Figure 2): **PickLabel** →
//! **LabelPropagation** (find the best-scoring label per vertex — the MFL
//! for classic LP) → **UpdateVertex**.
//!
//! The [`engine::GpuEngine`] implements LabelPropagation with the paper's
//! degree-bucketed kernels (§4): warp-packed intrinsics for low-degree
//! vertices, one-warp-one-vertex shared hash tables for the mid range, and
//! block-per-vertex CMS+HT for high-degree vertices — with a per-vertex
//! global-memory fallback whose frequency Theorem 1 bounds. The
//! [`engine::HybridEngine`] streams graphs that exceed device memory
//! (§3.1), and [`engine::MultiGpuEngine`] splits work across devices
//! (§5.4). Ready-made programs for classic LP, LLP, SLP, and the
//! fraud-pipeline variants live in [`variants`].
//!
//! Every engine (and every baseline elsewhere in the workspace) is driven
//! through the [`Engine`] trait with a shared [`RunOptions`]; active-
//! frontier scheduling ([`FrontierMode`]) is on by default for programs
//! that declare [`LpProgram::sparse_activation`].
//!
//! # Example
//!
//! ```
//! use glp_core::engine::GpuEngine;
//! use glp_core::{ClassicLp, Engine, LpProgram, RunOptions};
//! use glp_graph::gen::two_cliques_bridge;
//!
//! let graph = two_cliques_bridge(6); // two 6-cliques joined by one edge
//! let mut program = ClassicLp::new(graph.num_vertices());
//! // `run` is fallible: the simulated device can fault (see `EngineError`
//! // and `ResilientEngine` for recovery). A healthy device never errors.
//! let report = GpuEngine::titan_v()
//!     .run(&graph, &mut program, &RunOptions::default())
//!     .expect("healthy device");
//!
//! // Classic LP finds the two cliques as two communities.
//! let labels = program.labels();
//! assert!(labels[..6].iter().all(|&l| l == labels[0]));
//! assert!(labels[6..].iter().all(|&l| l == labels[6]));
//! assert!(report.modeled_seconds > 0.0);
//! ```

pub mod api;
pub mod community;
pub mod engine;
pub mod ordering;
pub mod report;
pub mod variants;

pub use api::{LpProgram, NeighborContribution};
pub use engine::{
    replay_delta, BarrierEvent, BarrierHook, DeltaReplay, Direction, Engine, EngineError,
    FrontierMode, GpuEngine, HybridEngine, MemoRecorder, MflStrategy, MultiGpuEngine,
    ResilienceReport, ResilientEngine, RunOptions, SequentialEngine, SweepOrder,
};
pub use report::LpRunReport;
pub use variants::{CapacityLp, ClassicLp, Llp, RiskWeightedLp, SeededLp, Slp, WeightedLp};
