//! Run reports: what an engine hands back besides the labels themselves.

use crate::engine::Direction;
use glp_gpusim::KernelCounters;
use glp_trace::KernelProfile;

/// Summary of one LP run on any engine.
#[derive(Clone, Debug, Default)]
pub struct LpRunReport {
    /// Iterations executed.
    pub iterations: u32,
    /// Modeled elapsed seconds (cost-model time; comparable across all
    /// engines in this workspace).
    pub modeled_seconds: f64,
    /// Modeled seconds spent on host↔device transfers (hybrid/multi-GPU).
    pub transfer_seconds: f64,
    /// Host wall-clock seconds the simulation itself took (secondary
    /// metric; not comparable to `modeled_seconds`).
    pub wall_seconds: f64,
    /// Label changes per iteration (convergence trace).
    pub changed_per_iteration: Vec<u64>,
    /// Vertices recomputed per iteration: the non-isolated vertex count
    /// when dense, the shrinking frontier under
    /// [`FrontierMode::Auto`](crate::FrontierMode) with a
    /// sparse-activation program (active-set decay trace).
    pub active_per_iteration: Vec<u64>,
    /// Modeled seconds spent in each iteration (cost-decay trace: under
    /// the frontier optimization, converging runs get cheaper per round).
    pub iteration_seconds: Vec<f64>,
    /// How each iteration's frontier was rebuilt:
    /// [`Direction::Dense`](crate::Direction) when no frontier is
    /// maintained, otherwise the push/pull choice — forced by
    /// [`FrontierMode::Push`](crate::FrontierMode)/`Pull`, or made
    /// per-iteration by `Auto`'s cost-model crossover. Entry `t` is the
    /// direction that built the frontier iteration `t + 1` consumes.
    pub direction_per_iteration: Vec<Direction>,
    /// GPU event totals (zeroed for CPU engines).
    pub gpu_counters: KernelCounters,
    /// High-degree vertices that needed the global-memory fallback
    /// (the quantity Theorem 1 bounds), summed over iterations.
    pub smem_fallbacks: u64,
    /// High-degree vertices processed by the CMS+HT kernel, summed over
    /// iterations (denominator for the fallback rate).
    pub smem_vertices: u64,
    /// Modeled seconds spent on per-barrier checkpoint snapshots (only
    /// non-zero when a [`BarrierHook`](crate::BarrierHook) is installed —
    /// included in `modeled_seconds`, broken out so the overhead of
    /// fault tolerance is visible).
    pub snapshot_seconds: f64,
    /// Barrier snapshots taken (one per completed iteration when a hook
    /// is installed).
    pub snapshots_taken: u64,
    /// Per-kernel aggregation (count / total / p50 / max modeled seconds,
    /// keyed by engine tier and kernel name) over this run's launches.
    /// Filled from the device's kernel log whether or not a tracer is
    /// attached; empty for the host-only engines.
    pub kernel_profile: KernelProfile,
}

impl LpRunReport {
    /// Modeled seconds per iteration (what Figure 7 reports).
    pub fn seconds_per_iteration(&self) -> f64 {
        self.modeled_seconds / f64::from(self.iterations.max(1))
    }

    /// Fraction of high-degree vertices that fell back to global memory.
    pub fn fallback_rate(&self) -> f64 {
        if self.smem_vertices == 0 {
            0.0
        } else {
            self.smem_fallbacks as f64 / self.smem_vertices as f64
        }
    }

    /// Transfer share of total modeled time (the paper's "<10%" claim).
    pub fn transfer_fraction(&self) -> f64 {
        if self.modeled_seconds == 0.0 {
            0.0
        } else {
            self.transfer_seconds / self.modeled_seconds
        }
    }

    /// Iterations whose frontier rebuild ran in `direction` — the bench
    /// tables summarize `Auto` runs as push/pull counts with this.
    pub fn direction_count(&self, direction: Direction) -> usize {
        self.direction_per_iteration
            .iter()
            .filter(|&&d| d == direction)
            .count()
    }

    /// Share of modeled time spent on checkpoint snapshots — the price of
    /// iteration-granular resume.
    pub fn snapshot_fraction(&self) -> f64 {
        if self.modeled_seconds == 0.0 {
            0.0
        } else {
            self.snapshot_seconds / self.modeled_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_trace_roundtrip() {
        let r = LpRunReport {
            iterations: 2,
            iteration_seconds: vec![0.5, 0.25],
            ..Default::default()
        };
        assert_eq!(r.iteration_seconds.len(), r.iterations as usize);
        assert!(r.iteration_seconds[1] < r.iteration_seconds[0]);
    }

    #[test]
    fn derived_rates() {
        let r = LpRunReport {
            iterations: 4,
            modeled_seconds: 2.0,
            transfer_seconds: 0.1,
            smem_fallbacks: 5,
            smem_vertices: 100,
            ..Default::default()
        };
        assert_eq!(r.seconds_per_iteration(), 0.5);
        assert_eq!(r.fallback_rate(), 0.05);
        assert_eq!(r.transfer_fraction(), 0.05);
    }

    #[test]
    fn snapshot_overhead_is_a_fraction_of_modeled_time() {
        let r = LpRunReport {
            modeled_seconds: 2.0,
            snapshot_seconds: 0.2,
            snapshots_taken: 4,
            ..Default::default()
        };
        assert_eq!(r.snapshot_fraction(), 0.1);
        assert_eq!(LpRunReport::default().snapshot_fraction(), 0.0);
    }

    #[test]
    fn direction_counts_summarize_the_trace() {
        let r = LpRunReport {
            iterations: 4,
            direction_per_iteration: vec![
                Direction::Pull,
                Direction::Pull,
                Direction::Push,
                Direction::Push,
            ],
            ..Default::default()
        };
        assert_eq!(r.direction_count(Direction::Pull), 2);
        assert_eq!(r.direction_count(Direction::Push), 2);
        assert_eq!(r.direction_count(Direction::Dense), 0);
        assert_eq!(
            r.direction_per_iteration.len(),
            r.iterations as usize,
            "one direction recorded per iteration"
        );
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = LpRunReport::default();
        assert_eq!(r.seconds_per_iteration(), 0.0);
        assert_eq!(r.fallback_rate(), 0.0);
        assert_eq!(r.transfer_fraction(), 0.0);
    }
}
