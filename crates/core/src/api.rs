//! The user-defined APIs of Table 1.
//!
//! An [`LpProgram`] owns all algorithm state (label arrays, label
//! memories, volumes, …). Engines drive it through the bulk-synchronous
//! protocol below; the contract is:
//!
//! 1. `begin_iteration(it)` — per-round setup (e.g. LLP recomputes label
//!    volumes, SLP advances its speaker draw).
//! 2. `pick_label(v)` for every vertex — produces the label `v` *speaks*
//!    this round. Engines cache the result in a dense array `L` so the
//!    propagation kernels read labels coalesced instead of re-invoking
//!    user code per edge.
//! 3. For every vertex, the engine aggregates `load_neighbor` weights per
//!    distinct spoken label and scores each candidate with `label_score`;
//!    the best-scoring label wins (ties break toward the smaller label,
//!    everywhere, making all engines bit-deterministic and comparable).
//! 4. `update_vertex(v, winner, score)` for every vertex — returns whether
//!    `v`'s state changed (the convergence signal).
//! 5. `end_iteration(it)` then `finished(it, changed)`.
//!
//! Engines never look inside the program's state; baselines drive the same
//! trait so results are comparable across all seven execution engines.

use glp_graph::{EdgeId, Label, VertexId};

/// What one neighbor contributes to the frequency aggregation: the label it
/// speaks and the weight it adds (1.0 for unweighted classic LP).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborContribution {
    /// The spoken label.
    pub label: Label,
    /// Aggregation weight.
    pub weight: f64,
}

/// A label-propagation algorithm expressed through the Table 1 APIs.
///
/// `Sync` is required because the LabelPropagation phase shards vertices
/// across threads with shared read-only access to the program.
pub trait LpProgram: Sync {
    /// Number of vertices (must match the graph the engine runs on).
    fn num_vertices(&self) -> usize;

    /// Phase 1: the label vertex `v` speaks this round.
    fn pick_label(&self, v: VertexId) -> Label;

    /// The weight neighbor `u` contributes to `v`'s aggregation. `label`
    /// is `u`'s spoken label this round (from the cached `L` array) and
    /// `edge` the incoming-CSR edge index (for weight lookups); programs
    /// that re-weight per edge (e.g. transaction amounts) override this.
    /// The default contributes weight 1.
    fn load_neighbor(
        &self,
        _v: VertexId,
        _u: VertexId,
        _edge: EdgeId,
        label: Label,
    ) -> NeighborContribution {
        NeighborContribution { label, weight: 1.0 }
    }

    /// Score of candidate label `l` for `v`, given `freq`, the aggregated
    /// weight of `l` among `v`'s neighbors. Classic LP returns `freq`.
    fn label_score(&self, v: VertexId, l: Label, freq: f64) -> f64;

    /// Phase 3: absorb the winning label. Returns true if `v`'s visible
    /// state changed (drives convergence detection). `winner` is `None`
    /// for isolated vertices (no neighbors spoke).
    ///
    /// Contract: within one iteration, every BSP engine invokes this in
    /// ascending vertex order exactly once per vertex. Programs whose
    /// updates interact (e.g. `CapacityLp`'s online admission) may rely on
    /// that order; engines must preserve it.
    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool;

    /// Hook before each iteration (default: nothing).
    fn begin_iteration(&mut self, _iteration: u32) {}

    /// Hook after each iteration's updates (default: nothing).
    fn end_iteration(&mut self, _iteration: u32) {}

    /// Termination test, consulted after each iteration. `changed` is the
    /// number of vertices whose `update_vertex` returned true.
    fn finished(&self, iteration: u32, changed: u64) -> bool;

    /// Whether a vertex's decision depends *only* on its neighbors' spoken
    /// labels (no global state, no per-iteration randomness). When true,
    /// frontier-based engines (Ligra) may skip vertices none of whose
    /// neighbors changed — classic/seeded/weighted LP qualify; LLP (global
    /// volumes) and SLP (random speaker draws) do not. Default: false
    /// (always safe).
    fn sparse_activation(&self) -> bool {
        false
    }

    /// Current label assignment (for result extraction and cross-engine
    /// comparison).
    fn labels(&self) -> &[Label];

    /// Serializes the program's *mutable* state at a BSP barrier into an
    /// opaque byte blob, or `None` when the program does not support
    /// checkpointing (the default). A program returning `Some` promises
    /// that `restore_state` with that blob, followed by re-running from
    /// the next iteration, reproduces the exact run — including any
    /// per-iteration randomness, which must therefore be part of the
    /// blob.
    ///
    /// [`ResilientEngine`](crate::ResilientEngine) refuses to retry or
    /// degrade programs without checkpoint support: re-driving
    /// `begin_iteration` against un-restored state would diverge.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by `save_state`. Returns false (and must
    /// leave the program unchanged) when the blob is not recognized.
    /// Default: refuses everything, matching the `save_state` default.
    fn restore_state(&mut self, _blob: &[u8]) -> bool {
        false
    }
}

/// Encodes a label array little-endian — the shared helper for
/// [`LpProgram::save_state`] implementations whose mutable state is one
/// label vector.
pub fn labels_to_blob(labels: &[Label]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(labels.len() * 4);
    for &l in labels {
        blob.extend_from_slice(&l.to_le_bytes());
    }
    blob
}

/// Decodes a blob written by [`labels_to_blob`]. `None` on any length
/// mismatch, so `restore_state` impls can refuse foreign blobs.
pub fn blob_to_labels(blob: &[u8], expect_len: usize) -> Option<Vec<Label>> {
    if blob.len() != expect_len * 4 {
        return None;
    }
    Some(
        blob.chunks_exact(4)
            .map(|c| Label::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal program used to pin the trait's default implementations.
    struct Fixed {
        labels: Vec<Label>,
    }

    impl LpProgram for Fixed {
        fn num_vertices(&self) -> usize {
            self.labels.len()
        }
        fn pick_label(&self, v: VertexId) -> Label {
            self.labels[v as usize]
        }
        fn label_score(&self, _v: VertexId, _l: Label, freq: f64) -> f64 {
            freq
        }
        fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
            match winner {
                Some((l, _)) if l != self.labels[v as usize] => {
                    self.labels[v as usize] = l;
                    true
                }
                _ => false,
            }
        }
        fn finished(&self, _iteration: u32, changed: u64) -> bool {
            changed == 0
        }
        fn labels(&self) -> &[Label] {
            &self.labels
        }
    }

    #[test]
    fn default_load_neighbor_weight_is_one() {
        let p = Fixed { labels: vec![7, 8] };
        let c = p.load_neighbor(0, 1, 0, 8);
        assert_eq!(
            c,
            NeighborContribution {
                label: 8,
                weight: 1.0
            }
        );
    }

    #[test]
    fn update_vertex_reports_change() {
        let mut p = Fixed { labels: vec![7, 8] };
        assert!(p.update_vertex(0, Some((9, 1.0))));
        assert!(!p.update_vertex(0, Some((9, 1.0))));
        assert!(!p.update_vertex(1, None));
    }

    #[test]
    fn default_checkpointing_is_refused() {
        let mut p = Fixed { labels: vec![7, 8] };
        assert!(p.save_state().is_none());
        assert!(!p.restore_state(&[1, 2, 3]));
        assert_eq!(p.labels(), &[7, 8]);
    }

    #[test]
    fn label_blob_roundtrip_and_length_check() {
        let labels = vec![0u32, 1, u32::MAX, 12345];
        let blob = labels_to_blob(&labels);
        assert_eq!(blob_to_labels(&blob, 4).as_deref(), Some(&labels[..]));
        assert!(blob_to_labels(&blob, 3).is_none());
        assert!(blob_to_labels(&blob[1..], 4).is_none());
    }
}
