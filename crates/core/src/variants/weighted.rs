//! Edge-weighted classic LP.
//!
//! Transaction graphs carry multiplicities/amounts as edge weights (the
//! `GraphBuilder` sums duplicate transactions into weights); weighted LP
//! aggregates those instead of plain counts — a one-override customization
//! showcasing the `LoadNeighbor` API of Table 1.

use crate::api::{blob_to_labels, labels_to_blob, LpProgram, NeighborContribution};
use glp_graph::{EdgeId, Label, VertexId};
use std::sync::Arc;

/// Classic LP where each neighbor contributes its incoming-edge weight.
///
/// An optional **retention bonus** adds a fixed weight to the vertex's own
/// current label. On bipartite graphs (user–item transaction networks)
/// synchronous LP oscillates label sets between the two sides; retention
/// damps the oscillation so tightly-knit blobs converge to one label while
/// weakly-connected vertices keep their own — exactly the "small
/// suspicious clusters" behaviour the fraud pipeline needs.
#[derive(Clone, Debug)]
pub struct WeightedLp {
    labels: Vec<Label>,
    /// Weights indexed by incoming-CSR edge id (shared with the graph).
    weights: Arc<Vec<f32>>,
    /// Score bonus for keeping the current label (0 = pure classic).
    retention: f64,
    max_iterations: u32,
}

impl WeightedLp {
    /// Unique initial labels; `weights` must be the incoming CSR's edge
    /// weight array.
    pub fn new(num_vertices: usize, weights: Arc<Vec<f32>>, max_iterations: u32) -> Self {
        Self {
            labels: (0..num_vertices as Label).collect(),
            weights,
            retention: 0.0,
            max_iterations,
        }
    }

    /// Sets the self-retention bonus (see the type docs).
    pub fn with_retention(mut self, retention: f64) -> Self {
        assert!(retention >= 0.0, "retention must be non-negative");
        self.retention = retention;
        self
    }

    /// Builds from a weighted graph, cloning its weight array once.
    ///
    /// # Panics
    /// Panics if the graph is unweighted.
    pub fn from_graph(g: &glp_graph::Graph, max_iterations: u32) -> Self {
        let w = g
            .incoming()
            .weights()
            .expect("WeightedLp requires a weighted graph")
            .to_vec();
        Self::new(g.num_vertices(), Arc::new(w), max_iterations)
    }
}

impl LpProgram for WeightedLp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    fn load_neighbor(
        &self,
        _v: VertexId,
        _u: VertexId,
        edge: EdgeId,
        label: Label,
    ) -> NeighborContribution {
        NeighborContribution {
            label,
            weight: f64::from(self.weights[edge as usize]),
        }
    }

    fn label_score(&self, v: VertexId, l: Label, freq: f64) -> f64 {
        if l == self.labels[v as usize] {
            freq + self.retention
        } else {
            freq
        }
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, _)) if l != self.labels[v as usize] => {
                self.labels[v as usize] = l;
                true
            }
            _ => false,
        }
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn sparse_activation(&self) -> bool {
        true
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    // Labels are the only mutable state; the weight arrays and scoring
    // knobs are immutable run configuration.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(labels_to_blob(&self.labels))
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match blob_to_labels(blob, self.labels.len()) {
            Some(labels) => {
                self.labels = labels;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contribution_uses_edge_weight() {
        let p = WeightedLp::new(3, Arc::new(vec![0.5, 2.0]), 20);
        assert_eq!(p.load_neighbor(0, 1, 0, 9).weight, 0.5);
        assert_eq!(p.load_neighbor(0, 2, 1, 9).weight, 2.0);
    }

    #[test]
    #[should_panic(expected = "requires a weighted graph")]
    fn from_unweighted_graph_panics() {
        let g = glp_graph::gen::path(3);
        WeightedLp::from_graph(&g, 20);
    }
}
