//! Risk-weighted seeded propagation — a fraud-team customization example.
//!
//! Blacklist entries come with confidence: a conviction is worth more than
//! a heuristic flag. This variant scores a candidate cluster label by
//! `frequency × risk(seed)`, so high-confidence seeds out-compete weak
//! ones when both reach a vertex. It is `SeededLp` plus one overridden
//! callback — the kind of strategy iteration §3.1's API design exists for.

use crate::api::{blob_to_labels, labels_to_blob, LpProgram, NeighborContribution};
use glp_graph::{EdgeId, Label, VertexId, INVALID_LABEL};

/// Seeded LP where each seed's label carries a risk multiplier.
#[derive(Clone, Debug)]
pub struct RiskWeightedLp {
    labels: Vec<Label>,
    /// Risk multiplier per *label* (indexed by seed vertex id; labels are
    /// seed ids). 0 for non-seed labels.
    risk: Vec<f32>,
    max_iterations: u32,
}

impl RiskWeightedLp {
    /// Seeds with their risk scores (must be positive); everyone else
    /// starts unlabeled.
    ///
    /// # Panics
    /// Panics if any risk is not strictly positive.
    pub fn new(num_vertices: usize, seeds: &[(VertexId, f32)], max_iterations: u32) -> Self {
        let mut labels = vec![INVALID_LABEL; num_vertices];
        let mut risk = vec![0.0f32; num_vertices];
        for &(s, r) in seeds {
            assert!(r > 0.0, "seed risk must be positive");
            labels[s as usize] = s;
            risk[s as usize] = r;
        }
        Self {
            labels,
            risk,
            max_iterations,
        }
    }

    /// The risk multiplier of a label (0 when not a seed label).
    pub fn label_risk(&self, l: Label) -> f32 {
        self.risk.get(l as usize).copied().unwrap_or(0.0)
    }
}

impl LpProgram for RiskWeightedLp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    fn load_neighbor(
        &self,
        _v: VertexId,
        _u: VertexId,
        _edge: EdgeId,
        label: Label,
    ) -> NeighborContribution {
        let weight = if label == INVALID_LABEL { 0.0 } else { 1.0 };
        NeighborContribution { label, weight }
    }

    fn label_score(&self, _v: VertexId, l: Label, freq: f64) -> f64 {
        if l == INVALID_LABEL {
            return f64::MIN;
        }
        // freq × risk: monotone in freq for fixed l, so CMS pruning holds.
        freq * f64::from(self.label_risk(l))
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, score))
                if l != INVALID_LABEL && score > 0.0 && l != self.labels[v as usize] =>
            {
                self.labels[v as usize] = l;
                true
            }
            _ => false,
        }
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn sparse_activation(&self) -> bool {
        true
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    // Labels are the only mutable state; the risk table is configuration.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(labels_to_blob(&self.labels))
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match blob_to_labels(blob, self.labels.len()) {
            Some(labels) => {
                self.labels = labels;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GpuEngine, RunOptions};
    use glp_graph::GraphBuilder;

    /// A vertex pulled equally by two seeds joins the higher-risk one.
    #[test]
    fn higher_risk_seed_wins_contested_vertex() {
        // seeds 0 and 2 both adjacent to vertex 1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(2, 1).symmetrize(true);
        let g = b.build();
        let mut p = RiskWeightedLp::new(3, &[(0, 1.0), (2, 5.0)], 10);
        GpuEngine::titan_v()
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        assert_eq!(p.labels()[1], 2, "vertex 1 should join the risky seed");

        // Flip the risks; the outcome flips.
        let mut p = RiskWeightedLp::new(3, &[(0, 5.0), (2, 1.0)], 10);
        GpuEngine::titan_v()
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        assert_eq!(p.labels()[1], 0);
    }

    #[test]
    fn equal_risk_falls_back_to_tie_rule() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(2, 1).symmetrize(true);
        let g = b.build();
        let mut p = RiskWeightedLp::new(3, &[(0, 2.0), (2, 2.0)], 10);
        GpuEngine::titan_v()
            .run(&g, &mut p, &RunOptions::default())
            .unwrap();
        assert_eq!(p.labels()[1], 0, "tie breaks toward the smaller label");
    }

    #[test]
    #[should_panic(expected = "seed risk must be positive")]
    fn non_positive_risk_rejected() {
        RiskWeightedLp::new(3, &[(0, 0.0)], 10);
    }
}
