//! Classic label propagation (Raghavan, Albert & Kumara 2007 — paper §2.1).

use crate::api::{blob_to_labels, labels_to_blob, LpProgram, NeighborContribution};
use glp_graph::{EdgeId, Label, VertexId};

/// Classic LP: each vertex starts with a unique label (its own id) and
/// repeatedly adopts the most frequent label among its incoming neighbors.
/// Ties break toward the smaller label; the run stops when no label
/// changes or after `max_iterations` (the paper's benchmarks fix 20).
#[derive(Clone, Debug)]
pub struct ClassicLp {
    labels: Vec<Label>,
    max_iterations: u32,
}

impl ClassicLp {
    /// Unique initial labels `0..n`, 20-iteration cap (the paper's
    /// benchmark setting).
    pub fn new(num_vertices: usize) -> Self {
        Self::with_max_iterations(num_vertices, 20)
    }

    /// Unique initial labels with a custom iteration cap.
    pub fn with_max_iterations(num_vertices: usize, max_iterations: u32) -> Self {
        Self {
            labels: (0..num_vertices as Label).collect(),
            max_iterations,
        }
    }

    /// Starts from an explicit label assignment.
    pub fn from_labels(labels: Vec<Label>, max_iterations: u32) -> Self {
        Self {
            labels,
            max_iterations,
        }
    }
}

impl LpProgram for ClassicLp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    fn load_neighbor(
        &self,
        _v: VertexId,
        _u: VertexId,
        _edge: EdgeId,
        label: Label,
    ) -> NeighborContribution {
        NeighborContribution { label, weight: 1.0 }
    }

    fn label_score(&self, _v: VertexId, _l: Label, freq: f64) -> f64 {
        freq
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, _)) if l != self.labels[v as usize] => {
                self.labels[v as usize] = l;
                true
            }
            _ => false,
        }
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn sparse_activation(&self) -> bool {
        true
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    // The label vector is the whole mutable state — `max_iterations` is
    // run configuration — so a barrier checkpoint is just the labels.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(labels_to_blob(&self.labels))
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match blob_to_labels(blob, self.labels.len()) {
            Some(labels) => {
                self.labels = labels;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_labels_unique() {
        let p = ClassicLp::new(4);
        assert_eq!(p.labels(), &[0, 1, 2, 3]);
        assert_eq!(p.pick_label(2), 2);
    }

    #[test]
    fn score_is_frequency() {
        let p = ClassicLp::new(2);
        assert_eq!(p.label_score(0, 9, 3.5), 3.5);
    }

    #[test]
    fn finishes_on_convergence_or_cap() {
        let p = ClassicLp::with_max_iterations(2, 5);
        assert!(p.finished(0, 0));
        assert!(!p.finished(0, 3));
        assert!(p.finished(4, 3));
    }
}
