//! Speaker–listener label propagation (SLPA, Xie et al. 2011 — §3.1).

use crate::api::LpProgram;
use glp_graph::{Label, VertexId};

/// One vertex's bounded label memory: up to `cap` (label, count) pairs.
#[derive(Clone, Debug)]
struct Memory {
    entries: Vec<(Label, u32)>,
}

impl Memory {
    fn seeded(l: Label) -> Self {
        Self {
            entries: vec![(l, 1)],
        }
    }

    /// Adds one observation of `l`; when the memory is full, the weakest
    /// entry is evicted (ties toward the larger label, so behaviour is
    /// deterministic).
    fn observe(&mut self, l: Label, cap: usize) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == l) {
            e.1 += 1;
            return false;
        }
        if self.entries.len() < cap {
            self.entries.push((l, 1));
            return true;
        }
        let (idx, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.1, std::cmp::Reverse(e.0)))
            .expect("memory is non-empty");
        let evicted = self.entries[idx].0 != l;
        self.entries[idx] = (l, 1);
        evicted
    }

    /// Deterministic "random" speaker draw, weighted by observation count.
    fn speak(&self, noise: u64) -> Label {
        let total: u64 = self.entries.iter().map(|e| u64::from(e.1)).sum();
        let mut x = noise % total;
        for &(l, c) in &self.entries {
            if x < u64::from(c) {
                return l;
            }
            x -= u64::from(c);
        }
        self.entries[0].0
    }

    fn dominant(&self) -> Label {
        self.entries
            .iter()
            .max_by_key(|e| (e.1, std::cmp::Reverse(e.0)))
            .expect("memory is non-empty")
            .0
    }
}

/// SLPA: each vertex keeps a bounded memory of labels. Per iteration every
/// vertex *speaks* one label drawn from its memory (weighted by how often
/// it has heard it); every vertex *listens* by taking the most frequent
/// spoken label among its neighbors into memory. Labels heard in at least
/// `threshold` of iterations form the (possibly overlapping) final
/// communities. The speaker draw is derandomized with a seeded hash so
/// every engine produces identical results.
#[derive(Clone, Debug)]
pub struct Slp {
    memories: Vec<Memory>,
    labels_cache: Vec<Label>,
    /// Memory capacity per vertex (the paper's benchmark sets 5).
    max_labels: usize,
    /// Post-processing threshold on a label's share of the memory.
    threshold: f64,
    seed: u64,
    iteration: u32,
    max_iterations: u32,
}

impl Slp {
    /// SLPA with the paper's benchmark settings: 5 labels per vertex,
    /// 20 iterations.
    pub fn new(num_vertices: usize, seed: u64) -> Self {
        Self::with_params(num_vertices, 5, 0.2, 20, seed)
    }

    /// Full parameter control.
    pub fn with_params(
        num_vertices: usize,
        max_labels: usize,
        threshold: f64,
        max_iterations: u32,
        seed: u64,
    ) -> Self {
        assert!(max_labels >= 1, "need at least one label slot");
        assert!((0.0..=1.0).contains(&threshold), "threshold is a fraction");
        Self {
            memories: (0..num_vertices as Label).map(Memory::seeded).collect(),
            labels_cache: (0..num_vertices as Label).collect(),
            max_labels,
            threshold,
            seed,
            iteration: 0,
            max_iterations,
        }
    }

    /// The overlapping-community output: every label whose observation
    /// share in `v`'s memory is at least the threshold.
    pub fn overlapping_labels(&self, v: VertexId) -> Vec<Label> {
        let m = &self.memories[v as usize];
        let total: u32 = m.entries.iter().map(|e| e.1).sum();
        let mut out: Vec<Label> = m
            .entries
            .iter()
            .filter(|e| f64::from(e.1) >= self.threshold * f64::from(total))
            .map(|e| e.0)
            .collect();
        out.sort_unstable();
        out
    }

    /// The full overlapping-community output: for every label kept by at
    /// least one vertex's thresholded memory, the member list. A vertex
    /// appears under several labels when its memory retains several — the
    /// capability SLP exists for (§3.1).
    pub fn overlapping_communities(&self) -> std::collections::HashMap<Label, Vec<VertexId>> {
        let mut out: std::collections::HashMap<Label, Vec<VertexId>> =
            std::collections::HashMap::new();
        for v in 0..self.memories.len() as VertexId {
            for l in self.overlapping_labels(v) {
                out.entry(l).or_default().push(v);
            }
        }
        out
    }

    fn refresh_dominants(&mut self) {
        for (v, m) in self.memories.iter().enumerate() {
            self.labels_cache[v] = m.dominant();
        }
    }

    #[inline]
    fn draw_noise(&self, v: VertexId) -> u64 {
        // SplitMix-style mix of (seed, iteration, vertex).
        let mut x = self
            .seed
            .wrapping_add(u64::from(self.iteration) << 32)
            .wrapping_add(u64::from(v));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl LpProgram for Slp {
    fn num_vertices(&self) -> usize {
        self.memories.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.memories[v as usize].speak(self.draw_noise(v))
    }

    fn label_score(&self, _v: VertexId, _l: Label, freq: f64) -> f64 {
        freq
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, _)) => self.memories[v as usize].observe(l, self.max_labels),
            None => false,
        }
    }

    fn begin_iteration(&mut self, iteration: u32) {
        self.iteration = iteration;
    }

    fn end_iteration(&mut self, _iteration: u32) {
        self.refresh_dominants();
    }

    fn finished(&self, iteration: u32, _changed: u64) -> bool {
        iteration + 1 >= self.max_iterations
    }

    fn labels(&self) -> &[Label] {
        &self.labels_cache
    }

    // The memories (entry *order* included — the speaker draw walks them
    // in order) are the whole mutable state. The per-iteration "random"
    // draw is a pure hash of (seed, iteration, vertex), so no RNG state
    // needs to be captured, and the labels cache is re-derived.
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut blob = Vec::new();
        blob.extend_from_slice(&(self.memories.len() as u32).to_le_bytes());
        for m in &self.memories {
            blob.extend_from_slice(&(m.entries.len() as u32).to_le_bytes());
            for &(l, c) in &m.entries {
                blob.extend_from_slice(&l.to_le_bytes());
                blob.extend_from_slice(&c.to_le_bytes());
            }
        }
        Some(blob)
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        fn take_u32(rd: &mut &[u8]) -> Option<u32> {
            if rd.len() < 4 {
                return None;
            }
            let (head, tail) = rd.split_at(4);
            *rd = tail;
            Some(u32::from_le_bytes([head[0], head[1], head[2], head[3]]))
        }
        let mut rd = blob;
        let parsed = (|| -> Option<Vec<Memory>> {
            let n = take_u32(&mut rd)? as usize;
            if n != self.memories.len() {
                return None;
            }
            let mut memories = Vec::with_capacity(n);
            for _ in 0..n {
                let k = take_u32(&mut rd)? as usize;
                if k == 0 || k > self.max_labels {
                    return None;
                }
                let mut entries = Vec::with_capacity(k);
                for _ in 0..k {
                    let l = take_u32(&mut rd)?;
                    let c = take_u32(&mut rd)?;
                    entries.push((l, c));
                }
                memories.push(Memory { entries });
            }
            rd.is_empty().then_some(memories)
        })();
        match parsed {
            Some(memories) => {
                self.memories = memories;
                self.refresh_dominants();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_accumulates_and_evicts() {
        let mut m = Memory::seeded(7);
        assert!(!m.observe(7, 3)); // reinforce existing
        assert!(m.observe(8, 3));
        assert!(m.observe(9, 3));
        // Memory full at cap 3: a new label evicts the weakest (8 or 9,
        // count 1, tie toward larger label => 9 evicted).
        assert!(m.observe(10, 3));
        let labels: Vec<Label> = m.entries.iter().map(|e| e.0).collect();
        assert!(labels.contains(&7) && labels.contains(&8) && labels.contains(&10));
    }

    #[test]
    fn dominant_is_most_observed() {
        let mut m = Memory::seeded(1);
        m.observe(2, 5);
        m.observe(2, 5);
        assert_eq!(m.dominant(), 2);
    }

    #[test]
    fn speak_is_deterministic_and_weighted() {
        let mut m = Memory::seeded(1);
        m.observe(2, 5);
        m.observe(2, 5);
        // total weight 3: noise 0 -> label 1; noise 1,2 -> label 2
        assert_eq!(m.speak(0), 1);
        assert_eq!(m.speak(1), 2);
        assert_eq!(m.speak(2), 2);
        assert_eq!(m.speak(3), 1);
    }

    #[test]
    fn overlapping_labels_threshold() {
        let mut s = Slp::with_params(1, 5, 0.4, 20, 1);
        s.memories[0] = Memory::seeded(3);
        s.memories[0].observe(3, 5);
        s.memories[0].observe(4, 5);
        // counts: 3 -> 2, 4 -> 1; total 3; threshold 0.4 -> need >= 1.2
        assert_eq!(s.overlapping_labels(0), vec![3]);
    }

    #[test]
    fn overlapping_communities_aggregate() {
        let mut s = Slp::with_params(2, 5, 0.3, 20, 1);
        s.memories[0] = Memory::seeded(3);
        s.memories[0].observe(4, 5);
        s.memories[1] = Memory::seeded(4);
        let c = s.overlapping_communities();
        assert_eq!(c[&4], vec![0, 1], "vertex 0 overlaps into community 4");
        assert_eq!(c[&3], vec![0]);
    }

    #[test]
    fn runs_fixed_iterations() {
        let s = Slp::new(4, 9);
        assert!(!s.finished(5, 0));
        assert!(s.finished(19, 100));
    }
}
