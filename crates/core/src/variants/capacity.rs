//! Capacity-constrained (balanced) label propagation.
//!
//! The paper cites balanced LP for partitioning massive graphs (Ugander &
//! Backstrom [34]; Wang et al. [35]): plain LP produces wildly uneven
//! communities, useless as machine partitions. This variant hard-caps how
//! many vertices a label may hold — a label at capacity scores `-inf` for
//! vertices outside it, so growth spills into the next-best label. A
//! three-callback customization, like everything else in the framework.

use crate::api::{blob_to_labels, labels_to_blob, LpProgram};
use glp_graph::{Label, VertexId};

/// Balanced LP: classic scoring, but a label at its capacity cannot
/// recruit new members.
#[derive(Clone, Debug)]
pub struct CapacityLp {
    labels: Vec<Label>,
    volumes: Vec<u32>,
    /// Maximum vertices per label.
    capacity: u32,
    max_iterations: u32,
}

impl CapacityLp {
    /// Unique initial labels, capacity `capacity` per label, 20-iteration
    /// cap.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(num_vertices: usize, capacity: u32) -> Self {
        Self::with_max_iterations(num_vertices, capacity, 20)
    }

    /// Custom iteration cap.
    pub fn with_max_iterations(num_vertices: usize, capacity: u32, max_iterations: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let mut p = Self {
            labels: (0..num_vertices as Label).collect(),
            volumes: Vec::new(),
            capacity,
            max_iterations,
        };
        p.recompute_volumes();
        p
    }

    /// The per-label capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Size of the largest current community.
    pub fn max_volume(&self) -> u32 {
        self.volumes.iter().copied().max().unwrap_or(0)
    }

    fn recompute_volumes(&mut self) {
        self.volumes.clear();
        self.volumes.resize(self.labels.len(), 0);
        for &l in &self.labels {
            self.volumes[l as usize] += 1;
        }
    }
}

impl LpProgram for CapacityLp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    fn label_score(&self, v: VertexId, l: Label, freq: f64) -> f64 {
        // Selection-time pruning with start-of-iteration volumes: members
        // may stay; outsiders cannot pick an already-full label. (The hard
        // cap is enforced again at update time, below.)
        if self.labels[v as usize] != l && self.volumes[l as usize] >= self.capacity {
            f64::MIN
        } else {
            freq
        }
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, score)) if score > f64::MIN && l != self.labels[v as usize] => {
                // Online admission: volumes are maintained through the
                // update sweep, so the capacity is a hard invariant — a
                // stampede of simultaneous joins admits exactly
                // `capacity` members and rejects the rest (they retry
                // against other labels next iteration).
                if self.volumes[l as usize] >= self.capacity {
                    return false;
                }
                let old = self.labels[v as usize];
                self.volumes[old as usize] -= 1;
                self.volumes[l as usize] += 1;
                self.labels[v as usize] = l;
                true
            }
            _ => false,
        }
    }

    fn begin_iteration(&mut self, _iteration: u32) {
        self.recompute_volumes();
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    // At a barrier the online volumes equal a recount of the labels, so
    // the labels alone are a complete checkpoint.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(labels_to_blob(&self.labels))
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match blob_to_labels(blob, self.labels.len()) {
            Some(labels) => {
                self.labels = labels;
                self.recompute_volumes();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GpuEngine, RunOptions};
    use glp_graph::gen::{caveman, complete};

    #[test]
    fn full_labels_reject_outsiders() {
        let mut p = CapacityLp::new(4, 2);
        p.labels = vec![0, 0, 2, 3];
        p.begin_iteration(0);
        assert_eq!(p.label_score(2, 0, 5.0), f64::MIN); // label 0 is full
        assert_eq!(p.label_score(0, 0, 5.0), 5.0); // members may stay
        assert_eq!(p.label_score(2, 3, 5.0), 5.0);
    }

    #[test]
    fn cap_limits_community_growth() {
        // A 24-clique under classic LP collapses to one label; capacity 8
        // must keep every community at (close to) 8.
        let g = complete(24);
        let mut capped = CapacityLp::with_max_iterations(24, 8, 30);
        GpuEngine::titan_v()
            .run(&g, &mut capped, &RunOptions::default())
            .unwrap();
        assert!(
            capped.max_volume() <= 8,
            "largest community {} exceeds the hard cap",
            capped.max_volume()
        );

        let mut classic = crate::ClassicLp::with_max_iterations(24, 30);
        GpuEngine::titan_v()
            .run(&g, &mut classic, &RunOptions::default())
            .unwrap();
        let uniform = classic.labels().iter().all(|&l| l == classic.labels()[0]);
        assert!(uniform, "classic LP should collapse the clique");
    }

    #[test]
    fn generous_cap_behaves_like_classic() {
        let g = caveman(5, 6);
        let mut capped = CapacityLp::with_max_iterations(30, 1_000, 20);
        GpuEngine::titan_v()
            .run(&g, &mut capped, &RunOptions::default())
            .unwrap();
        let mut classic = crate::ClassicLp::with_max_iterations(30, 20);
        GpuEngine::titan_v()
            .run(&g, &mut classic, &RunOptions::default())
            .unwrap();
        assert_eq!(capped.labels(), classic.labels());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CapacityLp::new(4, 0);
    }
}
