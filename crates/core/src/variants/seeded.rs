//! Seeded label propagation — the fraud-pipeline variant (paper §1, §5.4).
//!
//! TaoBao's pipeline invokes "LP with the stored seeds to discover small
//! susceptible clusters": only labels originating from black-listed seed
//! vertices propagate; everything else starts unlabeled and joins a
//! suspicious cluster only when a seeded label reaches it.

use crate::api::{blob_to_labels, labels_to_blob, LpProgram, NeighborContribution};
use glp_graph::{EdgeId, Label, VertexId, INVALID_LABEL};
use std::sync::Arc;

/// Seeded LP: seeds carry their own id as label, everyone else starts
/// unlabeled ([`INVALID_LABEL`]). Unlabeled neighbors contribute nothing;
/// labeled vertices keep re-evaluating their cluster like classic LP.
///
/// Two production-grade refinements are available:
/// * **edge weights** — transaction multiplicity, so heavy (wash-trading)
///   relationships out-vote incidental ones;
/// * **adoption threshold** — a vertex only *becomes* labeled when the
///   winning score reaches a confidence floor, which keeps seeded labels
///   from flooding the whole connected component and keeps the discovered
///   clusters "small" as the paper describes.
#[derive(Clone, Debug)]
pub struct SeededLp {
    labels: Vec<Label>,
    max_iterations: u32,
    /// Incoming-CSR edge weights (empty = unweighted).
    weights: Arc<Vec<f32>>,
    /// Per-vertex total incoming weight (empty = absolute scoring).
    weighted_degree: Arc<Vec<f64>>,
    /// Minimum winning score for an *unlabeled* vertex to adopt a label.
    /// With `weighted_degree` set, scores are the winning label's *share*
    /// of the vertex's weight, so 0.5 means "majority of my activity".
    min_adoption_score: f64,
}

impl SeededLp {
    /// `seeds` become their own cluster ids; 20-iteration cap.
    pub fn new(num_vertices: usize, seeds: &[VertexId]) -> Self {
        Self::with_max_iterations(num_vertices, seeds, 20)
    }

    /// Custom iteration cap.
    pub fn with_max_iterations(
        num_vertices: usize,
        seeds: &[VertexId],
        max_iterations: u32,
    ) -> Self {
        let mut labels = vec![INVALID_LABEL; num_vertices];
        for &s in seeds {
            labels[s as usize] = s;
        }
        Self {
            labels,
            max_iterations,
            weights: Arc::new(Vec::new()),
            weighted_degree: Arc::new(Vec::new()),
            min_adoption_score: 0.0,
        }
    }

    /// Seeded LP with edge weights and a *relative* adoption-confidence
    /// floor: a vertex's score for a label is that label's share of the
    /// vertex's total incoming weight, and unlabeled vertices only join a
    /// cluster when the winning share reaches `min_adoption_share`
    /// (e.g. 0.5 = the label must account for a majority of the vertex's
    /// activity). This is what keeps seeded clusters *small* instead of
    /// flooding the connected component.
    ///
    /// `weights` must be the graph's incoming-CSR edge weight array and
    /// `weighted_degree[v]` the sum of `v`'s incoming weights.
    pub fn weighted(
        num_vertices: usize,
        seeds: &[VertexId],
        weights: Arc<Vec<f32>>,
        weighted_degree: Arc<Vec<f64>>,
        max_iterations: u32,
        min_adoption_share: f64,
    ) -> Self {
        assert_eq!(weighted_degree.len(), num_vertices, "degree array mismatch");
        let mut p = Self::with_max_iterations(num_vertices, seeds, max_iterations);
        p.weights = weights;
        p.weighted_degree = weighted_degree;
        p.min_adoption_score = min_adoption_share;
        p
    }

    /// Number of currently labeled vertices.
    pub fn labeled_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l != INVALID_LABEL).count()
    }
}

impl LpProgram for SeededLp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    fn load_neighbor(
        &self,
        _v: VertexId,
        _u: VertexId,
        edge: EdgeId,
        label: Label,
    ) -> NeighborContribution {
        // Unlabeled neighbors are silent; labeled ones contribute their
        // edge weight (1 when unweighted).
        let weight = if label == INVALID_LABEL {
            0.0
        } else if self.weights.is_empty() {
            1.0
        } else {
            f64::from(self.weights[edge as usize])
        };
        NeighborContribution { label, weight }
    }

    fn label_score(&self, v: VertexId, l: Label, freq: f64) -> f64 {
        if l == INVALID_LABEL {
            return f64::MIN;
        }
        if self.weighted_degree.is_empty() {
            freq
        } else {
            // The label's share of v's total activity (monotone in freq
            // for fixed v, so the CMS pruning stays lossless).
            freq / self.weighted_degree[v as usize].max(f64::MIN_POSITIVE)
        }
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            // A winner with non-positive frequency means only silence was
            // heard; stay as-is.
            Some((l, score)) if l != INVALID_LABEL && score > 0.0 => {
                let current = self.labels[v as usize];
                // Unlabeled vertices need the confidence floor to join.
                if current == INVALID_LABEL && score < self.min_adoption_score {
                    return false;
                }
                if l != current {
                    self.labels[v as usize] = l;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn sparse_activation(&self) -> bool {
        true
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    // Labels are the only mutable state; the weight arrays and scoring
    // knobs are immutable run configuration.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(labels_to_blob(&self.labels))
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match blob_to_labels(blob, self.labels.len()) {
            Some(labels) => {
                self.labels = labels;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_initialized_rest_unlabeled() {
        let p = SeededLp::new(5, &[1, 3]);
        assert_eq!(
            p.labels(),
            &[INVALID_LABEL, 1, INVALID_LABEL, 3, INVALID_LABEL]
        );
        assert_eq!(p.labeled_count(), 2);
    }

    #[test]
    fn unlabeled_neighbors_are_silent() {
        let p = SeededLp::new(3, &[0]);
        assert_eq!(p.load_neighbor(1, 2, 0, INVALID_LABEL).weight, 0.0);
        assert_eq!(p.load_neighbor(1, 0, 0, 0).weight, 1.0);
    }

    #[test]
    fn invalid_winner_never_adopted() {
        let mut p = SeededLp::new(3, &[0]);
        assert!(!p.update_vertex(1, Some((INVALID_LABEL, 5.0))));
        assert!(!p.update_vertex(1, Some((0, 0.0))));
        assert!(p.update_vertex(1, Some((0, 1.0))));
        assert_eq!(p.labels()[1], 0);
    }
}
