//! Ready-made LP programs (§3.1's examples plus the fraud-pipeline
//! variants).
//!
//! * [`ClassicLp`] — Raghavan et al.'s near-linear community detection:
//!   every vertex adopts its neighbors' most frequent label.
//! * [`Llp`] — Boldi et al.'s layered LP: score `k − γ(v − k)` penalizes
//!   over-large communities.
//! * [`Slp`] — the speaker–listener process (SLPA) for overlapping
//!   communities: bounded per-vertex label memories.
//! * [`SeededLp`] — the fraud-pipeline variant: only labels seeded from the
//!   blacklist propagate, carving out suspicious clusters.
//! * [`WeightedLp`] — classic LP weighted by edge weights (transaction
//!   counts/amounts).
//! * [`CapacityLp`] — balanced LP in the spirit of the partitioning
//!   variants the paper cites [34, 35]: labels have a hard membership cap.
//! * [`RiskWeightedLp`] — seeded LP where blacklist entries carry
//!   confidence multipliers.

mod capacity;
mod classic;
mod llp;
mod risk;
mod seeded;
mod slp;
mod weighted;

pub use capacity::CapacityLp;
pub use classic::ClassicLp;
pub use llp::Llp;
pub use risk::RiskWeightedLp;
pub use seeded::SeededLp;
pub use slp::Slp;
pub use weighted::WeightedLp;
