//! Layered label propagation (Boldi et al. 2011 — paper §3.1).

use crate::api::{blob_to_labels, labels_to_blob, LpProgram};
use glp_graph::{Label, VertexId};

/// LLP: classic LP tends to produce undesirably large communities; LLP
/// scores each candidate label `l` as `val = k − γ·(v − k)` where `k` is
/// the label's frequency among the vertex's neighbors and `v` is the
/// number of vertices carrying `l` *globally* — so joining a huge
/// community costs `γ` per non-neighbor member. `γ = 0` recovers classic
/// LP; the paper sweeps `γ = 2^i, i = 0..=9`.
#[derive(Clone, Debug)]
pub struct Llp {
    labels: Vec<Label>,
    /// Global member count per label, recomputed each iteration.
    volumes: Vec<u32>,
    gamma: f64,
    max_iterations: u32,
}

impl Llp {
    /// Unique initial labels, resolution `gamma`, 20-iteration cap.
    pub fn new(num_vertices: usize, gamma: f64) -> Self {
        Self::with_max_iterations(num_vertices, gamma, 20)
    }

    /// Custom iteration cap.
    pub fn with_max_iterations(num_vertices: usize, gamma: f64, max_iterations: u32) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        let mut llp = Self {
            labels: (0..num_vertices as Label).collect(),
            volumes: Vec::new(),
            gamma,
            max_iterations,
        };
        llp.recompute_volumes();
        llp
    }

    /// The resolution parameter.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn recompute_volumes(&mut self) {
        self.volumes.clear();
        self.volumes.resize(self.labels.len(), 0);
        for &l in &self.labels {
            self.volumes[l as usize] += 1;
        }
    }
}

impl LpProgram for Llp {
    fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    fn pick_label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    fn label_score(&self, _v: VertexId, l: Label, freq: f64) -> f64 {
        // k − γ(v − k); monotone in freq (slope 1 + γ), so the CMS pruning
        // of the high-degree kernel stays lossless.
        let vol = f64::from(self.volumes[l as usize]);
        freq - self.gamma * (vol - freq)
    }

    fn update_vertex(&mut self, v: VertexId, winner: Option<(Label, f64)>) -> bool {
        match winner {
            Some((l, _)) if l != self.labels[v as usize] => {
                self.labels[v as usize] = l;
                true
            }
            _ => false,
        }
    }

    fn begin_iteration(&mut self, _iteration: u32) {
        self.recompute_volumes();
    }

    fn finished(&self, iteration: u32, changed: u64) -> bool {
        changed == 0 || iteration + 1 >= self.max_iterations
    }

    fn labels(&self) -> &[Label] {
        &self.labels
    }

    // The volumes are a pure function of the labels (recomputed by
    // `begin_iteration`), so labels alone checkpoint the program.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(labels_to_blob(&self.labels))
    }

    fn restore_state(&mut self, blob: &[u8]) -> bool {
        match blob_to_labels(blob, self.labels.len()) {
            Some(labels) => {
                self.labels = labels;
                self.recompute_volumes();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_zero_matches_classic_scoring() {
        let p = Llp::new(8, 0.0);
        assert_eq!(p.label_score(0, 3, 5.0), 5.0);
    }

    #[test]
    fn large_communities_penalized() {
        let mut p = Llp::new(6, 1.0);
        // Make label 0 huge: volume 5; label 5 stays singleton.
        p.labels = vec![0, 0, 0, 0, 0, 5];
        p.begin_iteration(0);
        // Both labels seen twice among some vertex's neighbors:
        let big = p.label_score(1, 0, 2.0); // 2 - 1*(5-2) = -1
        let small = p.label_score(1, 5, 2.0); // 2 - 1*(1-2) = 3
        assert_eq!(big, -1.0);
        assert_eq!(small, 3.0);
        assert!(small > big);
    }

    #[test]
    fn score_monotone_in_freq() {
        let p = Llp::new(4, 4.0);
        assert!(p.label_score(0, 1, 3.0) > p.label_score(0, 1, 2.0));
    }

    #[test]
    #[should_panic(expected = "gamma must be non-negative")]
    fn negative_gamma_rejected() {
        Llp::new(4, -1.0);
    }
}
