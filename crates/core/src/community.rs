//! Community extraction and quality measures over a label assignment.
//!
//! The fraud pipeline (paper Figure 1) consumes LP's output as *clusters*:
//! groups of vertices sharing a label. These helpers materialize them and
//! score how well an assignment matches a planted ground truth (used by the
//! correctness tests on generated community graphs).

use glp_graph::{Graph, Label, VertexId, INVALID_LABEL};
use std::collections::HashMap;

/// Groups vertices by label. Vertices labeled [`INVALID_LABEL`] (possible
/// under seeded LP) are skipped.
pub fn communities(labels: &[Label]) -> HashMap<Label, Vec<VertexId>> {
    let mut map: HashMap<Label, Vec<VertexId>> = HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        if l != INVALID_LABEL {
            map.entry(l).or_default().push(v as VertexId);
        }
    }
    map
}

/// Community sizes, descending.
pub fn community_sizes(labels: &[Label]) -> Vec<usize> {
    let mut sizes: Vec<usize> = communities(labels).into_values().map(|v| v.len()).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Number of distinct labels in use.
pub fn num_communities(labels: &[Label]) -> usize {
    let mut seen: Vec<Label> = labels
        .iter()
        .copied()
        .filter(|&l| l != INVALID_LABEL)
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Fraction of edges whose endpoints share a label — high for a good
/// clustering of a community graph (related to coverage in community
/// detection).
pub fn intra_edge_fraction(g: &Graph, labels: &[Label]) -> f64 {
    let mut intra = 0u64;
    let mut total = 0u64;
    for v in 0..g.num_vertices() as VertexId {
        for &u in g.neighbors(v) {
            total += 1;
            if labels[v as usize] == labels[u as usize] && labels[v as usize] != INVALID_LABEL {
                intra += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        intra as f64 / total as f64
    }
}

/// Newman modularity of a label assignment on an undirected graph:
/// `Q = Σ_c (e_c/m − (d_c/2m)²)` where `e_c` is the number of undirected
/// intra-community edges, `d_c` the community's total degree and `m` the
/// number of undirected edges. In [-0.5, 1]; higher is better. Vertices
/// labeled [`INVALID_LABEL`] form no community (their edges only hurt).
pub fn modularity(g: &Graph, labels: &[Label]) -> f64 {
    assert_eq!(labels.len(), g.num_vertices(), "assignment/graph mismatch");
    let m2 = g.num_edges() as f64; // 2m: directed edge count of a symmetric graph
    if m2 == 0.0 {
        return 0.0;
    }
    let mut intra2: HashMap<Label, f64> = HashMap::new(); // 2*e_c
    let mut degree: HashMap<Label, f64> = HashMap::new(); // d_c
    for v in 0..g.num_vertices() as VertexId {
        let lv = labels[v as usize];
        if lv == INVALID_LABEL {
            continue;
        }
        *degree.entry(lv).or_default() += f64::from(g.degree(v));
        for &u in g.neighbors(v) {
            if labels[u as usize] == lv {
                *intra2.entry(lv).or_default() += 1.0;
            }
        }
    }
    let mut q = 0.0;
    for (l, &d) in &degree {
        let e2 = intra2.get(l).copied().unwrap_or(0.0);
        q += e2 / m2 - (d / m2) * (d / m2);
    }
    q
}

/// Normalized mutual information between a label assignment and a
/// ground-truth partition, in [0, 1] (1 = identical partitions up to
/// renaming). The standard community-detection quality measure.
pub fn nmi(labels: &[Label], truth: &[u32]) -> f64 {
    assert_eq!(
        labels.len(),
        truth.len(),
        "assignment/truth length mismatch"
    );
    let n = labels.len() as f64;
    if labels.is_empty() {
        return 1.0;
    }
    let mut joint: HashMap<(Label, u32), f64> = HashMap::new();
    let mut pa: HashMap<Label, f64> = HashMap::new();
    let mut pb: HashMap<u32, f64> = HashMap::new();
    for (&l, &t) in labels.iter().zip(truth) {
        *joint.entry((l, t)).or_default() += 1.0;
        *pa.entry(l).or_default() += 1.0;
        *pb.entry(t).or_default() += 1.0;
    }
    let h = |counts: &HashMap<_, f64>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha: f64 = h(&pa);
    let hb: f64 = h(&pb);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both partitions trivial and identical
    }
    let mut mi = 0.0;
    for (&(l, t), &c) in &joint {
        let pxy = c / n;
        let px = pa[&l] / n;
        let py = pb[&t] / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    // Arithmetic-mean normalization.
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Purity of the assignment against a ground-truth partition: for each
/// found community, the fraction of members sharing its majority truth
/// class, averaged weighted by community size.
pub fn purity(labels: &[Label], truth: &[u32]) -> f64 {
    assert_eq!(
        labels.len(),
        truth.len(),
        "assignment/truth length mismatch"
    );
    let found = communities(labels);
    let mut weighted = 0.0;
    let mut covered = 0usize;
    for members in found.values() {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &v in members {
            *counts.entry(truth[v as usize]).or_default() += 1;
        }
        let majority = counts.values().copied().max().unwrap_or(0);
        weighted += majority as f64;
        covered += members.len();
    }
    if covered == 0 {
        0.0
    } else {
        weighted / covered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_graph::gen::two_cliques_bridge;

    #[test]
    fn groups_by_label() {
        let labels = vec![5, 5, 9, INVALID_LABEL];
        let c = communities(&labels);
        assert_eq!(c.len(), 2);
        assert_eq!(c[&5], vec![0, 1]);
        assert_eq!(c[&9], vec![2]);
        assert_eq!(num_communities(&labels), 2);
        assert_eq!(community_sizes(&labels), vec![2, 1]);
    }

    #[test]
    fn intra_fraction_perfect_split() {
        let g = two_cliques_bridge(4);
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let f = intra_edge_fraction(&g, &labels);
        // 26 directed edges total (2*12 clique + 2 bridge); 24 intra.
        assert!((f - 24.0 / 26.0).abs() < 1e-12, "{f}");
    }

    #[test]
    fn purity_perfect_and_mixed() {
        let truth = vec![0, 0, 1, 1];
        assert_eq!(purity(&[7, 7, 8, 8], &truth), 1.0);
        assert_eq!(purity(&[7, 7, 7, 7], &truth), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn purity_checks_lengths() {
        purity(&[1], &[1, 2]);
    }

    #[test]
    fn modularity_perfect_split_beats_merged() {
        let g = two_cliques_bridge(5);
        let split = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let merged = vec![0; 10];
        let qs = modularity(&g, &split);
        let qm = modularity(&g, &merged);
        assert!(qs > 0.3, "split modularity {qs}");
        assert!((qm - 0.0).abs() < 1e-12, "one community has Q=0, got {qm}");
        assert!(qs > qm);
    }

    #[test]
    fn modularity_singletons_negative() {
        let g = two_cliques_bridge(4);
        let singletons: Vec<u32> = (0..8).collect();
        assert!(modularity(&g, &singletons) < 0.0);
    }

    #[test]
    fn nmi_identical_up_to_renaming_is_one() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let relabeled = vec![9, 9, 4, 4, 7, 7];
        assert!((nmi(&relabeled, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_orderings() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let perfect = vec![5, 5, 5, 6, 6, 6];
        let partial = vec![5, 5, 6, 6, 6, 6];
        let trivial = vec![1, 1, 1, 1, 1, 1];
        let p = nmi(&perfect, &truth);
        let q = nmi(&partial, &truth);
        let t = nmi(&trivial, &truth);
        assert!(p > q, "{p} !> {q}");
        assert!(q > t, "{q} !> {t}");
        assert!((t - 0.0).abs() < 1e-12, "trivial partition carries no info");
    }

    #[test]
    fn nmi_symmetric() {
        let a = vec![0, 0, 1, 1, 2, 2, 2];
        let b = vec![4u32, 4, 4, 1, 1, 2, 2];
        let ab = nmi(&a, &b);
        let ba = nmi(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
    }
}
