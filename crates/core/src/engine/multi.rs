//! Multi-GPU execution (§5.4: "with two GPUs, GLP further achieves 1.8x
//! speedup on average").
//!
//! Vertices are split into per-device contiguous ranges balanced by edge
//! count. Every device keeps a full replica of the spoken-label array (the
//! paper's two-GPU Titan V setup has ample memory for labels); after each
//! iteration the devices exchange their ranges' fresh labels over PCIe and
//! synchronize, which is what keeps the two-GPU speedup below 2x.
//!
//! # Fault handling
//!
//! Losing a device mid-run does not fail the job while any device
//! survives: the engine **repartitions** the graph across the survivors
//! (re-uploading their new shares, charged as transfer time) and re-drives
//! the interrupted iteration. The iteration is structured so that every
//! fallible device operation happens *before* the host applies
//! `update_vertex` — re-driving the device phase after a loss therefore
//! never double-applies an update, and the labels stay byte-identical to a
//! fault-free run. Only when the last device dies does `run` return
//! [`EngineError::DeviceLost`].

use super::dispatch::Buckets;
use super::gpu::{
    charge_frontier, charge_frontier_density, charge_pull_gather, charge_snapshot,
    choose_direction, dispatch_name, initial_active, pick_labels, profile_from_log, propagate,
    recompute_active, recompute_active_pull, trace_fail, trace_run_begin,
};
use super::kernels::ShardStats;
use super::options::BarrierEvent;
use super::{Decision, Direction, Engine, EngineError, RunOptions};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_gpusim::{DeviceConfig, DeviceError, MultiGpu};
use glp_graph::partition::{partition_even, VertexRange};
use glp_graph::{Graph, Label, VertexId};
use glp_trace::{Category, Clock};
use std::time::Instant;

/// The multi-GPU engine.
#[derive(Debug)]
pub struct MultiGpuEngine {
    gpus: MultiGpu,
}

impl MultiGpuEngine {
    /// `n` identical devices.
    pub fn new(num_devices: usize, device_cfg: DeviceConfig) -> Self {
        Self {
            gpus: MultiGpu::new(num_devices, device_cfg),
        }
    }

    /// `n` modeled Titan Vs.
    pub fn titan_v(num_devices: usize) -> Self {
        Self::new(num_devices, DeviceConfig::titan_v())
    }

    /// The device set.
    pub fn gpus(&self) -> &MultiGpu {
        &self.gpus
    }
}

/// One partitioning of the graph over the currently-alive devices:
/// partition `i` lives on device `assign[i]`.
struct Layout {
    assign: Vec<usize>,
    ranges: Vec<VertexRange>,
    dev_buckets: Vec<Buckets>,
    /// Upload bytes per partition (freed before a repartition).
    footprints: Vec<u64>,
}

impl Layout {
    fn build(g: &Graph, full: &Buckets, survivors: Vec<usize>, n: usize) -> Self {
        let ranges = partition_even(g, survivors.len());
        let keep = |vs: &[VertexId], lo: VertexId, hi: VertexId| {
            vs.iter()
                .copied()
                .filter(|&v| v >= lo && v < hi)
                .collect::<Vec<_>>()
        };
        let dev_buckets: Vec<Buckets> = ranges
            .iter()
            .map(|r| Buckets {
                isolated: keep(&full.isolated, r.start, r.end),
                warp_packed: keep(&full.warp_packed, r.start, r.end),
                warp_per_vertex: keep(&full.warp_per_vertex, r.start, r.end),
                block_per_vertex: keep(&full.block_per_vertex, r.start, r.end),
                global_hash: keep(&full.global_hash, r.start, r.end),
            })
            .collect();
        let bytes_per_edge: u64 = if g.incoming().is_weighted() { 8 } else { 4 };
        let footprints = ranges
            .iter()
            .map(|r| {
                r.num_edges() * bytes_per_edge + (r.num_vertices() as u64) * 8 + (n as u64) * 8
            })
            .collect();
        Self {
            assign: survivors,
            ranges,
            dev_buckets,
            footprints,
        }
    }

    /// Uploads every partition's share to its device, charging transfer
    /// time. Fails if a device is lost or out of memory.
    fn upload(&self, gpus: &mut MultiGpu, transfer_s: &mut f64) -> Result<(), DeviceError> {
        for (i, &d) in self.assign.iter().enumerate() {
            let dev = gpus.device_mut(d);
            let before = dev.elapsed_seconds();
            dev.upload(self.footprints[i])?;
            *transfer_s += dev.elapsed_seconds() - before;
        }
        gpus.sync();
        Ok(())
    }

    /// Releases every surviving partition's footprint.
    fn free(&self, gpus: &mut MultiGpu) {
        for (i, &d) in self.assign.iter().enumerate() {
            if !gpus.device(d).is_lost() {
                gpus.device_mut(d).free(self.footprints[i]);
            }
        }
    }
}

/// What the fallible device phase of one iteration produced; committed to
/// the program/report only after the whole phase succeeded, so a
/// repartition retry never double-counts.
struct PhaseOut {
    scheduled: u64,
    stats: ShardStats,
    snapshot_s: f64,
    snapshots: u64,
    /// The frontier-rebuild direction this phase took — chosen once on the
    /// host before the per-device charges, so every device (and every
    /// repartition re-drive) agrees.
    direction: Direction,
}

impl Engine for MultiGpuEngine {
    fn name(&self) -> &'static str {
        "GLP-multi"
    }

    /// Runs `prog` on `g` split across the devices, repartitioning across
    /// survivors when a device is lost mid-run.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        opts.validate_for_device(self.gpus.device(0).config().shared_mem_per_block);
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let ndev = self.gpus.len();
        let shards = opts.resolve_shards().div_ceil(ndev).max(1);

        let full = Buckets::build(g, opts.strategy, opts.thresholds);
        let start_elapsed = self.gpus.elapsed_seconds();
        let mut transfer_s = 0.0;

        for i in 0..ndev {
            self.gpus.device_mut(i).set_tracer(opts.tracer.clone());
        }
        let log_marks: Vec<usize> = (0..ndev)
            .map(|i| self.gpus.device(i).kernel_log().len())
            .collect();
        let trace_mark = trace_run_begin(&opts.tracer, self.name(), start_elapsed);

        let mut layout = Layout::build(g, &full, self.gpus.survivors(), n);
        if layout.assign.is_empty() {
            trace_fail(&opts.tracer, trace_mark, self.gpus.elapsed_seconds());
            return Err(EngineError::DeviceLost { device: 0 });
        }
        if let Err(e) = layout.upload(&mut self.gpus, &mut transfer_s) {
            trace_fail(&opts.tracer, trace_mark, self.gpus.elapsed_seconds());
            return Err(e.into());
        }

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        let sparse = opts.frontier.sparse(prog.sparse_activation());
        let mut active = initial_active(n, sparse, opts);
        let mut next_active = vec![false; n];
        let mut report = LpRunReport::default();

        let outcome = (|| -> Result<(), EngineError> {
            let mut last_direction: Option<Direction> = None;
            for iteration in opts.start_iteration..opts.max_iterations {
                let iter_start = self.gpus.elapsed_seconds();
                if let Some(t) = &opts.tracer {
                    t.begin_arg(
                        Category::Iteration,
                        "iteration",
                        Clock::Modeled,
                        iter_start,
                        u64::from(iteration),
                    );
                }
                prog.begin_iteration(iteration);
                // Device phase: everything fallible, nothing host-visible
                // committed. Re-driven in full after a repartition (but
                // begin_iteration is NOT re-called — the program already
                // advanced into this iteration).
                let out = loop {
                    match device_phase(
                        &mut self.gpus,
                        &layout,
                        g,
                        prog,
                        opts,
                        shards,
                        &mut spoken,
                        &mut decisions,
                        &active,
                        &mut next_active,
                        sparse,
                        last_direction,
                        &mut transfer_s,
                    ) {
                        Ok(out) => break out,
                        Err(DeviceError::Lost { .. }) if self.gpus.alive() > 0 => {
                            // Repartition over the survivors and redo the
                            // iteration's device work from pick_labels. The
                            // instant lands inside the still-open iteration
                            // span, marking which iteration was re-driven.
                            if let Some(t) = &opts.tracer {
                                t.instant(
                                    Category::Resilience,
                                    "repartition",
                                    Clock::Modeled,
                                    self.gpus.elapsed_seconds(),
                                );
                            }
                            layout.free(&mut self.gpus);
                            layout = Layout::build(g, &full, self.gpus.survivors(), n);
                            layout.upload(&mut self.gpus, &mut transfer_s)?;
                        }
                        Err(e) => return Err(e.into()),
                    }
                };
                // Commit phase: host-side program updates, in ascending
                // vertex order, exactly once per iteration.
                let mut changed = 0u64;
                for (v, &d) in decisions.iter().enumerate() {
                    if prog.update_vertex(v as VertexId, d) {
                        changed += 1;
                    }
                }
                if sparse {
                    active.copy_from_slice(&next_active);
                }
                last_direction = Some(out.direction);
                prog.end_iteration(iteration);
                report.smem_fallbacks += out.stats.fallbacks;
                report.smem_vertices += out.stats.smem_vertices;
                report.snapshot_seconds += out.snapshot_s;
                report.snapshots_taken += out.snapshots;
                if let Some(hook) = &opts.barrier_hook {
                    hook.fire(&BarrierEvent {
                        iteration,
                        changed,
                        scheduled: out.scheduled,
                        active: if sparse { Some(&active) } else { None },
                        direction: out.direction,
                        program: &*prog,
                    });
                }
                report.active_per_iteration.push(out.scheduled);
                report.changed_per_iteration.push(changed);
                report.direction_per_iteration.push(out.direction);
                report
                    .iteration_seconds
                    .push(self.gpus.elapsed_seconds() - iter_start);
                report.iterations = iteration + 1;
                if let Some(t) = &opts.tracer {
                    t.end(self.gpus.elapsed_seconds());
                }
                if prog.finished(iteration, changed) {
                    break;
                }
            }
            Ok(())
        })();

        layout.free(&mut self.gpus);
        if let Err(e) = outcome {
            trace_fail(&opts.tracer, trace_mark, self.gpus.elapsed_seconds());
            return Err(e);
        }
        if let Some(t) = &opts.tracer {
            t.end(self.gpus.elapsed_seconds());
        }

        report.modeled_seconds = self.gpus.elapsed_seconds() - start_elapsed;
        report.transfer_seconds = transfer_s;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        for d in self.gpus.iter() {
            report.gpu_counters.merge(d.totals());
        }
        for (i, &mark) in log_marks.iter().enumerate() {
            report.kernel_profile.merge(&profile_from_log(
                self.name(),
                &self.gpus.device(i).kernel_log()[mark..],
            ));
        }
        Ok(report)
    }
}

/// The fallible device half of one iteration: pick, propagate, the
/// modeled update/frontier/snapshot kernels, the peer label exchange, and
/// the barrier. Reads the program immutably and writes only the scratch
/// buffers (`spoken`, `decisions`, `next_active`), so it is safe to
/// re-drive after a repartition.
#[allow(clippy::too_many_arguments)]
fn device_phase(
    gpus: &mut MultiGpu,
    layout: &Layout,
    g: &Graph,
    prog: &dyn LpProgram,
    opts: &RunOptions,
    shards: usize,
    spoken: &mut [Label],
    decisions: &mut [Decision],
    active: &[bool],
    next_active: &mut [bool],
    sparse: bool,
    prev_dir: Option<Direction>,
    transfer_s: &mut f64,
) -> Result<PhaseOut, DeviceError> {
    let ndev = layout.assign.len() as u64;
    // PickLabel runs on each device's clock for its own range.
    for (i, &d) in layout.assign.iter().enumerate() {
        let r = &layout.ranges[i];
        let lo = r.start as usize;
        let hi = r.end as usize;
        if lo < hi {
            pick_labels(
                gpus.device_mut(d),
                &mut spoken[lo..hi],
                r.start,
                prog,
                shards,
            )?;
        }
    }
    decisions.iter_mut().for_each(|d| *d = None);
    let all_active = !sparse || active.iter().all(|&a| a);
    let mut scheduled = 0u64;
    let mut stats = ShardStats::default();
    if let Some(t) = &opts.tracer {
        t.begin(
            Category::Dispatch,
            dispatch_name(prev_dir),
            Clock::Modeled,
            gpus.elapsed_seconds(),
        );
    }
    // Errors are collected, not `?`-propagated, so the dispatch span is
    // closed before the repartition retry in `run` re-drives this phase.
    let propagate_result = (|| -> Result<(), DeviceError> {
        for (i, &d) in layout.assign.iter().enumerate() {
            let buckets = &layout.dev_buckets[i];
            // Per-iteration dispatch rebuild over the frontier, like the
            // single-GPU engine (dense fallback for programs without sparse
            // activation).
            let filtered: std::borrow::Cow<'_, Buckets> = if all_active {
                std::borrow::Cow::Borrowed(buckets)
            } else {
                std::borrow::Cow::Owned(buckets.filtered(active))
            };
            scheduled += filtered.scheduled() as u64;
            let st = propagate(
                gpus.device_mut(d),
                g,
                spoken,
                prog,
                &filtered,
                opts,
                shards,
                decisions,
            )?;
            stats.merge(&st);
        }
        Ok(())
    })();
    if let Some(t) = &opts.tracer {
        let now = gpus.elapsed_seconds();
        if propagate_result.is_ok() {
            t.end(now);
        } else {
            t.end_err(now);
        }
    }
    propagate_result?;
    // UpdateVertex: each device writes back its own range (the modeled
    // kernel); the host applies program state only after the whole device
    // phase succeeded.
    for (i, &d) in layout.assign.iter().enumerate() {
        let r = &layout.ranges[i];
        let m = r.num_vertices() as u64;
        gpus.device_mut(d).launch("update_vertex", |ctx| {
            ctx.global_read_seq(0x4_0000_0000 + u64::from(r.start) * 12, m, 12);
            ctx.global_write_seq(0x7_0000_0000 + u64::from(r.start) * 4, m, 4);
            ctx.warps_launched(m.div_ceil(32));
            ctx.alu(2 * m.div_ceil(32));
        })?;
    }
    let direction = if sparse {
        // Direction resolved once on the host (every device carries the
        // same cost model, so one choice serves the fleet — and a
        // repartition re-drive makes the same choice from the same scratch
        // inputs). Under `Auto` each device first pays the density
        // measurement for its own range.
        let dir = choose_direction(
            opts.frontier,
            g,
            spoken,
            decisions,
            gpus.device(layout.assign[0]).cost_model(),
        );
        if opts.frontier == super::FrontierMode::Auto {
            for (i, &d) in layout.assign.iter().enumerate() {
                charge_frontier_density(
                    gpus.device_mut(d),
                    layout.ranges[i].num_vertices() as u64,
                )?;
            }
        }
        // Shared host recompute into the scratch frontier (the live one
        // stays untouched until commit); each device pays the maintenance
        // kernels for its own vertex range.
        let volume = if dir == Direction::Pull {
            recompute_active_pull(g, spoken, decisions, next_active)
        } else {
            recompute_active(g, spoken, decisions, next_active)
        };
        for (i, &d) in layout.assign.iter().enumerate() {
            let r = &layout.ranges[i];
            let share = volume / ndev;
            let range_active = next_active[r.start as usize..r.end as usize]
                .iter()
                .filter(|&&a| a)
                .count() as u64;
            if dir == Direction::Pull {
                charge_pull_gather(
                    gpus.device_mut(d),
                    r.num_vertices() as u64,
                    share,
                    range_active,
                )?;
            } else {
                charge_frontier(
                    gpus.device_mut(d),
                    r.num_vertices() as u64,
                    share,
                    range_active,
                )?;
            }
        }
        dir
    } else {
        Direction::Dense
    };
    let mut snapshot_s = 0.0;
    let mut snapshots = 0u64;
    if opts.barrier_hook.is_some() {
        // Each device reads back its own range's label state.
        let before = gpus.elapsed_seconds();
        for (i, &d) in layout.assign.iter().enumerate() {
            charge_snapshot(gpus.device_mut(d), layout.ranges[i].num_vertices() as u64)?;
        }
        snapshot_s = gpus.elapsed_seconds() - before;
        snapshots = 1;
    }
    // Label exchange: each device ships its range's fresh labels to every
    // peer over the host link, then everyone synchronizes.
    for (i, &d) in layout.assign.iter().enumerate() {
        let bytes = (layout.ranges[i].num_vertices() as u64) * 4 * (ndev - 1);
        let dev = gpus.device_mut(d);
        let before = dev.elapsed_seconds();
        dev.download(bytes);
        *transfer_s += dev.elapsed_seconds() - before;
    }
    gpus.sync();
    Ok(PhaseOut {
        scheduled,
        stats,
        snapshot_s,
        snapshots,
        direction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GpuEngine;
    use crate::variants::ClassicLp;
    use glp_graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};

    #[test]
    fn multi_gpu_matches_single_gpu_labels() {
        let g = caveman(8, 7);
        let opts = RunOptions::default();
        let mut reference = ClassicLp::new(g.num_vertices());
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();
        let mut prog = ClassicLp::new(g.num_vertices());
        let mut engine = MultiGpuEngine::titan_v(2);
        engine.run(&g, &mut prog, &opts).unwrap();
        assert_eq!(prog.labels(), reference.labels());
    }

    #[test]
    fn two_gpus_faster_than_one_but_sublinear() {
        // Large enough that edge work dominates the per-iteration fixed
        // costs (kernel launches, barrier sync) that do not parallelize.
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 30_000,
            avg_degree: 32.0,
            ..Default::default()
        });
        let opts = RunOptions::default().with_max_iterations(10);
        let mut p1 = ClassicLp::with_max_iterations(g.num_vertices(), 10);
        let r1 = GpuEngine::titan_v().run(&g, &mut p1, &opts).unwrap();
        let mut p2 = ClassicLp::with_max_iterations(g.num_vertices(), 10);
        let r2 = MultiGpuEngine::titan_v(2).run(&g, &mut p2, &opts).unwrap();
        let speedup = r1.modeled_seconds / r2.modeled_seconds;
        assert!(speedup > 1.2, "speedup {speedup}");
        assert!(speedup < 2.0, "speedup {speedup}");
    }
}
