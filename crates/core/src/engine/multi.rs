//! Multi-GPU execution (§5.4: "with two GPUs, GLP further achieves 1.8x
//! speedup on average").
//!
//! Vertices are split into per-device contiguous ranges balanced by edge
//! count. Every device keeps a full replica of the spoken-label array (the
//! paper's two-GPU Titan V setup has ample memory for labels); after each
//! iteration the devices exchange their ranges' fresh labels over PCIe and
//! synchronize, which is what keeps the two-GPU speedup below 2x.

use super::dispatch::Buckets;
use super::gpu::{charge_frontier, pick_labels, propagate, recompute_active};
use super::{Decision, Engine, RunOptions};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_gpusim::{DeviceConfig, MultiGpu};
use glp_graph::partition::partition_even;
use glp_graph::{Graph, Label, VertexId};
use std::time::Instant;

/// The multi-GPU engine.
#[derive(Debug)]
pub struct MultiGpuEngine {
    gpus: MultiGpu,
}

impl MultiGpuEngine {
    /// `n` identical devices.
    pub fn new(num_devices: usize, device_cfg: DeviceConfig) -> Self {
        Self {
            gpus: MultiGpu::new(num_devices, device_cfg),
        }
    }

    /// `n` modeled Titan Vs.
    pub fn titan_v(num_devices: usize) -> Self {
        Self::new(num_devices, DeviceConfig::titan_v())
    }

    /// The device set.
    pub fn gpus(&self) -> &MultiGpu {
        &self.gpus
    }
}

impl Engine for MultiGpuEngine {
    fn name(&self) -> &'static str {
        "GLP-multi"
    }

    /// Runs `prog` on `g` split across the devices.
    fn run(&mut self, g: &Graph, prog: &mut dyn LpProgram, opts: &RunOptions) -> LpRunReport {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        opts.validate_for_device(self.gpus.device(0).config().shared_mem_per_block);
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let ndev = self.gpus.len();
        let shards = opts.resolve_shards().div_ceil(ndev).max(1);
        let ranges = partition_even(g, ndev);

        // Per-device buckets restricted to its range.
        let full = Buckets::build(g, opts.strategy, opts.thresholds);
        let keep = |vs: &[VertexId], lo: VertexId, hi: VertexId| {
            vs.iter()
                .copied()
                .filter(|&v| v >= lo && v < hi)
                .collect::<Vec<_>>()
        };
        let dev_buckets: Vec<Buckets> = ranges
            .iter()
            .map(|r| Buckets {
                isolated: keep(&full.isolated, r.start, r.end),
                warp_packed: keep(&full.warp_packed, r.start, r.end),
                warp_per_vertex: keep(&full.warp_per_vertex, r.start, r.end),
                block_per_vertex: keep(&full.block_per_vertex, r.start, r.end),
                global_hash: keep(&full.global_hash, r.start, r.end),
            })
            .collect();

        // Upload: every device holds its CSR share plus a full replica of
        // the two label arrays (decisions are produced on the host side).
        let start_elapsed = self.gpus.elapsed_seconds();
        let mut transfer_s = 0.0;
        let bytes_per_edge: u64 = if g.incoming().is_weighted() { 8 } else { 4 };
        for (d, r) in ranges.iter().enumerate() {
            let dev = self.gpus.device_mut(d);
            let bytes =
                r.num_edges() * bytes_per_edge + (r.num_vertices() as u64) * 8 + (n as u64) * 8;
            let before = dev.elapsed_seconds();
            dev.upload(bytes);
            transfer_s += dev.elapsed_seconds() - before;
        }
        self.gpus.sync();

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        let mut active = vec![true; n];
        let sparse = opts.frontier.sparse(prog.sparse_activation());
        let mut report = LpRunReport::default();

        for iteration in 0..opts.max_iterations {
            let iter_start = self.gpus.elapsed_seconds();
            prog.begin_iteration(iteration);
            // PickLabel runs on device 0's clock for its range, etc.; each
            // device handles its own range of the spoken array.
            for (d, r) in ranges.iter().enumerate() {
                let dev = self.gpus.device_mut(d);
                let lo = r.start as usize;
                let hi = r.end as usize;
                if lo < hi {
                    pick_labels(dev, &mut spoken[lo..hi], r.start, prog, shards);
                }
            }
            decisions.iter_mut().for_each(|d| *d = None);
            let all_active = !sparse || active.iter().all(|&a| a);
            let mut scheduled = 0u64;
            for (d, buckets) in dev_buckets.iter().enumerate() {
                // Per-iteration dispatch rebuild over the frontier, like
                // the single-GPU engine (dense fallback for programs
                // without sparse activation).
                let filtered: std::borrow::Cow<'_, Buckets> = if all_active {
                    std::borrow::Cow::Borrowed(buckets)
                } else {
                    std::borrow::Cow::Owned(buckets.filtered(&active))
                };
                scheduled += filtered.scheduled() as u64;
                let dev = self.gpus.device_mut(d);
                let stats = propagate(
                    dev,
                    g,
                    &spoken,
                    prog,
                    &filtered,
                    opts,
                    shards,
                    &mut decisions,
                );
                report.smem_fallbacks += stats.fallbacks;
                report.smem_vertices += stats.smem_vertices;
            }
            report.active_per_iteration.push(scheduled);
            // UpdateVertex: each device writes back its own range (the
            // modeled kernel); program state is applied once on the host.
            for (d, r) in ranges.iter().enumerate() {
                let m = r.num_vertices() as u64;
                self.gpus.device_mut(d).launch("update_vertex", |ctx| {
                    ctx.global_read_seq(0x4_0000_0000 + u64::from(r.start) * 12, m, 12);
                    ctx.global_write_seq(0x7_0000_0000 + u64::from(r.start) * 4, m, 4);
                    ctx.warps_launched(m.div_ceil(32));
                    ctx.alu(2 * m.div_ceil(32));
                });
            }
            let mut changed = 0u64;
            for (v, &d) in decisions.iter().enumerate() {
                if prog.update_vertex(v as VertexId, d) {
                    changed += 1;
                }
            }
            if sparse {
                // Shared host recompute; each device pays the maintenance
                // kernels for its own vertex range (same modeled cost per
                // vertex as the single-GPU engine).
                let touched = recompute_active(g, &spoken, &decisions, &mut active);
                for (d, r) in ranges.iter().enumerate() {
                    let share = touched / ndev as u64;
                    let range_active = active[r.start as usize..r.end as usize]
                        .iter()
                        .filter(|&&a| a)
                        .count() as u64;
                    charge_frontier(
                        self.gpus.device_mut(d),
                        r.num_vertices() as u64,
                        share,
                        range_active,
                    );
                }
            }
            // Label exchange: each device ships its range's fresh labels to
            // every peer over the host link, then everyone synchronizes.
            for (d, r) in ranges.iter().enumerate() {
                let bytes = (r.num_vertices() as u64) * 4 * (ndev as u64 - 1);
                let dev = self.gpus.device_mut(d);
                let before = dev.elapsed_seconds();
                dev.download(bytes);
                transfer_s += dev.elapsed_seconds() - before;
            }
            self.gpus.sync();
            prog.end_iteration(iteration);
            report.changed_per_iteration.push(changed);
            report
                .iteration_seconds
                .push(self.gpus.elapsed_seconds() - iter_start);
            report.iterations = iteration + 1;
            if prog.finished(iteration, changed) {
                break;
            }
        }

        report.modeled_seconds = self.gpus.elapsed_seconds() - start_elapsed;
        report.transfer_seconds = transfer_s;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        for d in self.gpus.iter() {
            report.gpu_counters.merge(d.totals());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GpuEngine;
    use crate::variants::ClassicLp;
    use glp_graph::gen::{caveman, community_powerlaw, CommunityPowerLawConfig};

    #[test]
    fn multi_gpu_matches_single_gpu_labels() {
        let g = caveman(8, 7);
        let opts = RunOptions::default();
        let mut reference = ClassicLp::new(g.num_vertices());
        GpuEngine::titan_v().run(&g, &mut reference, &opts);
        let mut prog = ClassicLp::new(g.num_vertices());
        let mut engine = MultiGpuEngine::titan_v(2);
        engine.run(&g, &mut prog, &opts);
        assert_eq!(prog.labels(), reference.labels());
    }

    #[test]
    fn two_gpus_faster_than_one_but_sublinear() {
        // Large enough that edge work dominates the per-iteration fixed
        // costs (kernel launches, barrier sync) that do not parallelize.
        let g = community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 30_000,
            avg_degree: 32.0,
            ..Default::default()
        });
        let opts = RunOptions::default().with_max_iterations(10);
        let mut p1 = ClassicLp::with_max_iterations(g.num_vertices(), 10);
        let r1 = GpuEngine::titan_v().run(&g, &mut p1, &opts);
        let mut p2 = ClassicLp::with_max_iterations(g.num_vertices(), 10);
        let r2 = MultiGpuEngine::titan_v(2).run(&g, &mut p2, &opts);
        let speedup = r1.modeled_seconds / r2.modeled_seconds;
        assert!(speedup > 1.2, "speedup {speedup}");
        assert!(speedup < 2.0, "speedup {speedup}");
    }
}
