//! Memoized delta replay: re-running a BSP LP to the *exact* labels a
//! from-scratch run would produce, while recomputing decisions only on a
//! small frontier seeded by the vertices a graph delta touched.
//!
//! ## Why warm-starting alone is not enough
//!
//! LP is not confluent: restoring a previous converged state and
//! propagating "until quiescent" lands on *a* fixpoint, but not
//! necessarily the fixpoint a from-scratch run over the updated graph
//! reaches — retention scoring and the deterministic tie rule both depend
//! on the label a vertex held in earlier iterations, so the trajectory
//! matters, not just the endpoint. A serving system that pins
//! "incremental ≡ from-scratch, byte for byte" therefore has to replay
//! the from-scratch *trajectory*, not merely resume its final state.
//!
//! ## The replay
//!
//! [`replay_delta`] does exactly that, cheaply. The caller supplies a
//! **memo** — the per-iteration label arrays of the previous from-scratch
//! run, remapped into the updated graph's vertex id space — and a **seed
//! set** `S`: every vertex whose neighborhood the delta changed (both
//! endpoints of every added/updated edge; new vertices are automatically
//! in `S` because their edges are new).
//!
//! Each replayed iteration `t` maintains the invariant *labels ==
//! from-scratch labels after iteration `t`*:
//!
//! * **Frontier vertices** recompute their decision exactly as
//!   [`run_bsp`-style engines](super::SequentialEngine) do — frozen
//!   spoken labels, exact per-label aggregation, the shared
//!   [`BestLabel`](super::BestLabel) tie rule.
//! * **Non-frontier vertices** take the memo's prediction for iteration
//!   `t` as their decision. This is sound by induction: such a vertex is
//!   not in `S` (its neighborhood is unchanged), none of its in-neighbors
//!   diverged from the memo at `t-1` (a divergent in-neighbor would have
//!   pushed it into the frontier), and its own label matched the memo at
//!   `t-1` — so its from-scratch decision at `t` *is* the memo value.
//! * The next frontier is `S ∪ D ∪ out-neighbors(D)` where `D` is the
//!   set of vertices whose post-update label diverges from the memo —
//!   divergence spreads at most one hop per iteration, and a divergent
//!   vertex stays hot itself (its own label feeds retention and the tie
//!   rule next round).
//!
//! Per-vertex `changed` contributions equal the from-scratch run's
//! (prediction decisions change a vertex exactly when consecutive memo
//! entries differ), so the per-iteration `changed` counts — and therefore
//! the program's termination decision and iteration count — are
//! identical, which makes the final labels identical.
//!
//! Past the memo's end the last entry extends as a fixpoint, which is
//! valid when the memoized run converged (`changed == 0` implies the
//! decision map fixes the final labels); under equal iteration caps a
//! non-converged memo is never extended because the replay hits the same
//! cap.

use super::{BestLabel, Decision};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_graph::{Graph, Label, VertexId};
use glp_sketch::{BoundedHashTable, InsertOutcome};
use std::time::Instant;

/// What one [`replay_delta`] produced: the run report (host wall clock
/// only — no device is involved), the *new* memo for the next delta, and
/// the frontier trajectory.
#[derive(Clone, Debug, Default)]
pub struct DeltaReplay {
    /// Iterations, per-iteration `changed` (identical to the from-scratch
    /// run's) and per-iteration frontier sizes (as `active_per_iteration`).
    pub report: LpRunReport,
    /// Labels after each replayed iteration — the memo a subsequent
    /// replay over this run's graph consumes.
    pub memo: Vec<Vec<Label>>,
    /// Whether the replay reached a fixpoint (last iteration changed
    /// nothing) rather than the iteration cap.
    pub converged: bool,
    /// Seed-frontier size (`|S|`).
    pub initial_frontier: usize,
    /// Largest frontier any iteration consumed.
    pub peak_frontier: usize,
}

/// Replays `prog` over `g` against a remapped `memo` of the previous
/// from-scratch run, recomputing only the frontier grown from `seeds`
/// (see the module docs for the contract). `memo` must be non-empty and
/// each entry sized to the graph; `seeds` is the changed-neighborhood
/// bitmap. The program must start from its initial (pre-run) state —
/// the replay executes the whole trajectory, not a suffix.
pub fn replay_delta(
    g: &Graph,
    prog: &mut dyn LpProgram,
    memo: &[Vec<Label>],
    seeds: &[bool],
    max_iterations: u32,
) -> DeltaReplay {
    let wall_start = Instant::now();
    let n = g.num_vertices();
    assert_eq!(
        prog.num_vertices(),
        n,
        "program sized for a different graph"
    );
    assert_eq!(seeds.len(), n, "seed bitmap sized for a different graph");
    assert!(!memo.is_empty(), "replay needs at least one memo iteration");
    for m in memo {
        assert_eq!(m.len(), n, "memo entry sized for a different graph");
    }
    let csr = g.incoming();
    let out = g.outgoing();
    let max_deg = (0..n as VertexId)
        .map(|v| csr.degree(v) as usize)
        .max()
        .unwrap_or(0);
    let mut ht = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
    let mut frontier: Vec<bool> = seeds.to_vec();
    let mut spoken: Vec<Label> = vec![0; n];
    let mut decisions: Vec<Decision> = vec![None; n];
    let initial_frontier = seeds.iter().filter(|&&s| s).count();
    let mut result = DeltaReplay {
        initial_frontier,
        peak_frontier: initial_frontier,
        ..Default::default()
    };
    let report = &mut result.report;

    for iteration in 0..max_iterations {
        prog.begin_iteration(iteration);
        for (v, s) in spoken.iter_mut().enumerate() {
            *s = prog.pick_label(v as VertexId);
        }
        let pred = &memo[(iteration as usize).min(memo.len() - 1)];
        let mut scheduled = 0u64;
        for v in 0..n as VertexId {
            decisions[v as usize] = None;
            if g.degree(v) == 0 {
                continue;
            }
            if !frontier[v as usize] {
                // The memo's label *is* this vertex's from-scratch
                // decision; the score slot is ignored by `update_vertex`
                // (only the label lands in program state).
                decisions[v as usize] = Some((pred[v as usize], 0.0));
                continue;
            }
            scheduled += 1;
            ht.clear();
            let off = csr.offset(v);
            for (j, &u) in csr.neighbors(v).iter().enumerate() {
                let c = prog.load_neighbor(v, u, off + j as u64, spoken[u as usize]);
                match ht.insert_add(u64::from(c.label), c.weight) {
                    InsertOutcome::Added { .. } => {}
                    InsertOutcome::Full { .. } => unreachable!("scratch sized to 2x degree"),
                }
            }
            let current = spoken[v as usize];
            let mut best: Option<BestLabel> = None;
            for (l, freq) in ht.iter() {
                let label = l as Label;
                BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
            }
            decisions[v as usize] = BestLabel::into_decision(best);
        }
        let mut changed = 0u64;
        for (v, &d) in decisions.iter().enumerate() {
            if prog.update_vertex(v as VertexId, d) {
                changed += 1;
            }
        }
        prog.end_iteration(iteration);
        // Divergence scan: the next frontier is the seeds plus every
        // vertex off the memoized trajectory plus its out-neighbors.
        let labels = prog.labels();
        frontier.copy_from_slice(seeds);
        for (v, (&l, &p)) in labels.iter().zip(pred.iter()).enumerate() {
            if l != p {
                frontier[v] = true;
                for &w in out.neighbors(v as VertexId) {
                    frontier[w as usize] = true;
                }
            }
        }
        result.peak_frontier = result
            .peak_frontier
            .max(frontier.iter().filter(|&&a| a).count());
        result.memo.push(labels.to_vec());
        report.changed_per_iteration.push(changed);
        report.active_per_iteration.push(scheduled);
        report.iterations = iteration + 1;
        if prog.finished(iteration, changed) {
            result.converged = changed == 0;
            break;
        }
    }
    report.wall_seconds = wall_start.elapsed().as_secs_f64();
    result
}

/// Captures a from-scratch run's per-iteration label memo as the run
/// executes, via a [`BarrierHook`](super::BarrierHook) — chainable
/// through [`ResilientEngine`](super::ResilientEngine), whose retries
/// re-fire barriers (the capture is idempotent per iteration because
/// every tier is bit-identical).
#[derive(Clone, Default)]
pub struct MemoRecorder {
    captured: std::sync::Arc<std::sync::Mutex<Vec<Vec<Label>>>>,
}

impl MemoRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hook to install with
    /// [`RunOptions::with_barrier_hook`](super::RunOptions::with_barrier_hook).
    /// `n` is the graph's vertex count (to decode
    /// [`save_state`](crate::api::LpProgram::save_state) blobs).
    pub fn hook(&self, n: usize) -> super::BarrierHook {
        let captured = std::sync::Arc::clone(&self.captured);
        super::BarrierHook::new(move |ev| {
            let mut c = captured.lock().unwrap_or_else(|e| e.into_inner());
            // A resumed attempt replays its first barrier; capture each
            // iteration exactly once, in order.
            if ev.iteration as usize != c.len() {
                return;
            }
            if let Some(blob) = ev.program.save_state() {
                if let Some(labels) = crate::api::blob_to_labels(&blob, n) {
                    c.push(labels);
                }
            }
        })
    }

    /// The captured per-iteration label arrays. Valid as a replay memo
    /// only when its length equals the run's iteration count (a program
    /// that refuses mid-run saves leaves gaps — the caller should fall
    /// back to from-scratch next time).
    pub fn into_memo(self) -> Vec<Vec<Label>> {
        std::mem::take(&mut *self.captured.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Engine, FrontierMode, ResilientEngine, RunOptions, SequentialEngine};
    use super::*;
    use crate::variants::WeightedLp;
    use glp_graph::GraphBuilder;

    /// Two weighted communities bridged by growing edges; `extra` edges
    /// are appended to the base graph to form the delta.
    fn graph_with(extra: &[(u32, u32, f32)]) -> Graph {
        let n = 24;
        let mut b = GraphBuilder::new(n);
        for c in 0..2u32 {
            let base = c * 12;
            for i in 0..12u32 {
                for j in (i + 1)..12u32 {
                    if (i + j) % 3 != 0 {
                        b.add_weighted_edge(base + i, base + j, 1.0 + f32::from((i % 4) as u8));
                    }
                }
            }
        }
        for &(u, v, w) in extra {
            b.add_weighted_edge(u, v, w);
        }
        b.symmetrize(true).dedup(true);
        b.build()
    }

    fn scratch(g: &Graph) -> (Vec<Label>, LpRunReport, Vec<Vec<Label>>) {
        let mut prog = WeightedLp::from_graph(g, 30).with_retention(2.0);
        let recorder = MemoRecorder::new();
        let report = SequentialEngine::bsp()
            .run(
                g,
                &mut prog,
                &RunOptions::default()
                    .with_max_iterations(30)
                    .with_barrier_hook(recorder.hook(g.num_vertices())),
            )
            .unwrap();
        (prog.labels().to_vec(), report, recorder.into_memo())
    }

    #[test]
    fn replay_matches_from_scratch_byte_for_byte() {
        let old = graph_with(&[]);
        let (_, old_report, memo) = scratch(&old);
        assert_eq!(memo.len(), old_report.iterations as usize);

        // Delta: bridge the communities and thicken one edge.
        let extra = [(3, 15, 4.0f32), (5, 5 + 12, 2.0), (0, 1, 9.0)];
        let new = graph_with(&extra);
        let (want_labels, want_report, _) = scratch(&new);

        let mut seeds = vec![false; new.num_vertices()];
        for &(u, v, _) in &extra {
            seeds[u as usize] = true;
            seeds[v as usize] = true;
        }
        let mut prog = WeightedLp::from_graph(&new, 30).with_retention(2.0);
        let replay = replay_delta(&new, &mut prog, &memo, &seeds, 30);

        assert_eq!(prog.labels(), &want_labels[..]);
        assert_eq!(
            replay.report.changed_per_iteration,
            want_report.changed_per_iteration
        );
        assert_eq!(replay.report.iterations, want_report.iterations);
        assert_eq!(replay.memo.len(), replay.report.iterations as usize);
        assert!(replay.converged);
        assert_eq!(replay.initial_frontier, 6);
        // The replay recomputed strictly less than dense work would.
        assert!(replay
            .report
            .active_per_iteration
            .iter()
            .all(|&a| a <= new.num_vertices() as u64));
    }

    #[test]
    fn empty_delta_replays_the_memo_with_zero_recomputation() {
        let g = graph_with(&[]);
        let (want_labels, want_report, memo) = scratch(&g);
        let seeds = vec![false; g.num_vertices()];
        let mut prog = WeightedLp::from_graph(&g, 30).with_retention(2.0);
        let replay = replay_delta(&g, &mut prog, &memo, &seeds, 30);
        assert_eq!(prog.labels(), &want_labels[..]);
        assert_eq!(
            replay.report.changed_per_iteration,
            want_report.changed_per_iteration
        );
        assert_eq!(replay.report.active_per_iteration.iter().sum::<u64>(), 0);
        assert_eq!(replay.initial_frontier, 0);
    }

    #[test]
    fn recorder_chains_through_the_resilient_ladder() {
        // The memo hook must survive ResilientEngine installing its own
        // salvage hook (chained, not replaced).
        let g = graph_with(&[]);
        let mut prog = WeightedLp::from_graph(&g, 30).with_retention(2.0);
        let recorder = MemoRecorder::new();
        let report = ResilientEngine::gpu_ladder()
            .run(
                &g,
                &mut prog,
                &RunOptions::default()
                    .with_max_iterations(30)
                    .with_frontier(FrontierMode::Auto)
                    .with_barrier_hook(recorder.hook(g.num_vertices())),
            )
            .unwrap();
        let memo = recorder.into_memo();
        assert_eq!(memo.len(), report.iterations as usize);
        assert_eq!(memo.last().map(Vec::as_slice), Some(prog.labels()));
    }

    #[test]
    fn warm_start_frontier_honored_at_iteration_zero() {
        // A converged program rerun with an all-false warm-start frontier
        // schedules nothing and changes nothing — the `initial_frontier`
        // gap this PR closes (it used to require `start_iteration > 0`).
        let g = graph_with(&[]);
        let mut prog = WeightedLp::from_graph(&g, 30).with_retention(2.0);
        let opts = RunOptions::default().with_max_iterations(30);
        SequentialEngine::bsp().run(&g, &mut prog, &opts).unwrap();
        let settled = prog.labels().to_vec();
        let report = SequentialEngine::bsp()
            .run(
                &g,
                &mut prog,
                &RunOptions {
                    initial_frontier: Some(vec![false; g.num_vertices()]),
                    ..opts
                },
            )
            .unwrap();
        assert_eq!(prog.labels(), &settled[..]);
        assert_eq!(report.active_per_iteration, vec![0]);
        assert_eq!(report.changed_per_iteration, vec![0]);
    }
}
