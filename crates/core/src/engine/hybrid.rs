//! CPU–GPU hybrid execution for graphs exceeding device memory (§3.1).
//!
//! Label state stays resident on the device; adjacency streams over PCIe.
//! The host CPUs coordinate the movement (§3.1: "the CPUs can coordinate
//! the CPU-GPU graph data movement as well as handle PickLabel and
//! UpdateVertex"): under [`FrontierMode::Auto`](super::FrontierMode), only
//! *active* vertices — those with a changed in-neighbor — have their
//! adjacency shipped and recomputed each iteration. As LP converges the
//! active set collapses, which is what keeps the paper's transfer overhead
//! small (§5.4). Streaming overlaps kernel execution (double buffering),
//! so an iteration pays `max(compute, transfer)`.

use super::dispatch::Buckets;
use super::gpu::{
    apply_updates, charge_snapshot, choose_direction, dispatch_name, initial_active, pick_labels,
    profile_from_log, propagate, recompute_active, recompute_active_pull, trace_fail,
    trace_run_begin,
};
use super::options::BarrierEvent;
use super::{Decision, Direction, Engine, EngineError, RunOptions};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_gpusim::Device;
use glp_graph::partition::partition_by_edges;
use glp_graph::{Graph, Label};
use glp_trace::{Category, Clock};
use std::time::Instant;

/// Adjacency streams in a delta-compressed layout (neighbor-id gaps,
/// varint-coded — the standard technique for GPU out-of-core graphs, cf.
/// Sha et al. [29] cited by the paper), shrinking PCIe traffic to roughly
/// this fraction of the raw CSR bytes.
const STREAM_COMPRESSION: f64 = 0.4;

/// The out-of-core engine.
#[derive(Debug)]
pub struct HybridEngine {
    device: Device,
}

impl HybridEngine {
    /// Engine on the given device.
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// Engine on a modeled Titan V.
    pub fn titan_v() -> Self {
        Self::new(Device::titan_v())
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Number of chunks a dense full-graph stream would need (diagnostic:
    /// 1 = the graph fits in core).
    pub fn plan_chunks(&self, g: &Graph) -> usize {
        let n = g.num_vertices() as u64;
        let mem = self.device.config().global_mem_bytes;
        let resident = n * (4 + 4 + 12);
        if resident >= mem {
            return 0;
        }
        if resident + g.size_bytes() <= mem {
            return 1;
        }
        let bytes_per_edge = if g.incoming().is_weighted() { 8 } else { 4 };
        let budget_edges = (((mem - resident) / 2) / (bytes_per_edge + 1)).max(1);
        partition_by_edges(g, budget_edges).len()
    }
}

impl Engine for HybridEngine {
    fn name(&self) -> &'static str {
        "GLP-hybrid"
    }

    /// Runs `prog` on `g`, streaming adjacency when the graph does not fit
    /// next to the resident label state.
    ///
    /// # Panics
    /// Panics if even the label state alone exceeds device memory.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        opts.validate_for_device(self.device.config().shared_mem_per_block);
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let shards = opts.resolve_shards();
        let mem = self.device.config().global_mem_bytes;

        // Resident: label state + spoken + decisions.
        let resident = (n as u64) * (4 + 4 + 12);
        assert!(
            resident < mem,
            "label state ({resident} B) alone exceeds device memory ({mem} B)"
        );
        let in_core = resident + g.size_bytes() <= mem;
        let bytes_per_edge: u64 = if g.incoming().is_weighted() { 8 } else { 4 };

        let full = Buckets::build(g, opts.strategy, opts.thresholds);
        let sparse = opts.frontier.sparse(prog.sparse_activation());

        let footprint = if in_core {
            resident + g.size_bytes()
        } else {
            resident
        };
        self.device.set_tracer(opts.tracer.clone());
        let log_mark = self.device.kernel_log().len();
        let t0 = self.device.elapsed_seconds();
        let trace_mark = trace_run_begin(&opts.tracer, self.name(), t0);
        if let Err(e) = self.device.upload(footprint) {
            trace_fail(&opts.tracer, trace_mark, self.device.elapsed_seconds());
            return Err(e.into());
        }
        let mut transfer_s = self.device.elapsed_seconds() - t0;
        let start_elapsed = t0;

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        let mut active = initial_active(n, sparse, opts);
        let mut report = LpRunReport::default();
        let device = &mut self.device;

        // As in the GPU engine, the loop body runs in an immediately
        // invoked closure so the footprint is freed on the fault path.
        let outcome = (|| -> Result<(), EngineError> {
            let mut last_direction: Option<Direction> = None;
            for iteration in opts.start_iteration..opts.max_iterations {
                let iter_start = device.elapsed_seconds();
                if let Some(t) = &opts.tracer {
                    t.begin_arg(
                        Category::Iteration,
                        "iteration",
                        Clock::Modeled,
                        iter_start,
                        u64::from(iteration),
                    );
                }
                prog.begin_iteration(iteration);
                pick_labels(device, &mut spoken, 0, prog, shards)?;
                decisions.iter_mut().for_each(|d| *d = None);

                // Restrict work (and streaming) to the active set.
                let all_active = !sparse
                    || (iteration == 0 && opts.start_iteration == 0)
                    || active.iter().all(|&a| a);
                let (buckets, stream_bytes): (std::borrow::Cow<'_, Buckets>, u64) = if all_active {
                    let bytes = g.num_edges() * bytes_per_edge + (n as u64) * 8;
                    (std::borrow::Cow::Borrowed(&full), bytes)
                } else {
                    let b = full.filtered(&active);
                    let active_edges: u64 = [
                        &b.warp_packed,
                        &b.warp_per_vertex,
                        &b.block_per_vertex,
                        &b.global_hash,
                    ]
                    .into_iter()
                    .flat_map(|vs| vs.iter())
                    .map(|&v| u64::from(g.degree(v)))
                    .sum();
                    let bytes = active_edges * bytes_per_edge + (b.scheduled() as u64) * 8;
                    (std::borrow::Cow::Owned(b), bytes)
                };
                let scheduled = buckets.scheduled() as u64;
                report.active_per_iteration.push(scheduled);

                let before = device.elapsed_seconds();
                if let Some(t) = &opts.tracer {
                    t.begin_arg(
                        Category::Dispatch,
                        dispatch_name(last_direction),
                        Clock::Modeled,
                        before,
                        scheduled,
                    );
                }
                let stats = propagate(
                    device,
                    g,
                    &spoken,
                    prog,
                    &buckets,
                    opts,
                    shards,
                    &mut decisions,
                )?;
                if let Some(t) = &opts.tracer {
                    t.end(device.elapsed_seconds());
                }
                report.smem_fallbacks += stats.fallbacks;
                report.smem_vertices += stats.smem_vertices;
                let compute = device.elapsed_seconds() - before;
                if !in_core {
                    // Streaming overlaps the kernels; only the non-hidden
                    // remainder extends the modeled clock. Adjacency moves in
                    // the compressed layout.
                    let stream = device.cost_model().transfer_seconds(
                        device.config(),
                        (stream_bytes as f64 * STREAM_COMPRESSION) as u64,
                    );
                    transfer_s += stream;
                    if stream > compute {
                        // The span covers only the non-hidden remainder —
                        // that is what actually extends the modeled clock.
                        if let Some(t) = &opts.tracer {
                            t.complete(
                                Category::Transfer,
                                "stream",
                                Clock::Modeled,
                                device.elapsed_seconds(),
                                stream - compute,
                            );
                        }
                        device.advance_clock(stream - compute);
                    }
                }

                let changed = apply_updates(device, &decisions, prog)?;
                let direction = if sparse {
                    // Host-side frontier maintenance (§3.1: the CPUs handle
                    // UpdateVertex and coordinate data movement in hybrid
                    // mode), so no device kernel is charged here — the shared
                    // recomputes keep the semantics identical to the GPU
                    // engines'. The direction choice still runs (priced on
                    // this device's cost model, so `Auto` agrees with the
                    // in-core tiers) and is recorded/tagged like everywhere
                    // else — only the charge is absent.
                    let dir = choose_direction(
                        opts.frontier,
                        g,
                        &spoken,
                        &decisions,
                        device.cost_model(),
                    );
                    if dir == Direction::Pull {
                        recompute_active_pull(g, &spoken, &decisions, &mut active);
                    } else {
                        recompute_active(g, &spoken, &decisions, &mut active);
                    }
                    dir
                } else {
                    Direction::Dense
                };
                last_direction = Some(direction);
                prog.end_iteration(iteration);
                if let Some(hook) = &opts.barrier_hook {
                    let t = device.elapsed_seconds();
                    charge_snapshot(device, n as u64)?;
                    report.snapshot_seconds += device.elapsed_seconds() - t;
                    report.snapshots_taken += 1;
                    if let Some(tr) = &opts.tracer {
                        tr.instant(
                            Category::Resilience,
                            "snapshot",
                            Clock::Modeled,
                            device.elapsed_seconds(),
                        );
                    }
                    hook.fire(&BarrierEvent {
                        iteration,
                        changed,
                        scheduled,
                        active: if sparse { Some(&active) } else { None },
                        direction,
                        program: &*prog,
                    });
                }
                report.changed_per_iteration.push(changed);
                report.direction_per_iteration.push(direction);
                report
                    .iteration_seconds
                    .push(device.elapsed_seconds() - iter_start);
                report.iterations = iteration + 1;
                if let Some(t) = &opts.tracer {
                    t.end(device.elapsed_seconds());
                }
                if prog.finished(iteration, changed) {
                    break;
                }
            }
            Ok(())
        })();

        if outcome.is_ok() {
            let t1 = self.device.elapsed_seconds();
            self.device.download(n as u64 * 4);
            transfer_s += self.device.elapsed_seconds() - t1;
            if let Some(t) = &opts.tracer {
                t.end(self.device.elapsed_seconds());
            }
        }
        self.device.free(footprint);

        if let Err(e) = outcome {
            trace_fail(&opts.tracer, trace_mark, self.device.elapsed_seconds());
            return Err(e);
        }
        report.kernel_profile =
            profile_from_log(self.name(), &self.device.kernel_log()[log_mark..]);
        report.modeled_seconds = self.device.elapsed_seconds() - start_elapsed;
        report.transfer_seconds = transfer_s;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        report.gpu_counters = *self.device.totals();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GpuEngine;
    use crate::variants::ClassicLp;
    use glp_gpusim::DeviceConfig;
    use glp_graph::gen::caveman;

    #[test]
    fn hybrid_matches_in_memory_labels() {
        let g = caveman(10, 8);
        let opts = RunOptions::default();
        let mut reference = ClassicLp::new(g.num_vertices());
        GpuEngine::titan_v().run(&g, &mut reference, &opts).unwrap();

        // A device so small the CSR must stream.
        let resident = (g.num_vertices() as u64) * 20;
        let tiny = DeviceConfig::tiny(resident + 1024);
        let mut hybrid = HybridEngine::new(Device::new(tiny));
        assert!(hybrid.plan_chunks(&g) > 1, "graph should need streaming");
        let mut prog = ClassicLp::new(g.num_vertices());
        let report = hybrid.run(&g, &mut prog, &opts).unwrap();
        assert_eq!(prog.labels(), reference.labels());
        assert!(report.transfer_seconds > 0.0);
    }

    #[test]
    fn active_set_shrinks_transfer_on_converging_graph() {
        // Caveman converges in a few iterations; with a 20-iteration cap
        // most iterations stream almost nothing, so total transfer must be
        // far below 20 full-graph streams.
        let g = caveman(12, 8);
        let resident = (g.num_vertices() as u64) * 20;
        let tiny = DeviceConfig::tiny(resident + 2048);
        let mut hybrid = HybridEngine::new(Device::new(tiny.clone()));
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 20);
        let report = hybrid.run(&g, &mut prog, &RunOptions::default()).unwrap();
        let full_stream = hybrid
            .device()
            .cost_model()
            .transfer_seconds(&tiny, g.num_edges() * 4 + g.num_vertices() as u64 * 8);
        assert!(
            report.transfer_seconds < 6.0 * full_stream,
            "transfer {} vs full stream {}",
            report.transfer_seconds,
            full_stream
        );
    }

    #[test]
    fn fits_entirely_one_chunk() {
        let g = caveman(4, 5);
        let hybrid = HybridEngine::titan_v();
        assert_eq!(hybrid.plan_chunks(&g), 1);
    }

    #[test]
    #[should_panic(expected = "label state")]
    fn label_state_overflow_rejected() {
        let g = caveman(4, 5);
        let mut hybrid = HybridEngine::new(Device::new(DeviceConfig::tiny(64)));
        let mut prog = ClassicLp::new(g.num_vertices());
        let _ = hybrid.run(&g, &mut prog, &RunOptions::default());
    }
}
