//! The LabelPropagation kernels (paper §4).
//!
//! Four kernels cover the degree spectrum:
//!
//! | kernel | vertices | mechanism |
//! |--------|----------|-----------|
//! | [`warp_packed_kernel`]     | degree < 32 (SmemWarp) | one warp, many vertices, intrinsics (§4.2, Figure 3) |
//! | [`warp_per_vertex_kernel`] | mid degrees            | one warp per vertex, shared hash table |
//! | [`block_cms_ht_kernel`]    | degree > 128           | one block per vertex, shared CMS+HT with bounded-probability global fallback (§4.1, Procedure SharedMemBigNodes) |
//! | [`global_hash_kernel`]     | all (Global strategy)  | per-vertex global-memory hash tables (the `global` ablation baseline / G-Hash) |
//!
//! Every kernel computes *exact* winners (the CMS+HT combination is a
//! pruning strategy, not an approximation — §4.1 "Special Note") under the
//! workspace-wide tie rule: highest score wins, ties break toward the
//! smaller label. Scores must be non-decreasing in `freq` for the CMS
//! pruning to be lossless; all shipped variants satisfy this.

use super::{BestLabel, Decision};
use crate::api::LpProgram;
use glp_gpusim::warp::{ballot_sync, match_any_sync, popc};
use glp_gpusim::{KernelCtx, SharedMem, WARP_SIZE};
use glp_graph::{Csr, Label, VertexId, INVALID_VERTEX};
use glp_sketch::{BoundedHashTable, CountMinSketch, InsertOutcome};

/// Simulated global-memory address bases (for coalescing accounting only;
/// data actually lives in host slices).
pub(crate) mod layout {
    /// Current spoken-label array `L` (4 bytes per vertex).
    pub const LABELS: u64 = 0x1_0000_0000;
    /// CSR target (neighbor id) array (4 bytes per edge).
    pub const TARGETS: u64 = 0x2_0000_0000;
    /// Decision output array (8 bytes per vertex).
    pub const DECISIONS: u64 = 0x4_0000_0000;
    /// Global fallback hash-table region (8 bytes per slot).
    pub const GHT: u64 = 0x5_0000_0000;

    /// Byte address of vertex `u`'s entry in `L`.
    #[inline]
    pub fn label_addr(u: u32) -> u64 {
        LABELS + u64::from(u) * 4
    }
}

/// Per-shard instrumentation returned by the kernels.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ShardStats {
    /// High-degree vertices that needed the global-memory fallback.
    pub fallbacks: u64,
    /// High-degree vertices processed by the CMS+HT kernel.
    pub smem_vertices: u64,
}

impl ShardStats {
    pub(crate) fn merge(&mut self, o: &ShardStats) {
        self.fallbacks += o.fallbacks;
        self.smem_vertices += o.smem_vertices;
    }
}

/// Charges a warp-wide gather of the spoken labels of `nbrs` (coalescing
/// computed from the actual vertex ids — neighbors in the same community
/// sit near each other only as much as the graph says they do).
#[inline]
fn charge_label_gather(ctx: &mut KernelCtx, nbrs: &[VertexId]) {
    let mut addrs = [0u64; WARP_SIZE];
    for chunk in nbrs.chunks(WARP_SIZE) {
        for (i, &u) in chunk.iter().enumerate() {
            addrs[i] = layout::label_addr(u);
        }
        ctx.global_read(&addrs[..chunk.len()]);
    }
}

// ---------------------------------------------------------------------------
// Low-degree: one warp, multiple vertices (§4.2).
// ---------------------------------------------------------------------------

/// Processes low-degree vertices by packing the edges of several vertices
/// into one warp and counting label frequencies with `__ballot_sync` /
/// `__match_any_sync` / `__popc`, exactly as Figure 3 sketches.
///
/// Vertices must each have degree in `1..=WARP_SIZE` so a full neighbor
/// list always fits in one warp.
pub(crate) fn warp_packed_kernel<P: LpProgram + ?Sized>(
    ctx: &mut KernelCtx,
    csr: &Csr,
    spoken: &[Label],
    prog: &P,
    vertices: &[VertexId],
    out: &mut Vec<(VertexId, Decision)>,
) {
    let mut lane_vertex = [INVALID_VERTEX; WARP_SIZE];
    let mut lane_edge = [0u64; WARP_SIZE];
    let mut used = 0usize;

    let flush = |ctx: &mut KernelCtx,
                 lane_vertex: &[VertexId; WARP_SIZE],
                 lane_edge: &[u64; WARP_SIZE],
                 used: usize,
                 out: &mut Vec<(VertexId, Decision)>| {
        if used == 0 {
            return;
        }
        ctx.warps_launched(1);
        ctx.lanes_active(used as u64);
        // 1. Load neighbor ids (edge-indexed; spans of packed vertices are
        //    contiguous per vertex but not across bucket gaps).
        let mut addrs = [0u64; WARP_SIZE];
        for i in 0..used {
            addrs[i] = layout::TARGETS + lane_edge[i] * 4;
        }
        ctx.global_read(&addrs[..used]);
        let mut lane_nbr = [INVALID_VERTEX; WARP_SIZE];
        for i in 0..used {
            lane_nbr[i] = csr.targets()[lane_edge[i] as usize];
        }
        // 2. Gather spoken labels of those neighbors.
        for i in 0..used {
            addrs[i] = layout::label_addr(lane_nbr[i]);
        }
        ctx.global_read(&addrs[..used]);
        // 3. Per-lane contribution via the user API.
        let mut lane_label = [0 as Label; WARP_SIZE];
        let mut lane_weight = [0f64; WARP_SIZE];
        let mut preds = [false; WARP_SIZE];
        for i in 0..used {
            let v = lane_vertex[i];
            let u = lane_nbr[i];
            let c = prog.load_neighbor(v, u, lane_edge[i], spoken[u as usize]);
            lane_label[i] = c.label;
            lane_weight[i] = c.weight;
            preds[i] = true;
        }
        ctx.alu(2);
        // 4. Intrinsic grouping: active lanes → same-vertex mask → same
        //    (vertex,label) mask → frequency by popcount.
        let active = ballot_sync(u32::MAX, &preds);
        let mut vkeys = [0u64; WARP_SIZE];
        let mut lkeys = [0u64; WARP_SIZE];
        for i in 0..used {
            vkeys[i] = u64::from(lane_vertex[i]);
            lkeys[i] = (u64::from(lane_vertex[i]) << 32) | u64::from(lane_label[i]);
        }
        let vmasks = match_any_sync(active, &vkeys);
        let lmasks = match_any_sync(active, &lkeys);
        ctx.intrinsic(3); // ballot + 2x match_any

        let uniform_weights = lane_weight[..used].iter().all(|&w| w == 1.0);
        let mut lane_freq = [0f64; WARP_SIZE];
        if uniform_weights {
            for i in 0..used {
                lane_freq[i] = f64::from(popc(lmasks[i]));
            }
            ctx.intrinsic(1); // popc
        } else {
            // Weighted: sum lane weights across the lmask group (a short
            // shuffle reduction instead of a single popc).
            for i in 0..used {
                let mut sum = 0.0;
                let mut rest = lmasks[i];
                while rest != 0 {
                    let l = rest.trailing_zeros() as usize;
                    sum += lane_weight[l];
                    rest &= rest - 1;
                }
                lane_freq[i] = sum;
            }
            ctx.intrinsic(5);
        }
        // 5. Score and per-vertex reduction (leader = lowest lane of vmask).
        let mut lane_score = [f64::MIN; WARP_SIZE];
        for i in 0..used {
            lane_score[i] = prog.label_score(lane_vertex[i], lane_label[i], lane_freq[i]);
        }
        ctx.alu(2);
        let mut result_addrs = [0u64; WARP_SIZE];
        let mut results = 0usize;
        for i in 0..used {
            let vm = vmasks[i];
            if vm.trailing_zeros() as usize != i {
                continue; // not the group leader
            }
            let mut best: Option<BestLabel> = None;
            let current = spoken[lane_vertex[i] as usize];
            let mut rest = vm;
            while rest != 0 {
                let l = rest.trailing_zeros() as usize;
                BestLabel::offer(&mut best, lane_label[l], lane_score[l], current);
                rest &= rest - 1;
            }
            ctx.intrinsic(2); // per-group max + index shuffle
            result_addrs[results] = layout::DECISIONS + u64::from(lane_vertex[i]) * 8;
            results += 1;
            out.push((lane_vertex[i], BestLabel::into_decision(best)));
        }
        // 6. Group leaders write their decisions.
        ctx.global_write(&result_addrs[..results]);
    };

    for &v in vertices {
        let deg = csr.degree(v) as usize;
        debug_assert!(
            (1..=WARP_SIZE).contains(&deg),
            "warp-packed bucket requires degree 1..=32, got {deg}"
        );
        if used + deg > WARP_SIZE {
            flush(ctx, &lane_vertex, &lane_edge, used, out);
            used = 0;
        }
        let off = csr.offset(v);
        for k in 0..deg as u64 {
            lane_vertex[used] = v;
            lane_edge[used] = off + k;
            used += 1;
        }
    }
    flush(ctx, &lane_vertex, &lane_edge, used, out);
}

// ---------------------------------------------------------------------------
// Mid-degree: one warp per vertex with a shared-memory hash table.
// ---------------------------------------------------------------------------

/// One warp scans one vertex's neighbor list 32 labels at a time,
/// accumulating counts in a per-warp shared-memory hash table sized to hold
/// every possible distinct label of a mid-degree vertex (so it never
/// overflows), then scans the table for the best final score.
pub(crate) fn warp_per_vertex_kernel<P: LpProgram + ?Sized>(
    ctx: &mut KernelCtx,
    csr: &Csr,
    spoken: &[Label],
    prog: &P,
    vertices: &[VertexId],
    ht_slots: usize,
    out: &mut Vec<(VertexId, Decision)>,
) {
    let mut ht = BoundedHashTable::new(ht_slots, ht_slots as u32);
    for &v in vertices {
        ctx.warps_launched(1);
        ctx.lanes_active(u64::from(csr.degree(v)).min(32));
        ht.clear();
        let off = csr.offset(v);
        let nbrs = csr.neighbors(v);
        debug_assert!(
            nbrs.len() <= ht.capacity(),
            "mid bucket degree {} exceeds shared HT capacity {}",
            nbrs.len(),
            ht.capacity()
        );
        for (c, chunk) in nbrs.chunks(WARP_SIZE).enumerate() {
            // Contiguous neighbor-id load.
            ctx.global_read_seq(
                layout::TARGETS + (off + (c * WARP_SIZE) as u64) * 4,
                chunk.len() as u64,
                4,
            );
            charge_label_gather(ctx, chunk);
            let mut conflicts = 0u64;
            for (i, &u) in chunk.iter().enumerate() {
                let edge = off + (c * WARP_SIZE + i) as u64;
                let contrib = prog.load_neighbor(v, u, edge, spoken[u as usize]);
                match ht.insert_add(u64::from(contrib.label), contrib.weight) {
                    InsertOutcome::Added { probes, .. } => {
                        conflicts += u64::from(probes - 1);
                    }
                    InsertOutcome::Full { .. } => {
                        unreachable!("mid HT sized to never overflow")
                    }
                }
            }
            ctx.alu(2);
            ctx.shared_atomic(chunk.len() as u64, conflicts);
        }
        // Final scan with exact frequencies.
        ctx.shared_access_uniform((ht.capacity() / WARP_SIZE) as u64);
        let mut best: Option<BestLabel> = None;
        let current = spoken[v as usize];
        for (l, freq) in ht.iter() {
            let label = l as Label;
            BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
        }
        ctx.alu(2 * ht.occupied() as u64);
        ctx.intrinsic(5); // warp max-reduction
        ctx.global_write_scattered(1);
        out.push((v, BestLabel::into_decision(best)));
    }
}

// ---------------------------------------------------------------------------
// High-degree: one block per vertex, shared CMS+HT (§4.1).
// ---------------------------------------------------------------------------

/// Shared-memory geometry of the CMS+HT kernel.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SmemGeometry {
    /// HT slots (`h` in the analysis).
    pub ht_slots: usize,
    /// HT probe budget before a label overflows to the CMS.
    pub ht_probe_limit: u32,
    /// CMS rows (`d`).
    pub cms_depth: usize,
    /// CMS buckets per row (`w`).
    pub cms_width: usize,
}

impl SmemGeometry {
    /// Panics if HT+CMS exceed one block's shared memory — the same failure
    /// a real kernel launch would report.
    pub(crate) fn validate(&self, shared_mem_per_block: usize) {
        let mut arena = SharedMem::new(shared_mem_per_block);
        arena.alloc(self.ht_slots.next_power_of_two() * 8);
        arena.alloc(self.cms_depth * self.cms_width * 4);
    }
}

/// Procedure `SharedMemBigNodes`: single scan inserting every neighbor
/// label into the shared HT, overflowing to the shared CMS; two block
/// reductions compare `s(HT)` against `s(CMS)`; only when the CMS *might*
/// hold a better label does the block fall back to a global-memory hash
/// table (exactly recounting the overflow labels). Returns exact winners.
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_cms_ht_kernel<P: LpProgram + ?Sized>(
    ctx: &mut KernelCtx,
    csr: &Csr,
    spoken: &[Label],
    prog: &P,
    vertices: &[VertexId],
    geom: SmemGeometry,
    stats: &mut ShardStats,
    out: &mut Vec<(VertexId, Decision)>,
) {
    geom.validate(ctx.cfg.shared_mem_per_block);
    let block_threads = ctx.cfg.threads_per_block as usize;
    let warps_per_block = u64::from(ctx.cfg.warps_per_block());
    let mut ht = BoundedHashTable::new(geom.ht_slots, geom.ht_probe_limit);
    let mut cms = CountMinSketch::new(geom.cms_depth, geom.cms_width);
    let max_deg = vertices
        .iter()
        .map(|&v| csr.degree(v) as usize)
        .max()
        .unwrap_or(0);
    let mut ght = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);

    for &v in vertices {
        ctx.warps_launched(warps_per_block);
        ctx.lanes_active(u64::from(csr.degree(v)).min(32 * warps_per_block));
        ht.clear();
        cms.clear();
        stats.smem_vertices += 1;
        let off = csr.offset(v);
        let nbrs = csr.neighbors(v);
        let mut s_cms = f64::MIN;
        let mut overflowed = false;
        for (c, chunk) in nbrs.chunks(block_threads).enumerate() {
            ctx.global_read_seq(
                layout::TARGETS + (off + (c * block_threads) as u64) * 4,
                chunk.len() as u64,
                4,
            );
            charge_label_gather(ctx, chunk);
            let mut ht_ops = 0u64;
            let mut ht_conflicts = 0u64;
            let mut cms_ops = 0u64;
            for (i, &u) in chunk.iter().enumerate() {
                let edge = off + (c * block_threads + i) as u64;
                let contrib = prog.load_neighbor(v, u, edge, spoken[u as usize]);
                match ht.insert_add(u64::from(contrib.label), contrib.weight) {
                    InsertOutcome::Added { probes, .. } => {
                        ht_ops += 1;
                        ht_conflicts += u64::from(probes - 1);
                    }
                    InsertOutcome::Full { probes } => {
                        // Overflow path: label goes to the CMS; the running
                        // estimate scores a candidate ceiling.
                        overflowed = true;
                        ht_conflicts += u64::from(probes - 1);
                        let est = cms.add(u64::from(contrib.label), contrib.weight);
                        s_cms = s_cms.max(prog.label_score(v, contrib.label, est));
                        cms_ops += 1;
                    }
                }
            }
            ctx.alu(2);
            ctx.shared_atomic(ht_ops, ht_conflicts);
            ctx.shared_atomic(cms_ops * geom.cms_depth as u64, 0);
        }
        // Exact HT scan + two block reductions (s(HT), s(CMS)).
        ctx.shared_access_uniform((ht.capacity() / WARP_SIZE) as u64);
        let mut best: Option<BestLabel> = None;
        let current = spoken[v as usize];
        for (l, freq) in ht.iter() {
            let label = l as Label;
            BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
        }
        ctx.alu(2 * ht.occupied() as u64);
        ctx.block_reduce();
        ctx.block_reduce();

        let s_ht = best.map_or(f64::MIN, |b| b.score);
        if overflowed && s_ht < s_cms {
            // Global fallback (lines 16–24): exactly recount every label
            // that is not resident in the HT, in a global hash table.
            stats.fallbacks += 1;
            ght.clear();
            let mut addrs = [0u64; WARP_SIZE];
            let mut pending = 0usize;
            for (j, &u) in nbrs.iter().enumerate() {
                let contrib = prog.load_neighbor(v, u, off + j as u64, spoken[u as usize]);
                if ht.contains(u64::from(contrib.label)) {
                    continue; // gt_score := ht_score (already scanned)
                }
                match ght.insert_add(u64::from(contrib.label), contrib.weight) {
                    InsertOutcome::Added { .. } => {}
                    InsertOutcome::Full { .. } => unreachable!("GHT sized to 2x degree"),
                }
                addrs[pending] =
                    layout::GHT + (u64::from(contrib.label) % ght.capacity() as u64) * 8;
                pending += 1;
                if pending == WARP_SIZE {
                    ctx.global_atomic(&addrs);
                    pending = 0;
                }
            }
            if pending > 0 {
                ctx.global_atomic(&addrs[..pending]);
            }
            for (l, freq) in ght.iter() {
                let label = l as Label;
                BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
            }
            ctx.alu(2 * ght.occupied() as u64);
            ctx.block_reduce();
        }
        ctx.global_write_scattered(1);
        out.push((v, BestLabel::into_decision(best)));
    }
}

// ---------------------------------------------------------------------------
// Global-memory hash tables (the `global` ablation baseline / G-Hash).
// ---------------------------------------------------------------------------

/// One warp per vertex; every label insert is an atomic into a per-vertex
/// hash-table region in *global* memory (scattered sectors), then the
/// region is scanned for the winner. This is the strategy §4.1 criticizes:
/// it cannot avoid random global accesses once neighbor lists exceed the
/// cache.
pub(crate) fn global_hash_kernel<P: LpProgram + ?Sized>(
    ctx: &mut KernelCtx,
    csr: &Csr,
    spoken: &[Label],
    prog: &P,
    vertices: &[VertexId],
    out: &mut Vec<(VertexId, Decision)>,
) {
    let max_deg = vertices
        .iter()
        .map(|&v| csr.degree(v) as usize)
        .max()
        .unwrap_or(0);
    let mut ght = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
    for &v in vertices {
        ctx.warps_launched(1);
        ctx.lanes_active(u64::from(csr.degree(v)).min(32));
        ght.clear();
        let off = csr.offset(v);
        let nbrs = csr.neighbors(v);
        let region_slots = ((2 * nbrs.len()).max(16)).next_power_of_two() as u64;
        let region = layout::GHT + csr.offset(v) * 16;
        // The per-vertex table region must be zeroed every iteration — a
        // cost the shared-memory kernels never pay.
        ctx.global_write_seq(region, region_slots, 8);
        for (c, chunk) in nbrs.chunks(WARP_SIZE).enumerate() {
            ctx.global_read_seq(
                layout::TARGETS + (off + (c * WARP_SIZE) as u64) * 4,
                chunk.len() as u64,
                4,
            );
            charge_label_gather(ctx, chunk);
            let mut addrs = [0u64; WARP_SIZE];
            for (i, &u) in chunk.iter().enumerate() {
                let edge = off + (c * WARP_SIZE + i) as u64;
                let contrib = prog.load_neighbor(v, u, edge, spoken[u as usize]);
                match ght.insert_add(u64::from(contrib.label), contrib.weight) {
                    InsertOutcome::Added { .. } => {}
                    InsertOutcome::Full { .. } => unreachable!("GHT sized to 2x degree"),
                }
                addrs[i] = region + (u64::from(contrib.label) % region_slots) * 8;
            }
            ctx.alu(2);
            ctx.global_atomic(&addrs[..chunk.len()]);
        }
        // Scan the region (coalesced) for the best final score.
        ctx.global_read_seq(region, region_slots, 8);
        let mut best: Option<BestLabel> = None;
        let current = spoken[v as usize];
        for (l, freq) in ght.iter() {
            let label = l as Label;
            BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
        }
        ctx.alu(2 * ght.occupied() as u64);
        ctx.intrinsic(5);
        ctx.global_write_scattered(1);
        out.push((v, BestLabel::into_decision(best)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::ClassicLp;
    use glp_gpusim::DeviceConfig;
    use glp_graph::gen::{star, two_cliques_bridge};

    fn exact_reference(csr: &Csr, spoken: &[Label], prog: &ClassicLp, v: VertexId) -> Decision {
        let mut counts = std::collections::HashMap::<Label, f64>::new();
        let off = csr.offset(v);
        for (j, &u) in csr.neighbors(v).iter().enumerate() {
            let c = prog.load_neighbor(v, u, off + j as u64, spoken[u as usize]);
            *counts.entry(c.label).or_default() += c.weight;
        }
        let mut best: Option<BestLabel> = None;
        for (&l, &f) in &counts {
            BestLabel::offer(&mut best, l, prog.label_score(v, l, f), spoken[v as usize]);
        }
        BestLabel::into_decision(best)
    }

    fn run_all_kernels(gname: &str, g: &glp_graph::Graph) {
        let cfg = DeviceConfig::titan_v();
        let prog = ClassicLp::new(g.num_vertices());
        let spoken: Vec<Label> = (0..g.num_vertices() as Label).collect();
        let csr = g.incoming();
        let all: Vec<VertexId> = (0..g.num_vertices() as VertexId)
            .filter(|&v| g.degree(v) > 0)
            .collect();
        let low: Vec<VertexId> = all.iter().copied().filter(|&v| g.degree(v) <= 32).collect();

        let mut expected: Vec<(VertexId, Decision)> = Vec::new();
        for &v in &all {
            expected.push((v, exact_reference(csr, &spoken, &prog, v)));
        }
        let sort = |v: &mut Vec<(VertexId, Decision)>| v.sort_by_key(|e| e.0);

        // Global kernel handles everything.
        let mut ctx = KernelCtx::new(&cfg);
        let mut got = Vec::new();
        global_hash_kernel(&mut ctx, csr, &spoken, &prog, &all, &mut got);
        sort(&mut got);
        assert_eq!(got, expected, "{gname}: global kernel");

        // Mid kernel handles everything whose degree fits its HT.
        let ht_slots = 4096;
        let fit: Vec<VertexId> = all
            .iter()
            .copied()
            .filter(|&v| (g.degree(v) as usize) <= ht_slots)
            .collect();
        let mut ctx = KernelCtx::new(&cfg);
        let mut got = Vec::new();
        warp_per_vertex_kernel(&mut ctx, csr, &spoken, &prog, &fit, ht_slots, &mut got);
        sort(&mut got);
        let expected_fit: Vec<_> = expected
            .iter()
            .copied()
            .filter(|e| fit.contains(&e.0))
            .collect();
        assert_eq!(got, expected_fit, "{gname}: mid kernel");

        // Warp-packed kernel on the low bucket.
        let mut ctx = KernelCtx::new(&cfg);
        let mut got = Vec::new();
        warp_packed_kernel(&mut ctx, csr, &spoken, &prog, &low, &mut got);
        sort(&mut got);
        let expected_low: Vec<_> = expected
            .iter()
            .copied()
            .filter(|e| low.contains(&e.0))
            .collect();
        assert_eq!(got, expected_low, "{gname}: warp kernel");

        // Block CMS+HT kernel on everything (tiny HT forces CMS exercise).
        let geom = SmemGeometry {
            ht_slots: 8,
            ht_probe_limit: 4,
            cms_depth: 4,
            cms_width: 64,
        };
        let mut ctx = KernelCtx::new(&cfg);
        let mut got = Vec::new();
        let mut stats = ShardStats::default();
        block_cms_ht_kernel(
            &mut ctx, csr, &spoken, &prog, &all, geom, &mut stats, &mut got,
        );
        sort(&mut got);
        assert_eq!(got, expected, "{gname}: block kernel");
        assert_eq!(stats.smem_vertices, all.len() as u64);
    }

    #[test]
    fn kernels_agree_on_two_cliques() {
        run_all_kernels("two_cliques", &two_cliques_bridge(6));
    }

    #[test]
    fn kernels_agree_on_star() {
        run_all_kernels("star", &star(300));
    }

    #[test]
    fn block_kernel_fallback_still_exact() {
        // Star hub with 299 distinct neighbor labels and an 8-slot HT: the
        // MFL is likely outside the HT, forcing fallbacks, but the result
        // must still match the reference (computed above in run_all_kernels
        // for the same graph). Here we just confirm fallbacks occur.
        let g = star(300);
        let cfg = DeviceConfig::titan_v();
        let prog = ClassicLp::new(g.num_vertices());
        let spoken: Vec<Label> = (0..g.num_vertices() as Label).collect();
        let geom = SmemGeometry {
            ht_slots: 8,
            ht_probe_limit: 4,
            cms_depth: 4,
            cms_width: 64,
        };
        let mut ctx = KernelCtx::new(&cfg);
        let mut got = Vec::new();
        let mut stats = ShardStats::default();
        block_cms_ht_kernel(
            &mut ctx,
            g.incoming(),
            &spoken,
            &prog,
            &[0],
            geom,
            &mut stats,
            &mut got,
        );
        // 299 distinct singleton labels, 8-slot HT: CMS estimate ties or
        // beats the HT's best (all frequencies 1) only when collisions
        // inflate an estimate; either way the winner is the smallest label.
        assert_eq!(got[0].1.map(|d| d.0), Some(1));
        assert_eq!(stats.smem_vertices, 1);
    }

    #[test]
    fn warp_packing_fills_lanes() {
        // 16 vertices of degree 2 pack exactly one warp.
        let g = glp_graph::gen::cycle(16);
        let cfg = DeviceConfig::titan_v();
        let prog = ClassicLp::new(16);
        let spoken: Vec<Label> = (0..16).collect();
        let all: Vec<VertexId> = (0..16).collect();
        let mut ctx = KernelCtx::new(&cfg);
        let mut got = Vec::new();
        warp_packed_kernel(&mut ctx, g.incoming(), &spoken, &prog, &all, &mut got);
        assert_eq!(ctx.counters.warps_launched, 1);
        assert_eq!(got.len(), 16);
    }

    #[test]
    fn warp_packing_multiplies_utilization() {
        // Degree-2 vertices: one-warp-one-vertex keeps 2/32 lanes busy;
        // packing fills the warp (the whole point of §4.2).
        let g = glp_graph::gen::cycle(96);
        let cfg = DeviceConfig::titan_v();
        let prog = ClassicLp::new(96);
        let spoken: Vec<Label> = (0..96).collect();
        let all: Vec<VertexId> = (0..96).collect();

        let mut packed = KernelCtx::new(&cfg);
        let mut out = Vec::new();
        warp_packed_kernel(&mut packed, g.incoming(), &spoken, &prog, &all, &mut out);
        let mut per_vertex = KernelCtx::new(&cfg);
        let mut out2 = Vec::new();
        global_hash_kernel(
            &mut per_vertex,
            g.incoming(),
            &spoken,
            &prog,
            &all,
            &mut out2,
        );

        let u_packed = packed.counters.warp_utilization();
        let u_single = per_vertex.counters.warp_utilization();
        assert!(u_packed > 0.9, "packed utilization {u_packed}");
        assert!(u_single < 0.1, "one-warp-one-vertex utilization {u_single}");
    }

    #[test]
    fn global_kernel_costs_more_sectors_than_mid() {
        // Same work, global vs shared counting: global must move more
        // global-memory sectors (its atomics hit scattered table slots).
        let g = two_cliques_bridge(20);
        let cfg = DeviceConfig::titan_v();
        let prog = ClassicLp::new(g.num_vertices());
        let spoken: Vec<Label> = (0..g.num_vertices() as Label).collect();
        let all: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();

        let mut ctx_g = KernelCtx::new(&cfg);
        let mut out = Vec::new();
        global_hash_kernel(&mut ctx_g, g.incoming(), &spoken, &prog, &all, &mut out);

        let mut ctx_m = KernelCtx::new(&cfg);
        let mut out2 = Vec::new();
        warp_per_vertex_kernel(
            &mut ctx_m,
            g.incoming(),
            &spoken,
            &prog,
            &all,
            256,
            &mut out2,
        );

        assert!(
            ctx_g.counters.global_sectors() > 2 * ctx_m.counters.global_sectors(),
            "global {} vs mid {}",
            ctx_g.counters.global_sectors(),
            ctx_m.counters.global_sectors()
        );
    }
}
