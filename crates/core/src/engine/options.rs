//! The unified run-configuration API: [`RunOptions`] + [`FrontierMode`].
//!
//! Every engine in the workspace — the four GLP engines here, the CPU and
//! GPU baselines in `glp-baselines`, and the simulated in-house cluster in
//! `glp-fraud` — consumes the same options struct through the
//! [`Engine`](super::Engine) trait. Engine constructors own only
//! *resources* (a device, a device set, a cluster model); everything that
//! describes *one run* lives here, so the ablation binaries toggle a
//! single knob instead of reaching into per-engine config structs.

use super::dispatch::DegreeThresholds;
use super::kernels::SmemGeometry;
use super::MflStrategy;
use crate::api::LpProgram;
use glp_trace::Tracer;
use std::fmt;
use std::sync::Arc;

/// How an engine schedules vertices across iterations.
///
/// The three sparse modes compute the **same frontier** — a vertex is
/// active at `t + 1` iff some in-neighbor's spoken label changed at `t` —
/// they differ only in *how* it is rebuilt, and therefore in modeled
/// cost. Labels, `changed` traces, and `active` traces are bit-identical
/// across all four modes (the contract `tests/direction_equivalence.rs`
/// pins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierMode {
    /// Recompute every vertex every iteration — the waste §2.2 attributes
    /// to prior GPU LP systems ("label values ... are repeatedly loaded
    /// ... but only a subset of them have their labels updated").
    Dense,
    /// Always rebuild by **scatter**: every changed vertex walks its
    /// out-adjacency and marks the neighbors' bitmap bits. Cheap on
    /// sparse tails, but each mark is an uncoalesced sector write, so a
    /// saturated frontier pays ~a sector per touched edge.
    Push,
    /// Always rebuild by **gather**: every vertex scans its in-neighbors
    /// (the reverse-adjacency view the graph already materializes) until
    /// it finds a changed one. Fully coalesced and bounded by one sweep
    /// of the edge set, so it wins when the frontier is dense or the
    /// graph is high-degree — the Gunrock/GraphBLAST pull regime.
    Pull,
    /// Direction-optimized: per iteration, choose push or pull by
    /// comparing their modeled byte volumes (frontier density × average
    /// degree against the cost model's coalescing crossover,
    /// [`CostModel::prefer_pull`](glp_gpusim::CostModel::prefer_pull)).
    /// The measurement itself is charged (`frontier_density` kernel).
    /// The default.
    #[default]
    Auto,
}

impl FrontierMode {
    /// Whether a run over a program with the given `sparse_activation`
    /// declaration actually schedules sparsely. Every non-dense mode —
    /// `Push`, `Pull`, and `Auto` — is sparse-capable; programs without
    /// sparse activation get the dense schedule under all of them, the
    /// same fallback rule the Ligra baseline applies to LLP/SLP.
    #[inline]
    pub fn sparse(self, program_sparse: bool) -> bool {
        match self {
            FrontierMode::Dense => false,
            FrontierMode::Push | FrontierMode::Pull | FrontierMode::Auto => program_sparse,
        }
    }
}

/// Which way one iteration's frontier was rebuilt — recorded per
/// iteration in
/// [`LpRunReport::direction_per_iteration`](crate::LpRunReport::direction_per_iteration)
/// and tagged onto the following iteration's Dispatch span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// No frontier was maintained (dense schedule).
    Dense,
    /// Scatter from changed vertices over out-edges.
    Push,
    /// Gather at every vertex from in-neighbors.
    Pull,
}

/// What the engine saw at one completed BSP barrier, handed to the
/// [`BarrierHook`] after `end_iteration` ran. Everything a checkpointing
/// caller needs to resume from exactly this point: the iteration that just
/// finished, its trace values, and the frontier that iteration `iteration
/// + 1` would consume.
pub struct BarrierEvent<'a> {
    /// The 0-based iteration that just completed.
    pub iteration: u32,
    /// Labels changed during it.
    pub changed: u64,
    /// Vertices it scheduled (the `active_per_iteration` value).
    pub scheduled: u64,
    /// The next iteration's activation bitmap, when the run schedules
    /// sparsely; `None` under the dense schedule.
    pub active: Option<&'a [bool]>,
    /// How this barrier's frontier rebuild ran ([`Direction::Dense`]
    /// under the dense schedule). A resuming caller carries it into the
    /// stitched [`direction_per_iteration`](crate::LpRunReport::direction_per_iteration)
    /// trace.
    pub direction: Direction,
    /// The program, for [`save_state`](crate::LpProgram::save_state).
    pub program: &'a dyn LpProgram,
}

impl fmt::Debug for BarrierEvent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BarrierEvent")
            .field("iteration", &self.iteration)
            .field("changed", &self.changed)
            .field("scheduled", &self.scheduled)
            .field("active", &self.active.map(<[bool]>::len))
            .field("direction", &self.direction)
            .finish_non_exhaustive()
    }
}

/// A callback fired by the BSP engines after every completed barrier.
///
/// Installing one makes the engine charge a `barrier_snapshot` kernel per
/// barrier (checkpointing is not free — the labels have to be read back),
/// with the modeled cost surfaced in
/// [`LpRunReport::snapshot_seconds`](crate::LpRunReport::snapshot_seconds).
#[derive(Clone)]
pub struct BarrierHook(Arc<dyn Fn(&BarrierEvent<'_>) + Send + Sync>);

impl BarrierHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&BarrierEvent<'_>) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Invokes the callback.
    #[inline]
    pub fn fire(&self, ev: &BarrierEvent<'_>) {
        (self.0)(ev)
    }
}

impl fmt::Debug for BarrierHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BarrierHook(..)")
    }
}

/// Per-run configuration consumed by every [`Engine`](super::Engine).
///
/// Construct with [`RunOptions::default`] and chain the `with_*` builders,
/// or use struct-update syntax — all fields are public. Fields an engine
/// has no use for are ignored (e.g. the CPU baselines never read the
/// shared-memory geometry; the GPU engines never read `sweep_order`).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Hard iteration cap regardless of the program's own termination.
    pub max_iterations: u32,
    /// Vertex scheduling across iterations (dense vs. active frontier).
    pub frontier: FrontierMode,
    /// MFL strategy of the GPU kernels (the Table 3 ablation axis).
    pub strategy: MflStrategy,
    /// Degree thresholds for kernel dispatch (§5.3: low 32, high 128).
    pub thresholds: DegreeThresholds,
    /// Shared HT slots of the one-warp-one-vertex kernel. Must be at least
    /// `thresholds.high` so mid-degree tables never overflow.
    pub mid_ht_slots: usize,
    /// Shared HT slots `h` of the CMS+HT kernel (§4.1).
    pub ht_slots: usize,
    /// HT probe budget before a label overflows to the CMS.
    pub ht_probe_limit: u32,
    /// CMS rows `d`.
    pub cms_depth: usize,
    /// CMS buckets per row `w`.
    pub cms_width: usize,
    /// Harness OS threads per kernel (0 = number of available cores,
    /// capped at 16). Has no effect on modeled time or results.
    pub shards: usize,
    /// Vertex visit order of the asynchronous sequential engine; ignored
    /// by the BSP engines.
    pub sweep_order: SweepOrder,
    /// First iteration to execute (0 in an ordinary run). A resuming
    /// caller sets this to the iteration a previous attempt failed in,
    /// after restoring the program's state from the last completed
    /// barrier; the engine's iteration counter, traces, and termination
    /// checks all use the absolute number.
    pub start_iteration: u32,
    /// The activation bitmap the first executed iteration should consume
    /// — a resume bitmap captured by a [`BarrierEvent`], or a warm-start
    /// frontier for `start_iteration == 0`, where the caller warrants it
    /// covers every vertex whose decision could differ from the program's
    /// current state. Ignored when the run schedules densely.
    pub initial_frontier: Option<Vec<bool>>,
    /// Checkpoint callback fired after each completed barrier (BSP
    /// engines only; the asynchronous sequential sweep has no barrier).
    pub barrier_hook: Option<BarrierHook>,
    /// Span recorder threaded through the whole run: engines emit
    /// run/iteration/dispatch spans, the device emits kernel and transfer
    /// spans on the modeled clock, and the resilience layers emit
    /// retry/degrade/repartition events. `None` (the default) records
    /// nothing and changes nothing — results and modeled time are
    /// byte-identical either way.
    pub tracer: Option<Tracer>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            frontier: FrontierMode::Auto,
            strategy: MflStrategy::SmemWarp,
            thresholds: DegreeThresholds::default(),
            mid_ht_slots: 256,
            ht_slots: 1024,
            ht_probe_limit: 32,
            cms_depth: 4,
            cms_width: 2048,
            shards: 0,
            sweep_order: SweepOrder::Ascending,
            start_iteration: 0,
            initial_frontier: None,
            barrier_hook: None,
            tracer: None,
        }
    }
}

impl RunOptions {
    /// Caps the iteration count.
    pub fn with_max_iterations(mut self, max_iterations: u32) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Chooses the scheduling mode.
    pub fn with_frontier(mut self, frontier: FrontierMode) -> Self {
        self.frontier = frontier;
        self
    }

    /// Chooses the MFL strategy.
    pub fn with_strategy(mut self, strategy: MflStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Chooses the dispatch thresholds.
    pub fn with_thresholds(mut self, thresholds: DegreeThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the harness OS-thread count (0 = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Chooses the sequential engine's sweep order.
    pub fn with_sweep_order(mut self, sweep_order: SweepOrder) -> Self {
        self.sweep_order = sweep_order;
        self
    }

    /// Resumes from `iteration`, optionally restoring the frontier the
    /// failed iteration was scheduled against.
    pub fn resume_from(mut self, iteration: u32, frontier: Option<Vec<bool>>) -> Self {
        self.start_iteration = iteration;
        self.initial_frontier = frontier;
        self
    }

    /// Installs a per-barrier checkpoint callback.
    pub fn with_barrier_hook(mut self, hook: BarrierHook) -> Self {
        self.barrier_hook = Some(hook);
        self
    }

    /// Attaches a span recorder to the run.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    pub(crate) fn smem_geometry(&self) -> SmemGeometry {
        SmemGeometry {
            ht_slots: self.ht_slots,
            ht_probe_limit: self.ht_probe_limit,
            cms_depth: self.cms_depth,
            cms_width: self.cms_width,
        }
    }

    /// Effective harness thread count: `shards` if set, otherwise the
    /// available cores capped at 16. Used by every engine and baseline.
    pub fn resolve_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16)
        }
    }

    /// Checks the GPU-facing invariants against a device's shared-memory
    /// budget. Every GPU engine calls this at the top of `run`.
    pub(crate) fn validate_for_device(&self, shared_mem_per_block: usize) {
        assert!(
            self.mid_ht_slots >= self.thresholds.high as usize,
            "mid HT ({}) must hold every distinct label of a mid-degree vertex (<= {})",
            self.mid_ht_slots,
            self.thresholds.high
        );
        self.smem_geometry().validate(shared_mem_per_block);
    }
}

/// Vertex visit order for the sequential engine's asynchronous sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// Ascending vertex id every sweep (deterministic, cache friendly).
    #[default]
    Ascending,
    /// Alternate ascending/descending sweeps (reduces order bias).
    Alternating,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_modes_respect_program_declaration() {
        // Every non-dense mode is sparse-capable; none may override a
        // program that did not declare sparse activation.
        for mode in [FrontierMode::Auto, FrontierMode::Push, FrontierMode::Pull] {
            assert!(mode.sparse(true), "{mode:?} must schedule sparsely");
            assert!(!mode.sparse(false), "{mode:?} must fall back to dense");
        }
        assert!(!FrontierMode::Dense.sparse(true));
        assert!(!FrontierMode::Dense.sparse(false));
    }

    #[test]
    fn builders_compose() {
        let o = RunOptions::default()
            .with_max_iterations(7)
            .with_frontier(FrontierMode::Dense)
            .with_strategy(MflStrategy::Global)
            .with_shards(3);
        assert_eq!(o.max_iterations, 7);
        assert_eq!(o.frontier, FrontierMode::Dense);
        assert_eq!(o.strategy, MflStrategy::Global);
        assert_eq!(o.shards, 3);
        assert_eq!(o.sweep_order, SweepOrder::Ascending);
    }

    #[test]
    fn resume_and_hook_builders() {
        let o = RunOptions::default()
            .resume_from(4, Some(vec![true, false]))
            .with_barrier_hook(BarrierHook::new(|_| {}))
            .with_tracer(Tracer::new());
        assert_eq!(o.start_iteration, 4);
        assert_eq!(o.initial_frontier.as_deref(), Some(&[true, false][..]));
        assert!(o.barrier_hook.is_some());
        // RunOptions stays Clone with a hook and tracer installed (both
        // Arc-backed handles).
        let o2 = o.clone();
        assert!(o2.barrier_hook.is_some());
        assert!(o2.tracer.is_some());
    }

    #[test]
    #[should_panic(expected = "mid HT")]
    fn mid_ht_must_cover_high_threshold() {
        let o = RunOptions {
            mid_ht_slots: 8,
            ..Default::default()
        };
        o.validate_for_device(48 * 1024);
    }
}
