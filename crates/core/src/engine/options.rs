//! The unified run-configuration API: [`RunOptions`] + [`FrontierMode`].
//!
//! Every engine in the workspace — the four GLP engines here, the CPU and
//! GPU baselines in `glp-baselines`, and the simulated in-house cluster in
//! `glp-fraud` — consumes the same options struct through the
//! [`Engine`](super::Engine) trait. Engine constructors own only
//! *resources* (a device, a device set, a cluster model); everything that
//! describes *one run* lives here, so the ablation binaries toggle a
//! single knob instead of reaching into per-engine config structs.

use super::dispatch::DegreeThresholds;
use super::kernels::SmemGeometry;
use super::MflStrategy;

/// How an engine schedules vertices across iterations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontierMode {
    /// Recompute every vertex every iteration — the waste §2.2 attributes
    /// to prior GPU LP systems ("label values ... are repeatedly loaded
    /// ... but only a subset of them have their labels updated").
    Dense,
    /// Active-frontier scheduling: after iteration `t`, only vertices with
    /// at least one in-neighbor whose spoken label changed at `t` are
    /// recomputed at `t+1`. Sound only for programs that declare
    /// [`sparse_activation`](crate::LpProgram::sparse_activation); every
    /// other program silently gets the dense schedule — the same fallback
    /// rule the Ligra baseline applies to LLP/SLP. The default.
    #[default]
    Auto,
}

impl FrontierMode {
    /// Whether a run over a program with the given `sparse_activation`
    /// declaration actually schedules sparsely.
    #[inline]
    pub fn sparse(self, program_sparse: bool) -> bool {
        self == FrontierMode::Auto && program_sparse
    }
}

/// Per-run configuration consumed by every [`Engine`](super::Engine).
///
/// Construct with [`RunOptions::default`] and chain the `with_*` builders,
/// or use struct-update syntax — all fields are public. Fields an engine
/// has no use for are ignored (e.g. the CPU baselines never read the
/// shared-memory geometry; the GPU engines never read `sweep_order`).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Hard iteration cap regardless of the program's own termination.
    pub max_iterations: u32,
    /// Vertex scheduling across iterations (dense vs. active frontier).
    pub frontier: FrontierMode,
    /// MFL strategy of the GPU kernels (the Table 3 ablation axis).
    pub strategy: MflStrategy,
    /// Degree thresholds for kernel dispatch (§5.3: low 32, high 128).
    pub thresholds: DegreeThresholds,
    /// Shared HT slots of the one-warp-one-vertex kernel. Must be at least
    /// `thresholds.high` so mid-degree tables never overflow.
    pub mid_ht_slots: usize,
    /// Shared HT slots `h` of the CMS+HT kernel (§4.1).
    pub ht_slots: usize,
    /// HT probe budget before a label overflows to the CMS.
    pub ht_probe_limit: u32,
    /// CMS rows `d`.
    pub cms_depth: usize,
    /// CMS buckets per row `w`.
    pub cms_width: usize,
    /// Harness OS threads per kernel (0 = number of available cores,
    /// capped at 16). Has no effect on modeled time or results.
    pub shards: usize,
    /// Vertex visit order of the asynchronous sequential engine; ignored
    /// by the BSP engines.
    pub sweep_order: SweepOrder,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            frontier: FrontierMode::Auto,
            strategy: MflStrategy::SmemWarp,
            thresholds: DegreeThresholds::default(),
            mid_ht_slots: 256,
            ht_slots: 1024,
            ht_probe_limit: 32,
            cms_depth: 4,
            cms_width: 2048,
            shards: 0,
            sweep_order: SweepOrder::Ascending,
        }
    }
}

impl RunOptions {
    /// Caps the iteration count.
    pub fn with_max_iterations(mut self, max_iterations: u32) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Chooses the scheduling mode.
    pub fn with_frontier(mut self, frontier: FrontierMode) -> Self {
        self.frontier = frontier;
        self
    }

    /// Chooses the MFL strategy.
    pub fn with_strategy(mut self, strategy: MflStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Chooses the dispatch thresholds.
    pub fn with_thresholds(mut self, thresholds: DegreeThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the harness OS-thread count (0 = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Chooses the sequential engine's sweep order.
    pub fn with_sweep_order(mut self, sweep_order: SweepOrder) -> Self {
        self.sweep_order = sweep_order;
        self
    }

    pub(crate) fn smem_geometry(&self) -> SmemGeometry {
        SmemGeometry {
            ht_slots: self.ht_slots,
            ht_probe_limit: self.ht_probe_limit,
            cms_depth: self.cms_depth,
            cms_width: self.cms_width,
        }
    }

    /// Effective harness thread count: `shards` if set, otherwise the
    /// available cores capped at 16. Used by every engine and baseline.
    pub fn resolve_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16)
        }
    }

    /// Checks the GPU-facing invariants against a device's shared-memory
    /// budget. Every GPU engine calls this at the top of `run`.
    pub(crate) fn validate_for_device(&self, shared_mem_per_block: usize) {
        assert!(
            self.mid_ht_slots >= self.thresholds.high as usize,
            "mid HT ({}) must hold every distinct label of a mid-degree vertex (<= {})",
            self.mid_ht_slots,
            self.thresholds.high
        );
        self.smem_geometry().validate(shared_mem_per_block);
    }
}

/// Vertex visit order for the sequential engine's asynchronous sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// Ascending vertex id every sweep (deterministic, cache friendly).
    #[default]
    Ascending,
    /// Alternate ascending/descending sweeps (reduces order bias).
    Alternating,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_respects_program_declaration() {
        assert!(FrontierMode::Auto.sparse(true));
        assert!(!FrontierMode::Auto.sparse(false));
        assert!(!FrontierMode::Dense.sparse(true));
        assert!(!FrontierMode::Dense.sparse(false));
    }

    #[test]
    fn builders_compose() {
        let o = RunOptions::default()
            .with_max_iterations(7)
            .with_frontier(FrontierMode::Dense)
            .with_strategy(MflStrategy::Global)
            .with_shards(3);
        assert_eq!(o.max_iterations, 7);
        assert_eq!(o.frontier, FrontierMode::Dense);
        assert_eq!(o.strategy, MflStrategy::Global);
        assert_eq!(o.shards, 3);
        assert_eq!(o.sweep_order, SweepOrder::Ascending);
    }

    #[test]
    #[should_panic(expected = "mid HT")]
    fn mid_ht_must_cover_high_threshold() {
        let o = RunOptions {
            mid_ht_slots: 8,
            ..Default::default()
        };
        o.validate_for_device(48 * 1024);
    }
}
