//! Sequential (asynchronous) reference engine.
//!
//! Raghavan et al.'s original LPA updates vertices **asynchronously** — a
//! vertex's new label is visible to later vertices in the same sweep —
//! precisely because synchronous updates can oscillate (on bipartite
//! graphs they provably 2-cycle; see the tie-rule discussion in
//! [`super::BestLabel`]). The GPU engines are synchronous (BSP is what a
//! GPU can do); this engine is the asynchronous gold standard used to
//! study the difference, and a convenient single-threaded oracle for
//! debugging programs.
//!
//! Not part of the paper's evaluation — no cost model is attached; only
//! wall-clock is reported.

use super::{BestLabel, Decision};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_graph::{Graph, Label, VertexId};
use glp_sketch::{BoundedHashTable, InsertOutcome};
use std::time::Instant;

/// Vertex visit order for the asynchronous sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOrder {
    /// Ascending vertex id every sweep (deterministic, cache friendly).
    Ascending,
    /// Alternate ascending/descending sweeps (reduces order bias).
    Alternating,
}

/// The asynchronous engine.
#[derive(Clone, Debug)]
pub struct SequentialEngine {
    order: SweepOrder,
    max_iterations: u32,
}

impl SequentialEngine {
    /// Ascending-order sweeps.
    pub fn new() -> Self {
        Self {
            order: SweepOrder::Ascending,
            max_iterations: 10_000,
        }
    }

    /// Chooses the sweep order.
    pub fn with_order(order: SweepOrder) -> Self {
        Self {
            order,
            ..Self::new()
        }
    }

    /// Runs `prog` on `g` with asynchronous sweeps: `pick_label` is
    /// re-read per edge, so updates from earlier vertices in the sweep are
    /// visible immediately.
    pub fn run<P: LpProgram>(&self, g: &Graph, prog: &mut P) -> LpRunReport {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let csr = g.incoming();
        let max_deg = (0..n as VertexId)
            .map(|v| csr.degree(v) as usize)
            .max()
            .unwrap_or(0);
        let mut ht = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
        let mut report = LpRunReport::default();

        for iteration in 0..self.max_iterations {
            prog.begin_iteration(iteration);
            let mut changed = 0u64;
            let visit = |v: VertexId, prog: &mut P, ht: &mut BoundedHashTable| {
                if csr.degree(v) == 0 {
                    return 0u64;
                }
                ht.clear();
                let off = csr.offset(v);
                // Asynchronous: read each neighbor's *current* spoken label.
                for (j, &u) in csr.neighbors(v).iter().enumerate() {
                    let spoken_u: Label = prog.pick_label(u);
                    let c = prog.load_neighbor(v, u, off + j as u64, spoken_u);
                    match ht.insert_add(u64::from(c.label), c.weight) {
                        InsertOutcome::Added { .. } => {}
                        InsertOutcome::Full { .. } => unreachable!("scratch sized to 2x degree"),
                    }
                }
                let current = prog.pick_label(v);
                let mut best: Option<BestLabel> = None;
                for (l, freq) in ht.iter() {
                    let label = l as Label;
                    BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
                }
                let d: Decision = BestLabel::into_decision(best);
                u64::from(prog.update_vertex(v, d))
            };
            let descending = self.order == SweepOrder::Alternating && iteration % 2 == 1;
            if descending {
                for v in (0..n as VertexId).rev() {
                    changed += visit(v, prog, &mut ht);
                }
            } else {
                for v in 0..n as VertexId {
                    changed += visit(v, prog, &mut ht);
                }
            }
            prog.end_iteration(iteration);
            report.changed_per_iteration.push(changed);
            report.iterations = iteration + 1;
            if prog.finished(iteration, changed) {
                break;
            }
        }
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        report
    }
}

impl Default for SequentialEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::ClassicLp;
    use glp_graph::gen::{path, two_cliques_bridge};
    use glp_graph::GraphBuilder;

    #[test]
    fn finds_communities_like_sync_engine() {
        let g = two_cliques_bridge(8);
        let mut prog = ClassicLp::new(g.num_vertices());
        SequentialEngine::new().run(&g, &mut prog);
        let labels = prog.labels();
        assert!(labels[..8].iter().all(|&l| l == labels[0]));
        assert!(labels[8..].iter().all(|&l| l == labels[8]));
    }

    #[test]
    fn converges_on_bipartite_pair_where_sync_oscillates() {
        // A single edge: synchronous LP swaps the two labels forever; the
        // asynchronous sweep settles in one pass.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).symmetrize(true);
        let g = b.build();
        let mut prog = ClassicLp::with_max_iterations(2, 50);
        let report = SequentialEngine::new().run(&g, &mut prog);
        assert!(
            report.iterations < 50,
            "async LPA should converge, ran {} iterations",
            report.iterations
        );
        assert_eq!(prog.labels()[0], prog.labels()[1]);
    }

    #[test]
    fn async_propagates_faster_than_one_hop_per_sweep() {
        // On a path, an ascending sweep carries low labels all the way to
        // the right end within a single iteration.
        let g = path(64);
        let mut prog = ClassicLp::with_max_iterations(64, 100);
        let report = SequentialEngine::new().run(&g, &mut prog);
        assert!(
            report.iterations < 30,
            "async sweeps should converge quickly, took {}",
            report.iterations
        );
    }

    #[test]
    fn alternating_order_still_converges() {
        let g = two_cliques_bridge(6);
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 50);
        let report = SequentialEngine::with_order(SweepOrder::Alternating).run(&g, &mut prog);
        assert_eq!(*report.changed_per_iteration.last().unwrap(), 0);
    }
}
