//! Sequential (asynchronous) reference engine.
//!
//! Raghavan et al.'s original LPA updates vertices **asynchronously** — a
//! vertex's new label is visible to later vertices in the same sweep —
//! precisely because synchronous updates can oscillate (on bipartite
//! graphs they provably 2-cycle; see the tie-rule discussion in
//! [`super::BestLabel`]). The GPU engines are synchronous (BSP is what a
//! GPU can do); this engine is the asynchronous gold standard used to
//! study the difference, and a convenient single-threaded oracle for
//! debugging programs.
//!
//! Frontier scheduling composes with the asynchronous sweep: a vertex is
//! revisited only while some in-neighbor changed since its last visit.
//! Marks are set *during* the sweep, so a vertex downstream of a change is
//! picked up in the same pass — exactly the set of visits on which a dense
//! sweep could make progress, hence bit-identical labels.
//!
//! Not part of the paper's evaluation — no cost model is attached; only
//! wall-clock is reported.

use super::gpu::{choose_direction, initial_active, recompute_active, recompute_active_pull};
use super::options::BarrierEvent;
use super::{
    BestLabel, Decision, Direction, Engine, EngineError, FrontierMode, RunOptions, SweepOrder,
};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_gpusim::CostModel;
use glp_graph::{Graph, Label, VertexId};
use glp_sketch::{BoundedHashTable, InsertOutcome};
use glp_trace::{Category, Clock};
use std::time::Instant;

/// The sequential host engine. Stateless — sweep order and iteration cap
/// come from [`RunOptions`]. Two modes:
///
/// * [`SequentialEngine::new`] — the **asynchronous** gold standard
///   described above;
/// * [`SequentialEngine::bsp`] — a **synchronous** (BSP) host sweep that
///   reproduces the GPU engines' labels *and* per-iteration traces
///   byte-for-byte: the bottom rung of
///   [`ResilientEngine`](super::ResilientEngine)'s degradation ladder,
///   where a run stranded by dead devices finishes on the host without
///   changing its answer.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine {
    bsp: bool,
}

impl SequentialEngine {
    /// The asynchronous engine (no resources to own).
    pub fn new() -> Self {
        Self { bsp: false }
    }

    /// The synchronous (BSP) host engine: bit-identical to the GPU
    /// engines, iteration for iteration. No cost model is attached — only
    /// wall-clock is reported.
    pub fn bsp() -> Self {
        Self { bsp: true }
    }

    /// Whether this instance runs synchronous BSP sweeps.
    pub fn is_bsp(&self) -> bool {
        self.bsp
    }
}

impl Engine for SequentialEngine {
    fn name(&self) -> &'static str {
        if self.bsp {
            "Sequential-BSP"
        } else {
            "Sequential"
        }
    }

    /// Runs `prog` on `g`. Asynchronous mode re-reads `pick_label` per
    /// edge, so updates from earlier vertices in the sweep are visible
    /// immediately; BSP mode freezes the spoken labels per iteration like
    /// the GPU engines. Host execution cannot fault, so this engine never
    /// returns `Err`.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        if self.bsp {
            return Ok(run_bsp(g, prog, opts));
        }
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let csr = g.incoming();
        let out = g.outgoing();
        let max_deg = (0..n as VertexId)
            .map(|v| csr.degree(v) as usize)
            .max()
            .unwrap_or(0);
        let mut ht = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
        let sparse = opts.frontier.sparse(prog.sparse_activation());
        let mut active = initial_active(n, sparse, opts);
        // Pull-mode asynchronous scheduling: instead of changed vertices
        // scattering marks, each vertex gathers over its in-neighbors'
        // change stamps. Every visit takes a unique clock tick;
        // `visited_at[v]` is v's last visit, `stamp[u]` is u's last
        // *changing* visit, and v is armed iff `stamp[u] >= visited_at[v]`
        // for some in-neighbor u — `>=` (not `>`) because equality occurs
        // only when u == v via a self-loop, whose push analog is a vertex
        // re-marking itself in the same visit. `active` then carries only
        // the initial seed, consumed at first visit. This visits exactly
        // the set of vertices the scatter path visits, hence bit-identical
        // labels AND visit counts. There is no modeled cost on the host, so
        // `Auto` has no crossover to price and keeps the scatter path.
        let pull = sparse && opts.frontier == FrontierMode::Pull;
        let mut clock: u64 = 0;
        let mut visited_at: Vec<u64> = vec![0; if pull { n } else { 0 }];
        let mut stamp: Vec<u64> = vec![0; if pull { n } else { 0 }];
        let mut report = LpRunReport::default();
        // Host engines have no modeled clock: spans use wall seconds
        // relative to the run start.
        if let Some(t) = &opts.tracer {
            t.begin(Category::Run, self.name(), Clock::Wall, 0.0);
        }

        for iteration in opts.start_iteration..opts.max_iterations {
            if let Some(t) = &opts.tracer {
                t.begin_arg(
                    Category::Iteration,
                    "iteration",
                    Clock::Wall,
                    wall_start.elapsed().as_secs_f64(),
                    u64::from(iteration),
                );
            }
            prog.begin_iteration(iteration);
            let mut changed = 0u64;
            let mut visited = 0u64;
            let visit = |v: VertexId,
                         prog: &mut dyn LpProgram,
                         ht: &mut BoundedHashTable,
                         active: &mut [bool],
                         visited_at: &mut [u64],
                         stamp: &mut [u64],
                         clock: &mut u64,
                         visited: &mut u64| {
                if csr.degree(v) == 0 {
                    return 0u64;
                }
                if sparse {
                    let armed = active[v as usize]
                        || (pull
                            && csr.neighbors(v).iter().any(|&u| {
                                let s = stamp[u as usize];
                                s != 0 && s >= visited_at[v as usize]
                            }));
                    if !armed {
                        return 0u64;
                    }
                }
                // Consume the mark before recomputing: a same-sweep change
                // in an in-neighbor re-arms it (via scatter marks when
                // pushing, via the stamp comparison when pulling).
                active[v as usize] = false;
                *clock += 1;
                if pull {
                    visited_at[v as usize] = *clock;
                }
                *visited += 1;
                ht.clear();
                let off = csr.offset(v);
                // Asynchronous: read each neighbor's *current* spoken label.
                for (j, &u) in csr.neighbors(v).iter().enumerate() {
                    let spoken_u: Label = prog.pick_label(u);
                    let c = prog.load_neighbor(v, u, off + j as u64, spoken_u);
                    match ht.insert_add(u64::from(c.label), c.weight) {
                        InsertOutcome::Added { .. } => {}
                        InsertOutcome::Full { .. } => unreachable!("scratch sized to 2x degree"),
                    }
                }
                let current = prog.pick_label(v);
                let mut best: Option<BestLabel> = None;
                for (l, freq) in ht.iter() {
                    let label = l as Label;
                    BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
                }
                let d: Decision = BestLabel::into_decision(best);
                let did_change = prog.update_vertex(v, d);
                if did_change && sparse {
                    if pull {
                        stamp[v as usize] = *clock;
                    } else {
                        for &w in out.neighbors(v) {
                            active[w as usize] = true;
                        }
                    }
                }
                u64::from(did_change)
            };
            let descending = opts.sweep_order == SweepOrder::Alternating && iteration % 2 == 1;
            if descending {
                for v in (0..n as VertexId).rev() {
                    changed += visit(
                        v,
                        prog,
                        &mut ht,
                        &mut active,
                        &mut visited_at,
                        &mut stamp,
                        &mut clock,
                        &mut visited,
                    );
                }
            } else {
                for v in 0..n as VertexId {
                    changed += visit(
                        v,
                        prog,
                        &mut ht,
                        &mut active,
                        &mut visited_at,
                        &mut stamp,
                        &mut clock,
                        &mut visited,
                    );
                }
            }
            prog.end_iteration(iteration);
            report.changed_per_iteration.push(changed);
            report.active_per_iteration.push(visited);
            report.direction_per_iteration.push(if !sparse {
                Direction::Dense
            } else if pull {
                Direction::Pull
            } else {
                Direction::Push
            });
            report.iterations = iteration + 1;
            if let Some(t) = &opts.tracer {
                t.end(wall_start.elapsed().as_secs_f64());
            }
            if prog.finished(iteration, changed) {
                break;
            }
        }
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        if let Some(t) = &opts.tracer {
            t.end(report.wall_seconds);
        }
        Ok(report)
    }
}

/// The synchronous host sweep: the same BSP protocol as the GPU engines
/// (frozen spoken labels, exact per-label aggregation, the shared
/// [`BestLabel`] tie rule, ascending `update_vertex`, the shared frontier
/// recompute), minus the device — so its labels, `changed` trace, and
/// `active` trace are byte-identical to theirs. Supports iteration-granular
/// resume and the per-barrier hook; checkpoints cost nothing here
/// (`snapshots_taken` counts, `snapshot_seconds` stays 0 — host memory is
/// already addressable).
fn run_bsp(g: &Graph, prog: &mut dyn LpProgram, opts: &RunOptions) -> LpRunReport {
    let wall_start = Instant::now();
    let n = g.num_vertices();
    let csr = g.incoming();
    let max_deg = (0..n as VertexId)
        .map(|v| csr.degree(v) as usize)
        .max()
        .unwrap_or(0);
    let mut ht = BoundedHashTable::new((2 * max_deg).max(16), u32::MAX);
    let sparse = opts.frontier.sparse(prog.sparse_activation());
    let mut active = initial_active(n, sparse, opts);
    let mut spoken: Vec<Label> = vec![0; n];
    let mut decisions: Vec<Decision> = vec![None; n];
    // No device here, but `Auto` must make the same per-iteration push/pull
    // choices as the modeled tiers — every Device carries
    // `CostModel::default()`, so pricing against the default model keeps
    // the degradation ladder's traces bit-identical.
    let cost = CostModel::default();
    let mut report = LpRunReport::default();
    if let Some(t) = &opts.tracer {
        t.begin(Category::Run, "Sequential-BSP", Clock::Wall, 0.0);
    }

    for iteration in opts.start_iteration..opts.max_iterations {
        if let Some(t) = &opts.tracer {
            t.begin_arg(
                Category::Iteration,
                "iteration",
                Clock::Wall,
                wall_start.elapsed().as_secs_f64(),
                u64::from(iteration),
            );
        }
        prog.begin_iteration(iteration);
        for (v, s) in spoken.iter_mut().enumerate() {
            *s = prog.pick_label(v as VertexId);
        }
        let mut scheduled = 0u64;
        for v in 0..n as VertexId {
            decisions[v as usize] = None;
            if g.degree(v) == 0 || (sparse && !active[v as usize]) {
                continue;
            }
            scheduled += 1;
            ht.clear();
            let off = csr.offset(v);
            for (j, &u) in csr.neighbors(v).iter().enumerate() {
                let c = prog.load_neighbor(v, u, off + j as u64, spoken[u as usize]);
                match ht.insert_add(u64::from(c.label), c.weight) {
                    InsertOutcome::Added { .. } => {}
                    InsertOutcome::Full { .. } => unreachable!("scratch sized to 2x degree"),
                }
            }
            let current = spoken[v as usize];
            let mut best: Option<BestLabel> = None;
            for (l, freq) in ht.iter() {
                let label = l as Label;
                BestLabel::offer(&mut best, label, prog.label_score(v, label, freq), current);
            }
            decisions[v as usize] = BestLabel::into_decision(best);
        }
        let mut changed = 0u64;
        for (v, &d) in decisions.iter().enumerate() {
            if prog.update_vertex(v as VertexId, d) {
                changed += 1;
            }
        }
        let direction = if sparse {
            let dir = choose_direction(opts.frontier, g, &spoken, &decisions, &cost);
            if dir == Direction::Pull {
                recompute_active_pull(g, &spoken, &decisions, &mut active);
            } else {
                recompute_active(g, &spoken, &decisions, &mut active);
            }
            dir
        } else {
            Direction::Dense
        };
        prog.end_iteration(iteration);
        if let Some(hook) = &opts.barrier_hook {
            report.snapshots_taken += 1;
            if let Some(t) = &opts.tracer {
                t.instant(
                    Category::Resilience,
                    "snapshot",
                    Clock::Wall,
                    wall_start.elapsed().as_secs_f64(),
                );
            }
            hook.fire(&BarrierEvent {
                iteration,
                changed,
                scheduled,
                active: if sparse { Some(&active) } else { None },
                direction,
                program: &*prog,
            });
        }
        report.changed_per_iteration.push(changed);
        report.active_per_iteration.push(scheduled);
        report.direction_per_iteration.push(direction);
        report.iterations = iteration + 1;
        if let Some(t) = &opts.tracer {
            t.end(wall_start.elapsed().as_secs_f64());
        }
        if prog.finished(iteration, changed) {
            break;
        }
    }
    report.wall_seconds = wall_start.elapsed().as_secs_f64();
    if let Some(t) = &opts.tracer {
        t.end(report.wall_seconds);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::super::FrontierMode;
    use super::*;
    use crate::variants::ClassicLp;
    use glp_graph::gen::{path, two_cliques_bridge};
    use glp_graph::GraphBuilder;

    fn run(g: &Graph, prog: &mut ClassicLp, opts: &RunOptions) -> LpRunReport {
        SequentialEngine::new().run(g, prog, opts).unwrap()
    }

    #[test]
    fn finds_communities_like_sync_engine() {
        let g = two_cliques_bridge(8);
        let mut prog = ClassicLp::new(g.num_vertices());
        run(&g, &mut prog, &RunOptions::default());
        let labels = prog.labels();
        assert!(labels[..8].iter().all(|&l| l == labels[0]));
        assert!(labels[8..].iter().all(|&l| l == labels[8]));
    }

    #[test]
    fn converges_on_bipartite_pair_where_sync_oscillates() {
        // A single edge: synchronous LP swaps the two labels forever; the
        // asynchronous sweep settles in one pass.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).symmetrize(true);
        let g = b.build();
        let mut prog = ClassicLp::with_max_iterations(2, 50);
        let report = run(&g, &mut prog, &RunOptions::default());
        assert!(
            report.iterations < 50,
            "async LPA should converge, ran {} iterations",
            report.iterations
        );
        assert_eq!(prog.labels()[0], prog.labels()[1]);
    }

    #[test]
    fn async_propagates_faster_than_one_hop_per_sweep() {
        // On a path, an ascending sweep carries low labels all the way to
        // the right end within a single iteration.
        let g = path(64);
        let mut prog = ClassicLp::with_max_iterations(64, 100);
        let report = run(&g, &mut prog, &RunOptions::default());
        assert!(
            report.iterations < 30,
            "async sweeps should converge quickly, took {}",
            report.iterations
        );
    }

    #[test]
    fn alternating_order_still_converges() {
        let g = two_cliques_bridge(6);
        let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 50);
        let opts = RunOptions::default().with_sweep_order(SweepOrder::Alternating);
        let report = run(&g, &mut prog, &opts);
        assert_eq!(*report.changed_per_iteration.last().unwrap(), 0);
    }

    #[test]
    fn pull_sweep_matches_push_visit_for_visit() {
        // Self-loops exercise the `>=` stamp comparison (a changing vertex
        // must re-arm itself), the bridge exercises cross-sweep arming.
        let mut b = GraphBuilder::new(12);
        for v in 0..6u32 {
            for u in (v + 1)..6 {
                b.add_edge(v, u);
                b.add_edge(v + 6, u + 6);
            }
        }
        b.add_edge(5, 6);
        b.add_edge(0, 0);
        b.add_edge(7, 7);
        b.symmetrize(true);
        let g = b.build();
        let mut labels = Vec::new();
        let mut traces = Vec::new();
        for mode in [FrontierMode::Push, FrontierMode::Pull, FrontierMode::Auto] {
            let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 50);
            let report = run(&g, &mut prog, &RunOptions::default().with_frontier(mode));
            labels.push(prog.labels().to_vec());
            traces.push((
                report.changed_per_iteration.clone(),
                report.active_per_iteration.clone(),
            ));
            let expect = if mode == FrontierMode::Pull {
                Direction::Pull
            } else {
                Direction::Push
            };
            assert!(
                report.direction_per_iteration.iter().all(|&d| d == expect),
                "{mode:?} recorded {:?}",
                report.direction_per_iteration
            );
        }
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(traces[0], traces[1], "pull must visit exactly push's set");
        assert_eq!(traces[1], traces[2]);
    }

    #[test]
    fn frontier_sweep_matches_dense_and_visits_less() {
        let g = two_cliques_bridge(9);
        let mut dense_prog = ClassicLp::with_max_iterations(g.num_vertices(), 50);
        let dense = run(
            &g,
            &mut dense_prog,
            &RunOptions::default().with_frontier(FrontierMode::Dense),
        );
        let mut frontier_prog = ClassicLp::with_max_iterations(g.num_vertices(), 50);
        let frontier = run(&g, &mut frontier_prog, &RunOptions::default());
        assert_eq!(dense_prog.labels(), frontier_prog.labels());
        assert_eq!(dense.changed_per_iteration, frontier.changed_per_iteration);
        assert!(
            frontier.active_per_iteration.iter().sum::<u64>()
                < dense.active_per_iteration.iter().sum::<u64>(),
            "frontier {:?} dense {:?}",
            frontier.active_per_iteration,
            dense.active_per_iteration
        );
    }
}
