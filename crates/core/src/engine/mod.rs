//! Execution engines.
//!
//! * [`GpuEngine`] — single-GPU in-memory execution with the paper's
//!   degree-bucketed MFL kernels (§4).
//! * [`HybridEngine`] — CPU–GPU streaming for graphs that exceed device
//!   memory (§3.1): labels stay resident, CSR chunks stream over PCIe,
//!   transfers overlap compute.
//! * [`MultiGpuEngine`] — vertex-partitioned execution across several
//!   devices with per-iteration label exchange (§5.4).
//! * [`SequentialEngine`] — the asynchronous single-threaded oracle.
//!
//! All of them (plus the baselines in `glp-baselines` and the simulated
//! in-house cluster in `glp-fraud`) are driven through the [`Engine`]
//! trait with a shared [`RunOptions`], so callers swap engines without
//! touching per-engine config types.

mod delta;
mod dispatch;
mod error;
mod gpu;
mod hybrid;
mod kernels;
mod multi;
mod options;
mod resilient;
mod sequential;

pub use delta::{replay_delta, DeltaReplay, MemoRecorder};
pub use dispatch::{Buckets, DegreeThresholds};
pub use error::EngineError;
pub use gpu::GpuEngine;
pub use hybrid::HybridEngine;
pub use multi::MultiGpuEngine;
pub use options::{BarrierEvent, BarrierHook, Direction, FrontierMode, RunOptions, SweepOrder};
pub use resilient::{ResilienceReport, ResilientEngine};
pub use sequential::SequentialEngine;

use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_graph::{Graph, Label};

/// The unified execution interface: one `run` entry point shared by every
/// engine and baseline in the workspace.
///
/// The program is taken as `&mut dyn LpProgram` so engines are
/// dyn-compatible themselves — benchmark harnesses hold a
/// `Box<dyn Engine>` and swap approaches at runtime. Concrete programs
/// coerce at the call site (`engine.run(&g, &mut prog, &opts)`).
///
/// Contracts every implementation upholds:
///
/// * results are **bit-identical** across engines and across
///   [`FrontierMode`]s for the same program and graph (the workspace tie
///   rule in [`BestLabel`] plus the dense fallback for programs without
///   [`sparse_activation`](crate::LpProgram::sparse_activation));
/// * `update_vertex` is invoked in ascending vertex order within an
///   iteration (BSP engines; the sequential engine follows its sweep
///   order);
/// * the returned report carries per-iteration `changed` and `active`
///   counts;
/// * on `Err`, no iteration was partially applied: the program's state is
///   that of the last *completed* barrier, so a caller holding a matching
///   checkpoint can resume with
///   [`RunOptions::resume_from`](RunOptions::resume_from).
pub trait Engine {
    /// Engine display name (for reports and benchmark tables).
    fn name(&self) -> &'static str;

    /// Runs `prog` on `g` under `opts` until the program reports
    /// termination or `opts.max_iterations` is hit. Fails when the
    /// underlying device faults mid-run; see [`EngineError`] for the
    /// taxonomy and [`ResilientEngine`] for the recovery wrapper.
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError>;
}

/// Per-vertex outcome of the LabelPropagation phase: the winning label and
/// its score, or `None` for vertices with no speaking neighbors.
pub type Decision = Option<(Label, f64)>;

/// Running argmax under the workspace-wide deterministic tie rule:
/// highest score wins; on ties the vertex's *current* label is preferred
/// (classic LPA's stabilizer — without it synchronous LP two-cycles on
/// bipartite graphs and never converges), then the smaller label.
///
/// Every engine and baseline in the workspace funnels its winner selection
/// through this type, which is what makes their outputs bit-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestLabel {
    /// Winning label so far.
    pub label: Label,
    /// Its score.
    pub score: f64,
}

impl BestLabel {
    /// Offers a candidate to the running argmax. `current` is the vertex's
    /// own spoken label this round.
    #[inline]
    pub fn offer(slot: &mut Option<BestLabel>, label: Label, score: f64, current: Label) {
        let wins = match slot {
            None => true,
            Some(b) => {
                score > b.score
                    || (score == b.score
                        && b.label != current
                        && (label == current || label < b.label))
            }
        };
        if wins {
            *slot = Some(BestLabel { label, score });
        }
    }

    /// Converts the slot into a [`Decision`].
    #[inline]
    pub fn into_decision(slot: Option<BestLabel>) -> Decision {
        slot.map(|b| (b.label, b.score))
    }
}

#[cfg(test)]
mod best_tests {
    use super::*;

    #[test]
    fn higher_score_wins() {
        let mut s = None;
        BestLabel::offer(&mut s, 5, 1.0, 99);
        BestLabel::offer(&mut s, 9, 2.0, 99);
        assert_eq!(s.unwrap().label, 9);
    }

    #[test]
    fn tie_prefers_current_label() {
        let mut s = None;
        BestLabel::offer(&mut s, 5, 2.0, 7);
        BestLabel::offer(&mut s, 7, 2.0, 7);
        assert_eq!(s.unwrap().label, 7);
        // ...and the current label is not displaced by a smaller one.
        BestLabel::offer(&mut s, 3, 2.0, 7);
        assert_eq!(s.unwrap().label, 7);
    }

    #[test]
    fn tie_without_current_prefers_smaller() {
        let mut s = None;
        BestLabel::offer(&mut s, 9, 2.0, 99);
        BestLabel::offer(&mut s, 5, 2.0, 99);
        BestLabel::offer(&mut s, 6, 2.0, 99);
        assert_eq!(s.unwrap().label, 5);
    }

    #[test]
    fn order_independent() {
        for perm in [[7u32, 5, 3], [3, 5, 7], [5, 7, 3], [3, 7, 5]] {
            let mut s = None;
            for l in perm {
                BestLabel::offer(&mut s, l, 2.0, 5);
            }
            assert_eq!(s.unwrap().label, 5, "{perm:?}");
        }
    }
}

/// How the LabelPropagation kernels compute the MFL — the axis of the
/// Table 3 ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MflStrategy {
    /// Per-vertex hash tables in global memory (the `global` baseline of
    /// §5.3, the strategy of G-Hash).
    Global,
    /// Shared-memory CMS+HT for high-degree vertices (§4.1); every other
    /// vertex gets one warp with a shared hash table (`smem` in Table 3).
    Smem,
    /// `Smem` plus the one-warp-multi-vertices intrinsic schedule for
    /// low-degree vertices (§4.2; `smem+warp` in Table 3). The default.
    SmemWarp,
}
