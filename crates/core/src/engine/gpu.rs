//! The single-GPU GLP engine: the paper's BSP workflow (Figure 2) with
//! degree-bucketed MFL kernels (§4) and active-frontier scheduling.

use super::dispatch::{split_by_degree, Buckets};
use super::kernels::{
    self, block_cms_ht_kernel, global_hash_kernel, warp_packed_kernel, warp_per_vertex_kernel,
    ShardStats,
};
use super::options::BarrierEvent;
use super::{Decision, Direction, Engine, EngineError, FrontierMode, RunOptions};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_gpusim::{CostModel, Device, DeviceError, KernelCtx, KernelRecord};
use glp_graph::{Graph, Label, VertexId};
use glp_trace::{Category, Clock, KernelProfile, Tracer};
use std::borrow::Cow;
use std::time::Instant;

/// Simulated address bases for the engine-owned arrays (distinct from the
/// kernel-internal ones in [`kernels::layout`]).
const SPOKEN_OUT: u64 = 0x6_0000_0000;
const LABEL_STATE: u64 = 0x7_0000_0000;
/// Frontier bitmap (1 bit per vertex) and the compacted active-vertex
/// lists the next iteration's dispatch consumes.
const FRONTIER_BITMAP: u64 = 0x9_0000_0000;
const FRONTIER_LISTS: u64 = 0x9_8000_0000;
/// The two adjacency views the frontier kernels walk: the push rebuild
/// scatters along out-edges, the pull rebuild gathers along in-edges (the
/// reverse view; for undirected graphs both resolve to the same CSR).
const OUT_CSR: u64 = 0xA_0000_0000;
const IN_CSR: u64 = 0xA_8000_0000;

/// The single-GPU engine. Owns the device so modeled time accumulates
/// across phases and can be inspected afterwards via [`GpuEngine::device`];
/// all per-run configuration comes from [`RunOptions`].
#[derive(Debug)]
pub struct GpuEngine {
    device: Device,
}

impl GpuEngine {
    /// Engine on the given device.
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// Engine on a modeled Titan V (the paper's primary card).
    pub fn titan_v() -> Self {
        Self::new(Device::titan_v())
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Engine for GpuEngine {
    fn name(&self) -> &'static str {
        "GLP"
    }

    /// Runs `prog` on `g` to termination. The graph must fit in device
    /// memory (use [`HybridEngine`](super::HybridEngine) otherwise).
    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        assert_eq!(
            prog.num_vertices(),
            g.num_vertices(),
            "program sized for a different graph"
        );
        opts.validate_for_device(self.device.config().shared_mem_per_block);
        let wall_start = Instant::now();
        let n = g.num_vertices();
        let shards = opts.resolve_shards();
        let buckets = Buckets::build(g, opts.strategy, opts.thresholds);
        self.device.set_tracer(opts.tracer.clone());
        let log_mark = self.device.kernel_log().len();

        // Upload: CSR + label state + spoken array + decision array.
        let footprint = g.size_bytes() + (n as u64) * (4 + 4 + 12);
        let t0 = self.device.elapsed_seconds();
        let trace_mark = trace_run_begin(&opts.tracer, self.name(), t0);
        if let Err(e) = self.device.upload(footprint) {
            trace_fail(&opts.tracer, trace_mark, self.device.elapsed_seconds());
            return Err(e.into());
        }
        let mut transfer_s = self.device.elapsed_seconds() - t0;

        let mut spoken: Vec<Label> = vec![0; n];
        let mut decisions: Vec<Decision> = vec![None; n];
        let sparse = opts.frontier.sparse(prog.sparse_activation());
        let mut active = initial_active(n, sparse, opts);
        let mut report = LpRunReport::default();
        let start_elapsed = t0;
        let device = &mut self.device;

        // The iteration loop runs in an immediately-invoked closure so the
        // device footprint is released on the fault path too — a retrying
        // caller reuses this engine, and leaked residency would turn a
        // transient fault into a spurious OutOfMemory.
        let outcome = (|| -> Result<(), EngineError> {
            let mut last_direction: Option<Direction> = None;
            for iteration in opts.start_iteration..opts.max_iterations {
                let iter_start = device.elapsed_seconds();
                if let Some(t) = &opts.tracer {
                    t.begin_arg(
                        Category::Iteration,
                        "iteration",
                        Clock::Modeled,
                        iter_start,
                        u64::from(iteration),
                    );
                }
                prog.begin_iteration(iteration);
                pick_labels(device, &mut spoken, 0, prog, shards)?;
                decisions.iter_mut().for_each(|d| *d = None);
                // Rebuild the degree-bucketed dispatch over this iteration's
                // frontier; the full-vertex bucketing is reused whenever the
                // frontier is (still) saturated.
                let all_active = !sparse || active.iter().all(|&a| a);
                let filtered: Cow<'_, Buckets> = if all_active {
                    Cow::Borrowed(&buckets)
                } else {
                    Cow::Owned(buckets.filtered(&active))
                };
                let scheduled = filtered.scheduled() as u64;
                report.active_per_iteration.push(scheduled);
                if let Some(t) = &opts.tracer {
                    t.begin_arg(
                        Category::Dispatch,
                        dispatch_name(last_direction),
                        Clock::Modeled,
                        device.elapsed_seconds(),
                        scheduled,
                    );
                }
                let stats = propagate(
                    device,
                    g,
                    &spoken,
                    prog,
                    &filtered,
                    opts,
                    shards,
                    &mut decisions,
                )?;
                if let Some(t) = &opts.tracer {
                    t.end(device.elapsed_seconds());
                }
                report.smem_fallbacks += stats.fallbacks;
                report.smem_vertices += stats.smem_vertices;
                let changed = apply_updates(device, &decisions, prog)?;
                let direction = if sparse {
                    refresh_active(device, g, &spoken, &decisions, &mut active, opts.frontier)?
                } else {
                    Direction::Dense
                };
                last_direction = Some(direction);
                prog.end_iteration(iteration);
                if let Some(hook) = &opts.barrier_hook {
                    let t = device.elapsed_seconds();
                    charge_snapshot(device, n as u64)?;
                    report.snapshot_seconds += device.elapsed_seconds() - t;
                    report.snapshots_taken += 1;
                    if let Some(tr) = &opts.tracer {
                        tr.instant(
                            Category::Resilience,
                            "snapshot",
                            Clock::Modeled,
                            device.elapsed_seconds(),
                        );
                    }
                    hook.fire(&BarrierEvent {
                        iteration,
                        changed,
                        scheduled,
                        active: if sparse { Some(&active) } else { None },
                        direction,
                        program: &*prog,
                    });
                }
                report.changed_per_iteration.push(changed);
                report.direction_per_iteration.push(direction);
                report
                    .iteration_seconds
                    .push(device.elapsed_seconds() - iter_start);
                report.iterations = iteration + 1;
                if let Some(t) = &opts.tracer {
                    t.end(device.elapsed_seconds());
                }
                if prog.finished(iteration, changed) {
                    break;
                }
            }
            Ok(())
        })();

        if outcome.is_ok() {
            // Download the final labels.
            let t1 = self.device.elapsed_seconds();
            self.device.download(n as u64 * 4);
            transfer_s += self.device.elapsed_seconds() - t1;
            if let Some(t) = &opts.tracer {
                t.end(self.device.elapsed_seconds());
            }
        }
        self.device.free(footprint);

        if let Err(e) = outcome {
            trace_fail(&opts.tracer, trace_mark, self.device.elapsed_seconds());
            return Err(e);
        }
        report.kernel_profile =
            profile_from_log(self.name(), &self.device.kernel_log()[log_mark..]);
        report.modeled_seconds = self.device.elapsed_seconds() - start_elapsed;
        report.transfer_seconds = transfer_s;
        report.wall_seconds = wall_start.elapsed().as_secs_f64();
        report.gpu_counters = *self.device.totals();
        Ok(report)
    }
}

/// Opens the run-level span (when tracing) and returns the unwind mark the
/// error path hands back to [`trace_fail`].
pub(crate) fn trace_run_begin(
    tracer: &Option<Tracer>,
    tier: &'static str,
    start_s: f64,
) -> Option<usize> {
    tracer.as_ref().map(|t| {
        let mark = t.open_depth();
        t.begin(Category::Run, tier, Clock::Modeled, start_s);
        mark
    })
}

/// Error-path unwind: closes every span the run opened, innermost-first,
/// flagged as errors, so a recovery layer above can parent its
/// retry/degrade events to the failed iteration span.
pub(crate) fn trace_fail(tracer: &Option<Tracer>, mark: Option<usize>, at_s: f64) {
    if let (Some(t), Some(m)) = (tracer, mark) {
        t.fail_open_to(m, at_s);
    }
}

/// Aggregates one run's slice of the device kernel log into a
/// [`KernelProfile`] row set for `tier`.
pub(crate) fn profile_from_log(tier: &'static str, log: &[KernelRecord]) -> KernelProfile {
    let mut profile = KernelProfile::new();
    for rec in log {
        profile.record(tier, rec.name, rec.seconds);
    }
    profile
}

/// The frontier a run starts from: saturated for a fresh run, the caller's
/// captured bitmap when one is supplied to a sparse run — either an
/// iteration-granular resume (`start_iteration > 0`) or a warm start from
/// iteration 0, where the caller warrants the bitmap covers every vertex
/// whose decision could differ from its current state.
pub(crate) fn initial_active(n: usize, sparse: bool, opts: &RunOptions) -> Vec<bool> {
    match &opts.initial_frontier {
        Some(f) if sparse => {
            assert_eq!(f.len(), n, "resume frontier sized for a different graph");
            f.clone()
        }
        _ => vec![true; n],
    }
}

/// Charges the `barrier_snapshot` kernel: the coalesced label-state
/// readback that feeds a [`BarrierHook`](super::BarrierHook) checkpoint.
/// Only launched when a hook is installed, so hook-free runs are
/// cost-model-identical to builds without fault tolerance.
pub(crate) fn charge_snapshot(device: &mut Device, n: u64) -> Result<(), DeviceError> {
    device.launch("barrier_snapshot", |ctx| {
        ctx.global_read_seq(LABEL_STATE, n, 4);
        ctx.warps_launched(n.div_ceil(32));
        ctx.lanes_active(n);
        ctx.alu(n.div_ceil(32));
    })
}

/// Recomputes the active set in **push** direction — out-neighbors of
/// every vertex whose spoken label changed — returning the number of
/// scatter marks written, Σ out-degree over the changed vertices (host
/// side; every engine shares this so the frontier semantics cannot
/// diverge).
pub(crate) fn recompute_active(
    g: &Graph,
    spoken: &[Label],
    decisions: &[Decision],
    active: &mut [bool],
) -> u64 {
    active.iter_mut().for_each(|a| *a = false);
    let out = g.outgoing();
    let mut touched = 0u64;
    for (v, &d) in decisions.iter().enumerate() {
        if let Some((l, _)) = d {
            if l != spoken[v] {
                for &u in out.neighbors(v as VertexId) {
                    active[u as usize] = true;
                }
                touched += u64::from(out.degree(v as VertexId));
            }
        }
    }
    touched
}

/// Recomputes the active set in **pull** direction: every vertex scans its
/// in-neighbors and activates itself at the first one whose spoken label
/// changed. Because `v ∈ out(u) ⟺ u ∈ in(v)` (undirected graphs share one
/// CSR; directed graphs derive the outgoing view by transposition), this
/// marks *exactly* the vertices [`recompute_active`] marks — the
/// bit-identity contract `direction_equivalence.rs` pins. Returns the
/// number of in-adjacency entries actually scanned (the early exit is why
/// a dense frontier makes this cheap).
pub(crate) fn recompute_active_pull(
    g: &Graph,
    spoken: &[Label],
    decisions: &[Decision],
    active: &mut [bool],
) -> u64 {
    let changed: Vec<bool> = decisions
        .iter()
        .enumerate()
        .map(|(v, &d)| matches!(d, Some((l, _)) if l != spoken[v]))
        .collect();
    let inc = g.incoming();
    let mut scanned = 0u64;
    for (v, a) in active.iter_mut().enumerate() {
        *a = false;
        for &u in inc.neighbors(v as VertexId) {
            scanned += 1;
            if changed[u as usize] {
                *a = true;
                break;
            }
        }
    }
    scanned
}

/// Σ out-degree over the vertices whose spoken label changed — the scatter
/// volume a push rebuild *would* write, computed without building the
/// frontier so [`choose_direction`] can price both directions first.
pub(crate) fn touched_edges(g: &Graph, spoken: &[Label], decisions: &[Decision]) -> u64 {
    let out = g.outgoing();
    decisions
        .iter()
        .enumerate()
        .filter(|&(v, &d)| matches!(d, Some((l, _)) if l != spoken[v]))
        .map(|(v, _)| u64::from(out.degree(v as VertexId)))
        .sum()
}

/// Resolves a [`FrontierMode`] to this iteration's rebuild [`Direction`].
/// `Auto` prices push's scattered sectors for the actual change volume
/// against a worst-case coalesced pull scan via
/// [`CostModel::prefer_pull`]; host tiers pass `CostModel::default()`,
/// which every modeled device also carries, so all engines make identical
/// choices on identical inputs.
pub(crate) fn choose_direction(
    mode: FrontierMode,
    g: &Graph,
    spoken: &[Label],
    decisions: &[Decision],
    cost: &CostModel,
) -> Direction {
    match mode {
        FrontierMode::Dense => Direction::Dense,
        FrontierMode::Push => Direction::Push,
        FrontierMode::Pull => Direction::Pull,
        FrontierMode::Auto => {
            let touched = touched_edges(g, spoken, decisions);
            if cost.prefer_pull(g.num_vertices() as u64, touched, g.num_edges()) {
                Direction::Pull
            } else {
                Direction::Push
            }
        }
    }
}

/// Dispatch-span name tagged with the direction that built the frontier
/// this iteration consumes (the *previous* iteration's rebuild choice).
/// Iteration 0, resumes with no prior rebuild, and dense scheduling all
/// keep the plain name.
pub(crate) fn dispatch_name(prev: Option<Direction>) -> &'static str {
    match prev {
        Some(Direction::Push) => "dispatch:push",
        Some(Direction::Pull) => "dispatch:pull",
        Some(Direction::Dense) | None => "dispatch",
    }
}

/// Charges the stream compaction that turns the frontier bitmap into the
/// dense per-bucket vertex lists the next dispatch consumes — shared by
/// both rebuild directions.
fn charge_compact(device: &mut Device, n: u64, next_active: u64) -> Result<(), DeviceError> {
    device.launch("frontier_compact", |ctx| {
        // Bitmap scan + prefix-sum compaction into dense vertex lists.
        ctx.global_read_seq(FRONTIER_BITMAP, n.div_ceil(8), 1);
        ctx.global_write_seq(FRONTIER_LISTS, next_active, 4);
        ctx.warps_launched(n.div_ceil(32));
        ctx.lanes_active(n);
        ctx.alu(3 * n.div_ceil(32) + next_active / 32);
    })
}

/// Charges the **push** frontier-maintenance kernel for `n` vertices with
/// `touched` scatter marks and `next_active` survivors: a coalesced pass
/// over the change flags, a coalesced walk of the changed vertices'
/// out-adjacency, and one scattered sector per mark — marks land wherever
/// the neighbor ids point, so the coalescer almost never merges them.
/// This traffic is exactly [`CostModel::push_frontier_bytes`], which is
/// what makes the `Auto` crossover measurable rather than asserted.
pub(crate) fn charge_frontier(
    device: &mut Device,
    n: u64,
    touched: u64,
    next_active: u64,
) -> Result<(), DeviceError> {
    device.launch("frontier_update", |ctx| {
        ctx.global_read_seq(LABEL_STATE, n, 4);
        ctx.global_read_seq(OUT_CSR, touched, 4);
        ctx.global_write_scattered(touched);
        ctx.warps_launched(n.div_ceil(32));
        ctx.lanes_active(n);
        ctx.alu(2 * n.div_ceil(32) + touched / 32);
    })?;
    charge_compact(device, n, next_active)
}

/// Charges the **pull** gather kernel for `n` vertices that scanned
/// `scanned` in-adjacency entries before early-exiting: coalesced flag
/// reads, coalesced CSR target reads, one sequential bitmap write — no
/// scatter at all ([`CostModel::pull_frontier_bytes`] with the actual
/// scanned count).
pub(crate) fn charge_pull_gather(
    device: &mut Device,
    n: u64,
    scanned: u64,
    next_active: u64,
) -> Result<(), DeviceError> {
    device.launch("pull_gather", |ctx| {
        ctx.global_read_seq(LABEL_STATE, n, 4);
        ctx.global_read_seq(IN_CSR, scanned, 4);
        ctx.global_write_seq(FRONTIER_BITMAP, n.div_ceil(8), 1);
        ctx.warps_launched(n.div_ceil(32));
        ctx.lanes_active(n);
        ctx.alu(2 * n.div_ceil(32) + scanned / 32);
    })?;
    charge_compact(device, n, next_active)
}

/// Charges the frontier-density measurement `Auto` runs before choosing
/// a direction: coalesced reads of the change flags and the out-degree
/// array, reduced block-wise to the scatter-volume estimate the
/// crossover consumes. The measurement is *fused* — it rides in the
/// update pass that produced the change flags, so it pays memory and
/// reduction cost but no dedicated launch (the standard
/// direction-optimization trick; a 4 µs launch per iteration would eat
/// the crossover's winnings on small frontiers). Forced `Push`/`Pull`
/// runs skip it — the measurement only exists to pay for the decision.
pub(crate) fn charge_frontier_density(device: &mut Device, n: u64) -> Result<(), DeviceError> {
    device.launch_fused("frontier_density", |ctx| {
        ctx.global_read_seq(LABEL_STATE, n, 4);
        ctx.global_read_seq(OUT_CSR, n, 4);
        ctx.warps_launched(n.div_ceil(32));
        ctx.lanes_active(n);
        ctx.alu(2 * n.div_ceil(32));
        for _ in 0..n.div_ceil(256) {
            ctx.block_reduce();
        }
    })
}

/// GPU-side frontier refresh: resolves the rebuild direction, runs the
/// matching shared recompute, and charges the matching kernels. Returns
/// the direction taken so the run loop can record and tag it.
pub(crate) fn refresh_active(
    device: &mut Device,
    g: &Graph,
    spoken: &[Label],
    decisions: &[Decision],
    active: &mut [bool],
    mode: FrontierMode,
) -> Result<Direction, DeviceError> {
    let n = decisions.len() as u64;
    if mode == FrontierMode::Auto {
        charge_frontier_density(device, n)?;
    }
    let dir = choose_direction(mode, g, spoken, decisions, device.cost_model());
    match dir {
        Direction::Pull => {
            let scanned = recompute_active_pull(g, spoken, decisions, active);
            let next_active = active.iter().filter(|&&a| a).count() as u64;
            charge_pull_gather(device, n, scanned, next_active)?;
        }
        Direction::Push | Direction::Dense => {
            let touched = recompute_active(g, spoken, decisions, active);
            let next_active = active.iter().filter(|&&a| a).count() as u64;
            charge_frontier(device, n, touched, next_active)?;
        }
    }
    Ok(dir)
}

/// PickLabel (Figure 2): a trivially parallel kernel writing the
/// spoken-label array, coalesced. `spoken` covers vertices
/// `base .. base + spoken.len()` (multi-GPU engines pass per-device
/// sub-slices).
pub(crate) fn pick_labels(
    device: &mut Device,
    spoken: &mut [Label],
    base: VertexId,
    prog: &dyn LpProgram,
    shards: usize,
) -> Result<(), DeviceError> {
    let n = spoken.len();
    let per = n.div_ceil(shards).max(1);
    let outs = device.launch_parallel("pick_label", shards, |i, ctx: &mut KernelCtx| {
        let start = (i * per).min(n);
        let end = ((i + 1) * per).min(n);
        let m = (end - start) as u64;
        ctx.global_read_seq(LABEL_STATE + (base as usize + start) as u64 * 4, m, 4);
        ctx.global_write_seq(SPOKEN_OUT + (base as usize + start) as u64 * 4, m, 4);
        ctx.warps_launched(m.div_ceil(32));
        ctx.lanes_active(m);
        ctx.alu(2 * m.div_ceil(32));
        let mut out = Vec::with_capacity(end - start);
        for v in start..end {
            out.push(prog.pick_label(base + v as VertexId));
        }
        (start, out)
    })?;
    for (start, chunk) in outs {
        spoken[start..start + chunk.len()].copy_from_slice(&chunk);
    }
    Ok(())
}

/// LabelPropagation (Figure 2): degree-bucketed kernels over the vertices
/// named in `buckets`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn propagate(
    device: &mut Device,
    g: &Graph,
    spoken: &[Label],
    prog: &dyn LpProgram,
    buckets: &Buckets,
    opts: &RunOptions,
    shards: usize,
    decisions: &mut [Decision],
) -> Result<ShardStats, DeviceError> {
    let csr = g.incoming();
    let geom = opts.smem_geometry();
    let mid_slots = opts.mid_ht_slots;
    let mut stats = ShardStats::default();

    let scatter = |outs: Vec<(Vec<(VertexId, Decision)>, ShardStats)>,
                   decisions: &mut [Decision],
                   stats: &mut ShardStats| {
        for (out, st) in outs {
            stats.merge(&st);
            for (v, d) in out {
                decisions[v as usize] = d;
            }
        }
    };

    if !buckets.warp_packed.is_empty() {
        let parts = split_by_degree(g, &buckets.warp_packed, shards);
        let outs =
            device.launch_parallel("lp_warp_packed", parts.len(), |i, ctx: &mut KernelCtx| {
                let mut out = Vec::with_capacity(parts[i].len());
                warp_packed_kernel(ctx, csr, spoken, prog, parts[i], &mut out);
                (out, ShardStats::default())
            })?;
        scatter(outs, decisions, &mut stats);
    }
    if !buckets.warp_per_vertex.is_empty() {
        let parts = split_by_degree(g, &buckets.warp_per_vertex, shards);
        let outs = device.launch_parallel(
            "lp_warp_per_vertex",
            parts.len(),
            |i, ctx: &mut KernelCtx| {
                let mut out = Vec::with_capacity(parts[i].len());
                warp_per_vertex_kernel(ctx, csr, spoken, prog, parts[i], mid_slots, &mut out);
                (out, ShardStats::default())
            },
        )?;
        scatter(outs, decisions, &mut stats);
    }
    if !buckets.block_per_vertex.is_empty() {
        let parts = split_by_degree(g, &buckets.block_per_vertex, shards);
        let outs =
            device.launch_parallel("lp_block_cms_ht", parts.len(), |i, ctx: &mut KernelCtx| {
                let mut out = Vec::with_capacity(parts[i].len());
                let mut st = ShardStats::default();
                block_cms_ht_kernel(ctx, csr, spoken, prog, parts[i], geom, &mut st, &mut out);
                (out, st)
            })?;
        scatter(outs, decisions, &mut stats);
    }
    if !buckets.global_hash.is_empty() {
        let parts = split_by_degree(g, &buckets.global_hash, shards);
        let outs =
            device.launch_parallel("lp_global_hash", parts.len(), |i, ctx: &mut KernelCtx| {
                let mut out = Vec::with_capacity(parts[i].len());
                global_hash_kernel(ctx, csr, spoken, prog, parts[i], &mut out);
                (out, ShardStats::default())
            })?;
        scatter(outs, decisions, &mut stats);
    }
    Ok(stats)
}

/// UpdateVertex (Figure 2): host-driven state updates plus the modeled
/// coalesced read/write kernel. Every vertex is visited in ascending
/// order; under frontier scheduling skipped vertices carry a `None`
/// decision, which sparse-activation programs treat as "keep state".
pub(crate) fn apply_updates(
    device: &mut Device,
    decisions: &[Decision],
    prog: &mut dyn LpProgram,
) -> Result<u64, DeviceError> {
    let n = decisions.len() as u64;
    device.launch("update_vertex", |ctx| {
        ctx.global_read_seq(kernels::layout::DECISIONS, n, 12);
        ctx.global_write_seq(LABEL_STATE, n, 4);
        ctx.warps_launched(n.div_ceil(32));
        ctx.lanes_active(n);
        ctx.alu(2 * n.div_ceil(32));
    })?;
    let mut changed = 0u64;
    for (v, &d) in decisions.iter().enumerate() {
        if prog.update_vertex(v as VertexId, d) {
            changed += 1;
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::super::{FrontierMode, MflStrategy};
    use super::*;
    use crate::variants::ClassicLp;
    use glp_graph::gen::{caveman, two_cliques_bridge};

    fn labels_after(strategy: MflStrategy, g: &Graph) -> (Vec<Label>, LpRunReport) {
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::new(g.num_vertices());
        let report = engine
            .run(g, &mut prog, &RunOptions::default().with_strategy(strategy))
            .unwrap();
        (prog.labels().to_vec(), report)
    }

    #[test]
    fn two_cliques_find_two_communities() {
        let g = two_cliques_bridge(8);
        let (labels, report) = labels_after(MflStrategy::SmemWarp, &g);
        // Every clique converges to one label.
        assert!(labels[..8].iter().all(|&l| l == labels[0]));
        assert!(labels[8..].iter().all(|&l| l == labels[8]));
        assert!(report.iterations >= 2);
        assert!(report.modeled_seconds > 0.0);
    }

    #[test]
    fn strategies_agree_bitwise() {
        let g = caveman(6, 9);
        let (a, _) = labels_after(MflStrategy::Global, &g);
        let (b, _) = labels_after(MflStrategy::Smem, &g);
        let (c, _) = labels_after(MflStrategy::SmemWarp, &g);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn optimized_strategy_is_modeled_faster() {
        let g = caveman(40, 12);
        let (_, global) = labels_after(MflStrategy::Global, &g);
        let (_, smem_warp) = labels_after(MflStrategy::SmemWarp, &g);
        assert!(
            smem_warp.modeled_seconds < global.modeled_seconds,
            "smem+warp {} !< global {}",
            smem_warp.modeled_seconds,
            global.modeled_seconds
        );
    }

    #[test]
    fn convergence_trace_recorded() {
        let g = two_cliques_bridge(5);
        let (_, report) = labels_after(MflStrategy::SmemWarp, &g);
        assert_eq!(
            report.changed_per_iteration.len(),
            report.iterations as usize
        );
        assert_eq!(
            report.active_per_iteration.len(),
            report.iterations as usize
        );
        assert_eq!(*report.changed_per_iteration.last().unwrap(), 0);
    }

    #[test]
    fn frontier_shrinks_active_set_and_matches_dense() {
        let g = caveman(12, 8);
        let run = |mode: FrontierMode| {
            let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 30);
            let report = GpuEngine::titan_v()
                .run(&g, &mut prog, &RunOptions::default().with_frontier(mode))
                .unwrap();
            (prog.labels().to_vec(), report)
        };
        let (dense_labels, dense) = run(FrontierMode::Dense);
        let (frontier_labels, frontier) = run(FrontierMode::Auto);
        assert_eq!(dense_labels, frontier_labels);
        assert_eq!(dense.changed_per_iteration, frontier.changed_per_iteration);
        // Dense recomputes every vertex every iteration; the frontier run
        // must do strictly less total work on a converging graph.
        assert!(dense
            .active_per_iteration
            .iter()
            .all(|&a| a == g.num_vertices() as u64));
        assert!(
            frontier.active_per_iteration.iter().sum::<u64>()
                < dense.active_per_iteration.iter().sum::<u64>(),
            "frontier {:?}",
            frontier.active_per_iteration
        );
    }

    #[test]
    fn every_direction_matches_dense_and_is_recorded() {
        let g = caveman(12, 8);
        let run = |mode: FrontierMode| {
            let mut prog = ClassicLp::with_max_iterations(g.num_vertices(), 30);
            let report = GpuEngine::titan_v()
                .run(&g, &mut prog, &RunOptions::default().with_frontier(mode))
                .unwrap();
            (prog.labels().to_vec(), report)
        };
        let (dense_labels, dense) = run(FrontierMode::Dense);
        assert!(dense
            .direction_per_iteration
            .iter()
            .all(|&d| d == Direction::Dense));
        for mode in [FrontierMode::Push, FrontierMode::Pull, FrontierMode::Auto] {
            let (labels, report) = run(mode);
            assert_eq!(dense_labels, labels, "{mode:?} labels diverged");
            assert_eq!(
                dense.changed_per_iteration, report.changed_per_iteration,
                "{mode:?} changed trace diverged"
            );
            assert_eq!(
                report.direction_per_iteration.len(),
                report.iterations as usize
            );
            match mode {
                FrontierMode::Push => assert_eq!(report.direction_count(Direction::Pull), 0),
                FrontierMode::Pull => assert_eq!(report.direction_count(Direction::Push), 0),
                _ => {}
            }
        }
    }

    #[test]
    fn pull_and_push_rebuild_identical_frontiers() {
        let g = caveman(6, 9);
        let n = g.num_vertices();
        let spoken: Vec<Label> = (0..n as Label).collect();
        // Vertex 3 changes; everything else keeps its label.
        let mut decisions: Vec<Decision> = spoken.iter().map(|&l| Some((l, 1.0))).collect();
        decisions[3] = Some((999, 1.0));
        let mut push = vec![false; n];
        let mut pull = vec![false; n];
        let touched = recompute_active(&g, &spoken, &decisions, &mut push);
        let scanned = recompute_active_pull(&g, &spoken, &decisions, &mut pull);
        assert_eq!(push, pull);
        assert_eq!(touched, u64::from(g.outgoing().degree(3)));
        // The pull scan early-exits but still walks at least one entry per
        // non-isolated vertex.
        assert!(scanned >= push.iter().filter(|&&a| a).count() as u64);
    }

    #[test]
    fn dispatch_names_follow_the_previous_rebuild() {
        assert_eq!(dispatch_name(None), "dispatch");
        assert_eq!(dispatch_name(Some(Direction::Dense)), "dispatch");
        assert_eq!(dispatch_name(Some(Direction::Push)), "dispatch:push");
        assert_eq!(dispatch_name(Some(Direction::Pull)), "dispatch:pull");
    }

    #[test]
    #[should_panic(expected = "sized for a different graph")]
    fn mismatched_program_rejected() {
        let g = two_cliques_bridge(4);
        let mut engine = GpuEngine::titan_v();
        let mut prog = ClassicLp::new(3);
        let _ = engine.run(&g, &mut prog, &RunOptions::default());
    }
}
