//! The engine-layer fault taxonomy.
//!
//! [`Engine::run`](super::Engine::run) returns `Result<LpRunReport,
//! EngineError>`: every way a simulated device can die mid-run maps onto
//! one variant here, converted from the device-layer
//! [`DeviceError`](glp_gpusim::DeviceError) at the engine boundary. The
//! split into *transient* and *persistent* faults is what the
//! [`ResilientEngine`](super::ResilientEngine) recovery policy keys on:
//! transient faults are retried on the same engine tier (resuming from the
//! last completed BSP barrier), persistent faults walk the degradation
//! ladder to the next tier.

use glp_gpusim::DeviceError;
use std::fmt;

/// Why an engine run failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The device fell off the bus mid-run. Persistent: the same engine
    /// instance cannot finish the job (its device stays lost).
    DeviceLost {
        /// Simulator device id.
        device: u32,
    },
    /// A kernel launch was rejected by the driver. Transient: the next
    /// attempt may succeed.
    KernelLaunchFailed {
        /// Kernel name.
        kernel: &'static str,
    },
    /// The watchdog killed a kernel. Transient: a relaunch gets a fresh
    /// time budget.
    KernelTimeout {
        /// Kernel name.
        kernel: &'static str,
    },
    /// Device memory was exhausted. Persistent for the engine that needs
    /// the whole working set resident — the ladder's next tier (hybrid
    /// streaming, then the host) needs less or no device memory.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: u64,
        /// Device memory capacity.
        capacity: u64,
    },
    /// A harness shard of a parallel kernel panicked. Transient from the
    /// scheduler's point of view: the device is healthy and the iteration
    /// can be re-driven from the last barrier.
    ShardPanicked {
        /// Index of the first panicked shard.
        shard: usize,
    },
}

impl EngineError {
    /// Whether a retry on the *same* engine tier is worth attempting.
    /// Transient faults (rejected launch, watchdog timeout, panicked
    /// shard) are; a lost device or exhausted memory will fail the same
    /// way again.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EngineError::KernelLaunchFailed { .. }
                | EngineError::KernelTimeout { .. }
                | EngineError::ShardPanicked { .. }
        )
    }
}

impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        match e {
            DeviceError::Lost { device } => EngineError::DeviceLost { device },
            DeviceError::LaunchFailed { kernel, .. } => EngineError::KernelLaunchFailed { kernel },
            DeviceError::Timeout { kernel, .. } => EngineError::KernelTimeout { kernel },
            DeviceError::OutOfMemory {
                requested,
                capacity,
                ..
            } => EngineError::OutOfMemory {
                requested,
                capacity,
            },
            DeviceError::ShardPanicked { shard, .. } => EngineError::ShardPanicked { shard },
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::DeviceLost { device } => write!(f, "device {device} lost"),
            EngineError::KernelLaunchFailed { kernel } => {
                write!(f, "kernel `{kernel}` launch failed")
            }
            EngineError::KernelTimeout { kernel } => {
                write!(f, "kernel `{kernel}` hit the watchdog timeout")
            }
            EngineError::OutOfMemory {
                requested,
                capacity,
            } => write!(
                f,
                "device out of memory ({requested} B requested, {capacity} B capacity)"
            ),
            EngineError::ShardPanicked { shard } => write!(f, "kernel shard {shard} panicked"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        assert!(EngineError::KernelLaunchFailed { kernel: "k" }.is_transient());
        assert!(EngineError::KernelTimeout { kernel: "k" }.is_transient());
        assert!(EngineError::ShardPanicked { shard: 3 }.is_transient());
        assert!(!EngineError::DeviceLost { device: 0 }.is_transient());
        assert!(!EngineError::OutOfMemory {
            requested: 1,
            capacity: 1
        }
        .is_transient());
    }

    #[test]
    fn device_errors_convert() {
        let e: EngineError = DeviceError::LaunchFailed {
            device: 7,
            kernel: "pick_label",
        }
        .into();
        assert_eq!(
            e,
            EngineError::KernelLaunchFailed {
                kernel: "pick_label"
            }
        );
        let e: EngineError = DeviceError::Lost { device: 7 }.into();
        assert_eq!(e, EngineError::DeviceLost { device: 7 });
    }
}
