//! Fault-tolerant execution: retry, iteration-granular resume, and a
//! graceful-degradation ladder.
//!
//! [`ResilientEngine`] wraps an ordered ladder of engines (fastest first)
//! and drives whichever tier is currently healthy:
//!
//! 1. A [`BarrierHook`] checkpoints the program's state (via
//!    [`LpProgram::save_state`]) and the live frontier at every completed
//!    BSP barrier. The snapshot readback is charged to the cost model
//!    (`barrier_snapshot` kernel, surfaced as
//!    [`LpRunReport::snapshot_seconds`](crate::LpRunReport::snapshot_seconds)).
//! 2. A **transient** fault ([`EngineError::is_transient`]) is retried on
//!    the same tier with capped exponential backoff, restoring the last
//!    checkpoint and resuming from the iteration that failed — completed
//!    iterations are never recomputed.
//! 3. A **persistent** fault (device lost, out of memory) or an exhausted
//!    retry budget walks the ladder down one tier and resumes there.
//!    Because every BSP engine in the workspace is bit-identical, a run
//!    that starts on the GPU and finishes on the host produces exactly
//!    the labels the GPU would have.
//!
//! Programs that do not implement `save_state` cannot be safely retried
//! (`begin_iteration` is not idempotent in general — e.g. SLP's speaker
//! draw), so for them the wrapper runs the top tier once and propagates
//! any fault unchanged.

use super::gpu::trace_fail;
use super::options::BarrierHook;
use super::{Direction, Engine, EngineError, RunOptions};
use crate::api::LpProgram;
use crate::report::LpRunReport;
use glp_graph::Graph;
use glp_trace::{Category, Clock};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What the recovery machinery did during the last
/// [`ResilientEngine::run`].
#[derive(Clone, Debug, Default)]
pub struct ResilienceReport {
    /// Same-tier retries after transient faults.
    pub retries: u32,
    /// Ladder steps taken after persistent faults (or exhausted retries).
    pub degradations: u32,
    /// Completed iterations carried across recoveries instead of being
    /// recomputed, summed over all recovery events.
    pub iterations_salvaged: u64,
    /// Name of the tier that produced the final outcome.
    pub tier: Option<&'static str>,
    /// Every fault observed, in order.
    pub faults: Vec<EngineError>,
}

/// The last completed barrier, as captured by the checkpoint hook.
#[derive(Default)]
struct Salvage {
    /// Next iteration to execute (= completed iterations).
    next: u32,
    /// Program state at the last completed barrier (initially the
    /// pre-run state).
    blob: Option<Vec<u8>>,
    /// Frontier the next iteration should consume (sparse runs only).
    frontier: Option<Vec<bool>>,
    /// Traces for iterations `0..next`, stitched into the final report.
    changed: Vec<u64>,
    active: Vec<u64>,
    directions: Vec<Direction>,
}

/// The fault-tolerant wrapper. See the module docs for the recovery
/// policy.
pub struct ResilientEngine {
    tiers: Vec<Box<dyn Engine>>,
    max_retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    last: ResilienceReport,
}

impl std::fmt::Debug for ResilientEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientEngine")
            .field(
                "tiers",
                &self.tiers.iter().map(|t| t.name()).collect::<Vec<_>>(),
            )
            .field("max_retries", &self.max_retries)
            .field("last", &self.last)
            .finish()
    }
}

impl ResilientEngine {
    /// Wraps an explicit ladder (fastest tier first).
    ///
    /// # Panics
    /// Panics when the ladder is empty.
    pub fn new(tiers: Vec<Box<dyn Engine>>) -> Self {
        assert!(!tiers.is_empty(), "ladder needs at least one tier");
        Self {
            tiers,
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            last: ResilienceReport::default(),
        }
    }

    /// The standard ladder for the paper's single-card setup: in-core GPU
    /// → out-of-core hybrid → host BSP sweep.
    pub fn gpu_ladder() -> Self {
        Self::new(vec![
            Box::new(super::GpuEngine::titan_v()),
            Box::new(super::HybridEngine::titan_v()),
            Box::new(super::SequentialEngine::bsp()),
        ])
    }

    /// Transient-fault retry budget per tier (default 3).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Exponential-backoff schedule for transient retries: `base`, then
    /// doubling up to `cap`. Tests pass `Duration::ZERO` to skip sleeping.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// What recovery work the last `run` performed.
    pub fn resilience(&self) -> &ResilienceReport {
        &self.last
    }

    /// Names of the ladder tiers, fastest first.
    pub fn tier_names(&self) -> Vec<&'static str> {
        self.tiers.iter().map(|t| t.name()).collect()
    }
}

impl Engine for ResilientEngine {
    fn name(&self) -> &'static str {
        "Resilient"
    }

    fn run(
        &mut self,
        g: &Graph,
        prog: &mut dyn LpProgram,
        opts: &RunOptions,
    ) -> Result<LpRunReport, EngineError> {
        self.last = ResilienceReport::default();
        // The wrapper's own span runs on the wall clock (its overhead is
        // host-side: retries, backoff, restores); tier runs nest under it
        // structurally while keeping their modeled clocks.
        let wall = Instant::now();
        let trace_mark = opts.tracer.as_ref().map(|t| {
            let mark = t.open_depth();
            t.begin(Category::Run, self.name(), Clock::Wall, 0.0);
            mark
        });
        let Some(initial_blob) = prog.save_state() else {
            // No checkpoint support: a failed attempt leaves the program
            // in an unrecoverable mid-iteration state, so retrying or
            // degrading would not reproduce the fault-free run. One
            // attempt, fault propagated.
            self.last.tier = Some(self.tiers[0].name());
            let out = self.tiers[0].run(g, prog, opts);
            if let Err(e) = &out {
                self.last.faults.push(*e);
                trace_fail(&opts.tracer, trace_mark, wall.elapsed().as_secs_f64());
            } else if let Some(t) = &opts.tracer {
                t.end(wall.elapsed().as_secs_f64());
            }
            return out;
        };

        let salvage = Arc::new(Mutex::new(Salvage {
            blob: Some(initial_blob),
            ..Default::default()
        }));
        let salvage_hook = {
            let salvage = Arc::clone(&salvage);
            BarrierHook::new(move |ev| {
                let mut s = salvage.lock().expect("salvage lock");
                // Guard against a re-fired barrier (a resumed attempt
                // replays its first hook at exactly `next`).
                if ev.iteration as usize != s.changed.len() {
                    return;
                }
                // A program may refuse mid-run saves; keep the previous
                // checkpoint then (recovery just redoes more work).
                if let Some(blob) = ev.program.save_state() {
                    s.blob = Some(blob);
                    s.frontier = ev.active.map(<[bool]>::to_vec);
                    s.changed.push(ev.changed);
                    s.active.push(ev.scheduled);
                    s.directions.push(ev.direction);
                    s.next = ev.iteration + 1;
                }
            })
        };
        // The wrapper needs the barrier for its salvage state, but a
        // caller's own hook (e.g. a memo-capturing recluster) must keep
        // firing too — chain rather than replace. Both observe the same
        // barrier; the single `barrier_snapshot` charge already covers it.
        let hook = match &opts.barrier_hook {
            Some(user) => {
                let (salvage_hook, user) = (salvage_hook.clone(), user.clone());
                BarrierHook::new(move |ev| {
                    salvage_hook.fire(ev);
                    user.fire(ev);
                })
            }
            None => salvage_hook,
        };

        let mut tier = 0usize;
        let mut retries_left = self.max_retries;
        let mut backoff = self.backoff_base;
        let mut first_attempt = true;

        loop {
            let (start, frontier) = {
                let s = salvage.lock().expect("salvage lock");
                (s.next, s.frontier.clone())
            };
            if !first_attempt {
                let s = salvage.lock().expect("salvage lock");
                let blob = s.blob.as_deref().expect("checkpoint blob present");
                assert!(
                    prog.restore_state(blob),
                    "program rejected its own checkpoint"
                );
            }
            first_attempt = false;
            let mut attempt_opts = opts.clone().with_barrier_hook(hook.clone());
            attempt_opts.start_iteration = start;
            attempt_opts.initial_frontier = frontier;

            match self.tiers[tier].run(g, prog, &attempt_opts) {
                Ok(mut report) => {
                    let s = salvage.lock().expect("salvage lock");
                    let prefix = (start as usize).min(s.changed.len());
                    if prefix > 0 {
                        // Stitch the salvaged iterations' traces in front
                        // of the final attempt's resumed traces. (The
                        // timing fields cover only the final attempt — a
                        // degraded tier has its own clock.)
                        let mut changed = s.changed[..prefix].to_vec();
                        changed.append(&mut report.changed_per_iteration);
                        report.changed_per_iteration = changed;
                        let mut active = s.active[..prefix].to_vec();
                        active.append(&mut report.active_per_iteration);
                        report.active_per_iteration = active;
                        let mut directions = s.directions[..prefix].to_vec();
                        directions.append(&mut report.direction_per_iteration);
                        report.direction_per_iteration = directions;
                        report.iterations = report.iterations.max(start);
                    }
                    self.last.tier = Some(self.tiers[tier].name());
                    if let Some(t) = &opts.tracer {
                        t.end(wall.elapsed().as_secs_f64());
                    }
                    return Ok(report);
                }
                Err(e) => {
                    self.last.faults.push(e);
                    let completed = salvage.lock().expect("salvage lock").next;
                    // The failing tier's `fail_open_to` recorded which span
                    // was mid-flight when the fault hit (the failed
                    // iteration); the recovery instant attaches there so a
                    // trace shows *what* a retry/degrade recovered from.
                    let fault_span = opts.tracer.as_ref().and_then(|t| t.take_error_span());
                    if e.is_transient() && retries_left > 0 {
                        retries_left -= 1;
                        self.last.retries += 1;
                        if let Some(t) = &opts.tracer {
                            t.instant_with_parent(
                                Category::Resilience,
                                "retry",
                                Clock::Wall,
                                wall.elapsed().as_secs_f64(),
                                fault_span,
                            );
                        }
                        if backoff > Duration::ZERO {
                            std::thread::sleep(backoff);
                        }
                        backoff = (backoff * 2).min(self.backoff_cap);
                    } else if tier + 1 < self.tiers.len() {
                        tier += 1;
                        self.last.degradations += 1;
                        retries_left = self.max_retries;
                        backoff = self.backoff_base;
                        if let Some(t) = &opts.tracer {
                            t.instant_with_parent(
                                Category::Resilience,
                                "degrade",
                                Clock::Wall,
                                wall.elapsed().as_secs_f64(),
                                fault_span,
                            );
                        }
                    } else {
                        self.last.tier = Some(self.tiers[tier].name());
                        trace_fail(&opts.tracer, trace_mark, wall.elapsed().as_secs_f64());
                        return Err(e);
                    }
                    // Everything completed before the fault is resumed,
                    // not recomputed.
                    self.last.iterations_salvaged += u64::from(completed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{FrontierMode, GpuEngine, SequentialEngine};
    use super::*;
    use crate::variants::{ClassicLp, Slp};
    use glp_graph::gen::{caveman, two_cliques_bridge};

    #[test]
    fn fault_free_run_matches_bare_engine_with_snapshot_overhead() {
        let g = caveman(6, 8);
        let mut bare_prog = ClassicLp::new(g.num_vertices());
        let bare = GpuEngine::titan_v()
            .run(&g, &mut bare_prog, &RunOptions::default())
            .unwrap();

        let mut engine = ResilientEngine::gpu_ladder();
        let mut prog = ClassicLp::new(g.num_vertices());
        let report = engine.run(&g, &mut prog, &RunOptions::default()).unwrap();

        assert_eq!(prog.labels(), bare_prog.labels());
        assert_eq!(report.changed_per_iteration, bare.changed_per_iteration);
        assert_eq!(report.active_per_iteration, bare.active_per_iteration);
        let stats = engine.resilience();
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.degradations, 0);
        assert_eq!(stats.iterations_salvaged, 0);
        assert_eq!(stats.tier, Some("GLP"));
        // Fault tolerance is not free: every barrier paid a snapshot.
        assert_eq!(report.snapshots_taken, u64::from(report.iterations));
        assert!(report.snapshot_seconds > 0.0);
        assert!(
            report.snapshot_fraction() < 0.5,
            "snapshots should be cheap"
        );
    }

    #[test]
    fn bsp_sequential_tier_matches_gpu_traces() {
        let g = two_cliques_bridge(9);
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Push,
            FrontierMode::Pull,
        ] {
            let opts = RunOptions::default().with_frontier(mode);
            let mut gpu_prog = ClassicLp::new(g.num_vertices());
            let gpu = GpuEngine::titan_v().run(&g, &mut gpu_prog, &opts).unwrap();
            let mut host_prog = ClassicLp::new(g.num_vertices());
            let host = SequentialEngine::bsp()
                .run(&g, &mut host_prog, &opts)
                .unwrap();
            assert_eq!(host_prog.labels(), gpu_prog.labels());
            assert_eq!(host.changed_per_iteration, gpu.changed_per_iteration);
            assert_eq!(host.active_per_iteration, gpu.active_per_iteration);
            // The host tier prices `Auto` on `CostModel::default()`, which
            // every modeled device also carries — so even the per-iteration
            // push/pull choices line up across the degradation ladder.
            assert_eq!(host.direction_per_iteration, gpu.direction_per_iteration);
        }
    }

    #[test]
    fn checkpoint_free_program_still_runs() {
        let g = caveman(4, 6);
        let mut engine = ResilientEngine::gpu_ladder();
        let mut slp = Slp::new(g.num_vertices(), 7);
        assert!(slp.save_state().is_some(), "SLP does checkpoint");
        // LLP-style programs without sparse activation also work; the real
        // no-checkpoint case is pinned through the API default test. Here
        // we confirm a checkpointing program round-trips through the
        // wrapper untouched.
        let report = engine.run(&g, &mut slp, &RunOptions::default()).unwrap();
        assert!(report.iterations > 0);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_ladder_rejected() {
        ResilientEngine::new(Vec::new());
    }
}
