//! Degree-bucketed kernel dispatch.
//!
//! §5.3 fixes the thresholds: vertices with degree < 32 are "low" (warp
//! packing candidates), degree > 128 are "high" (block-per-vertex CMS+HT),
//! the rest are "mid" (one-warp-one-vertex shared hash table). Bucketing is
//! computed once per run; the per-bucket vertex lists also give each kernel
//! a natural shard axis.

use super::MflStrategy;
use glp_graph::{Graph, VertexId};

/// The paper's dispatch thresholds (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreeThresholds {
    /// Degrees strictly below this are "low".
    pub low: u32,
    /// Degrees strictly above this are "high".
    pub high: u32,
}

impl Default for DegreeThresholds {
    fn default() -> Self {
        Self { low: 32, high: 128 }
    }
}

/// Vertex lists per kernel class (all in ascending vertex order).
#[derive(Clone, Debug, Default)]
pub struct Buckets {
    /// Degree 0 — decided `None` without touching the device.
    pub isolated: Vec<VertexId>,
    /// Low-degree vertices packed many-per-warp (§4.2). Empty unless the
    /// strategy is [`MflStrategy::SmemWarp`].
    pub warp_packed: Vec<VertexId>,
    /// One-warp-one-vertex with a shared hash table.
    pub warp_per_vertex: Vec<VertexId>,
    /// One-block-one-vertex with shared CMS+HT (§4.1).
    pub block_per_vertex: Vec<VertexId>,
    /// Per-vertex global-memory hash tables ([`MflStrategy::Global`] only).
    pub global_hash: Vec<VertexId>,
}

impl Buckets {
    /// Partitions all vertices of `g` according to `strategy`.
    pub fn build(g: &Graph, strategy: MflStrategy, t: DegreeThresholds) -> Self {
        assert!(t.low <= t.high, "thresholds out of order");
        let mut b = Buckets::default();
        for v in 0..g.num_vertices() as VertexId {
            let d = g.degree(v);
            if d == 0 {
                b.isolated.push(v);
                continue;
            }
            match strategy {
                MflStrategy::Global => b.global_hash.push(v),
                // `smem` activates ONLY the high-degree optimization
                // (§5.3 enables the optimizations one by one): everything
                // else keeps the baseline's global hash tables.
                MflStrategy::Smem => {
                    if d > t.high {
                        b.block_per_vertex.push(v);
                    } else {
                        b.global_hash.push(v);
                    }
                }
                // The full system: CMS+HT blocks for high degrees, packed
                // warps for low degrees, shared-HT warps in between.
                MflStrategy::SmemWarp => {
                    if d > t.high {
                        b.block_per_vertex.push(v);
                    } else if d < t.low {
                        b.warp_packed.push(v);
                    } else {
                        b.warp_per_vertex.push(v);
                    }
                }
            }
        }
        b
    }

    /// Total vertices across buckets (sanity: equals |V|).
    pub fn total(&self) -> usize {
        self.isolated.len()
            + self.warp_packed.len()
            + self.warp_per_vertex.len()
            + self.block_per_vertex.len()
            + self.global_hash.len()
    }

    /// Vertices the propagation kernels will actually process (everything
    /// but the isolated bucket) — the per-iteration *active* count.
    pub fn scheduled(&self) -> usize {
        self.warp_packed.len()
            + self.warp_per_vertex.len()
            + self.block_per_vertex.len()
            + self.global_hash.len()
    }

    /// Rebuilds the dispatch for one frontier iteration: every bucket
    /// restricted to the active vertices. Filtering preserves ascending
    /// vertex order and degree classes, so high/low-degree kernel
    /// selection is unchanged — only the work shrinks.
    pub fn filtered(&self, active: &[bool]) -> Buckets {
        let keep = |vs: &[VertexId]| -> Vec<VertexId> {
            vs.iter().copied().filter(|&v| active[v as usize]).collect()
        };
        Buckets {
            isolated: Vec::new(),
            warp_packed: keep(&self.warp_packed),
            warp_per_vertex: keep(&self.warp_per_vertex),
            block_per_vertex: keep(&self.block_per_vertex),
            global_hash: keep(&self.global_hash),
        }
    }
}

/// Splits `vertices` into at most `shards` contiguous slices with
/// near-equal total degree, so harness threads get balanced work.
pub fn split_by_degree<'a>(
    g: &Graph,
    vertices: &'a [VertexId],
    shards: usize,
) -> Vec<&'a [VertexId]> {
    assert!(shards >= 1, "need at least one shard");
    if vertices.is_empty() {
        return Vec::new();
    }
    let total: u64 = vertices.iter().map(|&v| u64::from(g.degree(v)) + 1).sum();
    let per = total.div_ceil(shards as u64).max(1);
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &v) in vertices.iter().enumerate() {
        acc += u64::from(g.degree(v)) + 1;
        if acc >= per && out.len() + 1 < shards {
            out.push(&vertices[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    if start < vertices.len() {
        out.push(&vertices[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_graph::gen::{community_powerlaw, star, CommunityPowerLawConfig};

    fn sample() -> Graph {
        community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 3_000,
            avg_degree: 12.0,
            gamma: 2.1,
            ..Default::default()
        })
    }

    #[test]
    fn buckets_cover_all_vertices() {
        let g = sample();
        for s in [
            MflStrategy::Global,
            MflStrategy::Smem,
            MflStrategy::SmemWarp,
        ] {
            let b = Buckets::build(&g, s, DegreeThresholds::default());
            assert_eq!(b.total(), g.num_vertices(), "{s:?}");
        }
    }

    #[test]
    fn global_strategy_uses_one_bucket() {
        let g = sample();
        let b = Buckets::build(&g, MflStrategy::Global, DegreeThresholds::default());
        assert!(b.warp_packed.is_empty());
        assert!(b.block_per_vertex.is_empty());
        assert!(!b.global_hash.is_empty());
    }

    #[test]
    fn smem_warp_splits_by_thresholds() {
        let g = sample();
        let t = DegreeThresholds::default();
        let b = Buckets::build(&g, MflStrategy::SmemWarp, t);
        assert!(b
            .warp_packed
            .iter()
            .all(|&v| g.degree(v) < t.low && g.degree(v) > 0));
        assert!(b
            .warp_per_vertex
            .iter()
            .all(|&v| g.degree(v) >= t.low && g.degree(v) <= t.high));
        assert!(b.block_per_vertex.iter().all(|&v| g.degree(v) > t.high));
    }

    #[test]
    fn star_hub_goes_to_block_bucket() {
        let g = star(200);
        let b = Buckets::build(&g, MflStrategy::SmemWarp, DegreeThresholds::default());
        assert_eq!(b.block_per_vertex, vec![0]);
        assert_eq!(b.warp_packed.len(), 199);
    }

    #[test]
    fn split_by_degree_covers_and_balances() {
        let g = sample();
        let all: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        let parts = split_by_degree(&g, &all, 4);
        assert!(parts.len() <= 4);
        let covered: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(covered, all.len());
        let weights: Vec<u64> = parts
            .iter()
            .map(|p| p.iter().map(|&v| u64::from(g.degree(v)) + 1).sum())
            .collect();
        let max = *weights.iter().max().unwrap();
        let min = *weights.iter().min().unwrap();
        assert!(max < 3 * min.max(1), "imbalanced {weights:?}");
    }

    #[test]
    fn split_empty_is_empty() {
        let g = star(4);
        assert!(split_by_degree(&g, &[], 4).is_empty());
    }
}
