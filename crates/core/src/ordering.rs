//! Compression orderings from layered LP.
//!
//! LLP's original purpose (Boldi et al. [7], the paper's Figure 5
//! workload) is not community detection per se but **graph compression**:
//! run LLP at a sweep of resolutions γ and order vertices
//! lexicographically by their label tuple, coarse to fine. Neighbors end
//! up with nearby ids, so gap-encoded adjacency compresses well. This
//! module provides the ordering and the standard locality metric (mean
//! log₂ gap of neighbor ids) to judge it.

use crate::api::LpProgram;
use crate::engine::{Engine, GpuEngine, RunOptions};
use crate::variants::Llp;
use glp_graph::{Graph, Label, VertexId};

/// Runs LLP at each γ in `gammas` (each for up to `iterations` rounds) and
/// returns the layered ordering: `result[rank] = vertex`. Coarser labels
/// (smaller γ) are the most significant key, vertex id breaks final ties.
pub fn llp_ordering(g: &Graph, gammas: &[f64], iterations: u32) -> Vec<VertexId> {
    assert!(!gammas.is_empty(), "need at least one resolution");
    let n = g.num_vertices();
    let mut layers: Vec<Vec<Label>> = Vec::with_capacity(gammas.len());
    for &gamma in gammas {
        let mut prog = Llp::with_max_iterations(n, gamma, iterations);
        GpuEngine::titan_v()
            .run(g, &mut prog, &RunOptions::default())
            .expect("fault-free simulated device");
        layers.push(prog.labels().to_vec());
    }
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by(|&a, &b| {
        for layer in &layers {
            match layer[a as usize].cmp(&layer[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(&b)
    });
    order
}

/// Mean log₂(gap) of consecutive neighbor ranks under the permutation
/// `order` (`order[rank] = vertex`) — the quantity gap-encoded adjacency
/// lists pay per edge. Lower is better; a good ordering puts neighbors at
/// small mutual distances.
pub fn avg_log_gap(g: &Graph, order: &[VertexId]) -> f64 {
    assert_eq!(order.len(), g.num_vertices(), "permutation size mismatch");
    let mut rank = vec![0u32; order.len()];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    let mut total = 0.0f64;
    let mut edges = 0u64;
    let mut nbr_ranks: Vec<u32> = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let nbrs = g.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        nbr_ranks.clear();
        nbr_ranks.extend(nbrs.iter().map(|&u| rank[u as usize]));
        nbr_ranks.sort_unstable();
        let mut prev = rank[v as usize];
        for &r in &nbr_ranks {
            let gap = u64::from(r.abs_diff(prev)) + 1;
            total += (gap as f64).log2();
            prev = r;
            edges += 1;
        }
    }
    if edges == 0 {
        0.0
    } else {
        total / edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_graph::gen::{community_powerlaw, CommunityPowerLawConfig};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn sample() -> Graph {
        community_powerlaw(&CommunityPowerLawConfig {
            num_vertices: 4_000,
            avg_degree: 10.0,
            num_communities: 40,
            mixing: 0.05,
            ..Default::default()
        })
    }

    #[test]
    fn ordering_is_a_permutation() {
        let g = sample();
        let order = llp_ordering(&g, &[1.0, 4.0], 10);
        let mut seen = vec![false; g.num_vertices()];
        for &v in &order {
            assert!(!seen[v as usize], "duplicate vertex {v}");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn llp_ordering_beats_random_shuffle() {
        let g = sample();
        let llp = llp_ordering(&g, &[0.5, 2.0, 8.0], 10);
        let mut shuffled: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        shuffled.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(3));
        let gap_llp = avg_log_gap(&g, &llp);
        let gap_rand = avg_log_gap(&g, &shuffled);
        // Margin calibrated loosely: the exact ratio moves a few percent
        // with the RNG realization of the sample graph (the vendored
        // offline RNG shims produce a different — equally valid — stream
        // than the registry crates did).
        assert!(
            gap_llp < 0.85 * gap_rand,
            "LLP ordering {gap_llp:.2} bits/edge vs random {gap_rand:.2}"
        );
    }

    #[test]
    fn gap_metric_prefers_identity_on_a_path() {
        let g = glp_graph::gen::path(512);
        let identity: Vec<VertexId> = (0..512).collect();
        let gap = avg_log_gap(&g, &identity);
        // Neighbors are adjacent: per-edge gaps are 2 or 3 under the
        // chained encoding (log2 in [1, 1.6]) — far from the ~log2(n) bits
        // a random ordering pays.
        assert!(gap <= 1.6, "{gap}");
    }

    #[test]
    #[should_panic(expected = "permutation size mismatch")]
    fn wrong_size_permutation_rejected() {
        let g = glp_graph::gen::path(8);
        avg_log_gap(&g, &[0, 1, 2]);
    }
}
