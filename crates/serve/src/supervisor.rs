//! Worker supervision: catch panics, restart with capped exponential
//! backoff, give up after the restart budget.
//!
//! The PR-1 service shell had the classic failure mode of hand-rolled
//! thread pools: a panicking worker died silently (queries kept reading
//! an ever-staler snapshot) and then `shutdown()` re-threw the panic at
//! whoever joined it. A supervisor inverts that: the *supervisor thread*
//! owns the worker's lifecycle, every panic is caught
//! ([`std::panic::catch_unwind`]), counted in telemetry, recorded in the
//! [`HealthMonitor`], and answered with a restart after
//! `backoff_base * 2^(streak-1)` (capped) — until the health machine says
//! [`Down`](HealthState::Down), at which point restarts stop and the
//! outcome is recorded for [`shutdown`](crate::FraudService::shutdown) to
//! report instead of panicking on.
//!
//! The worker body is a plain `Fn() → WorkerExit` closure, re-invoked
//! from scratch on every restart; anything the body needs across restarts
//! (channels, the service core) lives in `Arc`s it captures. Bodies
//! signal *progress* through the health monitor themselves, which is what
//! distinguishes a crash **loop** (streak grows, backoff grows, service
//! degrades) from occasional faults (streak resets on the next applied
//! batch).

use crate::health::{HealthMonitor, HealthState};
use crate::telemetry::Telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How a worker body returned (when it did not panic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerExit {
    /// The work source closed (service shutdown): do not restart.
    Finished,
}

/// The final outcome of one supervised worker, as reported by
/// [`ShutdownReport`](crate::ShutdownReport).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// Still running (only observable before shutdown).
    Running,
    /// Exited cleanly at shutdown. The count is how many panics were
    /// caught and restarted along the way (0 = never crashed).
    Clean {
        /// Panics caught and restarted over the worker's lifetime.
        panics: u64,
    },
    /// Abandoned after the restart budget: the service went
    /// [`Down`](HealthState::Down) with this worker's last panic.
    Abandoned {
        /// Panics caught over the worker's lifetime.
        panics: u64,
        /// The final panic message.
        last_panic: String,
    },
}

/// Restart policy for one supervised worker.
#[derive(Clone, Copy, Debug)]
pub struct RestartPolicy {
    /// First-restart delay; doubles per consecutive crash.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl RestartPolicy {
    /// Delay before restart number `streak` (1-based).
    pub fn delay(&self, streak: u32) -> Duration {
        let doubled = self
            .backoff_base
            .saturating_mul(1u32 << streak.saturating_sub(1).min(20));
        doubled.min(self.backoff_cap)
    }
}

/// Live status of one supervised worker (shared with the service for
/// shutdown reporting).
#[derive(Debug)]
pub struct WorkerStatus {
    /// Worker name for telemetry and panic messages.
    pub name: &'static str,
    outcome: Mutex<WorkerOutcome>,
    panics: AtomicU64,
    restarts: AtomicU64,
}

impl WorkerStatus {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            outcome: Mutex::new(WorkerOutcome::Running),
            panics: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        }
    }

    /// The worker's outcome so far.
    pub fn outcome(&self) -> WorkerOutcome {
        self.outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Panics caught so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Acquire)
    }

    /// Restarts performed so far (panics that were answered with a new
    /// body invocation; an abandoned final panic is not a restart).
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Acquire)
    }

    fn set_outcome(&self, o: WorkerOutcome) {
        *self.outcome.lock().unwrap_or_else(|e| e.into_inner()) = o;
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns `body` under supervision. The returned handle joins the
/// *supervisor* (which never panics); the status cell reports how the
/// worker ended.
pub fn supervise<F>(
    name: &'static str,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
    policy: RestartPolicy,
    body: F,
) -> (JoinHandle<()>, Arc<WorkerStatus>)
where
    F: Fn() -> WorkerExit + Send + 'static,
{
    supervise_with(name, health, telemetry, policy, body, thread::sleep)
}

/// [`supervise`] with an injected sleep function. Tests observe the
/// backoff schedule (delay per restart, cap, restart accounting) by
/// recording the requested durations instead of waiting them out.
pub fn supervise_with<F, S>(
    name: &'static str,
    health: Arc<HealthMonitor>,
    telemetry: Arc<Telemetry>,
    policy: RestartPolicy,
    body: F,
    sleep: S,
) -> (JoinHandle<()>, Arc<WorkerStatus>)
where
    F: Fn() -> WorkerExit + Send + 'static,
    S: Fn(Duration) + Send + 'static,
{
    let status = Arc::new(WorkerStatus::new(name));
    let status_out = Arc::clone(&status);
    let handle = thread::Builder::new()
        .name(format!("glp-serve/{name}"))
        .spawn(move || loop {
            match catch_unwind(AssertUnwindSafe(&body)) {
                Ok(WorkerExit::Finished) => {
                    status.set_outcome(WorkerOutcome::Clean {
                        panics: status.panics(),
                    });
                    return;
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    status.panics.fetch_add(1, Ordering::AcqRel);
                    telemetry.worker_panics.fetch_add(1, Ordering::Relaxed);
                    let state = health.record_crash(name, &msg);
                    if state == HealthState::Down {
                        status.set_outcome(WorkerOutcome::Abandoned {
                            panics: status.panics(),
                            last_panic: msg,
                        });
                        return;
                    }
                    status.restarts.fetch_add(1, Ordering::AcqRel);
                    telemetry.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    sleep(policy.delay(health.consecutive_crashes()));
                }
            }
        })
        .expect("spawn supervisor thread");
    (handle, status_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthThresholds;
    use std::sync::atomic::AtomicU32;

    fn health() -> Arc<HealthMonitor> {
        Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: 2,
            down_after: 4,
        }))
    }

    fn fast_policy() -> RestartPolicy {
        RestartPolicy {
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RestartPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(60),
        };
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(4), Duration::from_millis(60)); // capped
        assert_eq!(p.delay(40), Duration::from_millis(60)); // no overflow
    }

    #[test]
    fn panicking_worker_is_restarted_then_finishes() {
        let h = health();
        let runs = Arc::new(AtomicU32::new(0));
        let runs_in = Arc::clone(&runs);
        let hp = Arc::clone(&h);
        let t = Arc::new(Telemetry::new());
        let (handle, status) = supervise(
            "test",
            Arc::clone(&h),
            Arc::clone(&t),
            fast_policy(),
            move || {
                let n = runs_in.fetch_add(1, Ordering::AcqRel);
                if n == 0 {
                    panic!("injected first-run panic");
                }
                hp.record_progress("test");
                WorkerExit::Finished
            },
        );
        handle.join().expect("supervisor never panics");
        assert_eq!(runs.load(Ordering::Acquire), 2);
        assert_eq!(status.outcome(), WorkerOutcome::Clean { panics: 1 });
        assert_eq!(status.restarts(), 1);
        assert_eq!(
            h.state(),
            HealthState::Healthy,
            "progress cleared the streak"
        );
        assert_eq!(t.worker_panics.load(Ordering::Acquire), 1);
        assert_eq!(t.worker_restarts.load(Ordering::Acquire), 1);
    }

    #[test]
    fn injected_clock_observes_backoff_schedule_without_sleeping() {
        // down_after = 6: five restarts before the sixth panic abandons.
        let h = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: 3,
            down_after: 6,
        }));
        let t = Arc::new(Telemetry::new());
        let policy = RestartPolicy {
            backoff_base: Duration::from_secs(10),
            backoff_cap: Duration::from_secs(40),
        };
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let slept_in = Arc::clone(&slept);
        let started = std::time::Instant::now();
        let (handle, status) = supervise_with(
            "schedule",
            Arc::clone(&h),
            Arc::clone(&t),
            policy,
            || panic!("always"),
            move |d| slept_in.lock().unwrap().push(d),
        );
        handle.join().expect("supervisor never panics");
        // Multi-second delays were recorded, not actually waited out.
        assert!(started.elapsed() < Duration::from_secs(5));
        let secs = |s: u64| Duration::from_secs(s);
        assert_eq!(
            *slept.lock().unwrap(),
            vec![secs(10), secs(20), secs(40), secs(40), secs(40)],
            "base doubles per crash then pins at the cap"
        );
        assert_eq!(status.panics(), 6);
        assert_eq!(
            status.restarts(),
            5,
            "the abandoning panic is not restarted"
        );
        assert_eq!(t.worker_panics.load(Ordering::Acquire), 6);
        assert_eq!(t.worker_restarts.load(Ordering::Acquire), 5);
        assert!(h.is_down());
        assert!(matches!(
            status.outcome(),
            WorkerOutcome::Abandoned { panics: 6, .. }
        ));
    }

    #[test]
    fn crash_loop_is_abandoned_as_down() {
        let h = health();
        let t = Arc::new(Telemetry::new());
        let (handle, status) = supervise("looper", Arc::clone(&h), t, fast_policy(), || {
            panic!("always");
        });
        handle.join().expect("supervisor never panics");
        assert!(h.is_down());
        match status.outcome() {
            WorkerOutcome::Abandoned { panics, last_panic } => {
                assert_eq!(panics, 4); // down_after
                assert_eq!(last_panic, "always");
            }
            o => panic!("expected Abandoned, got {o:?}"),
        }
        assert_eq!(status.restarts(), 3, "final panic is not restarted");
    }
}
