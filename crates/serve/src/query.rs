//! The query front-end: verdict snapshots and the scoring interface.
//!
//! A [`VerdictSnapshot`] is an immutable, fully-resolved scoring of one
//! window state — the output of a recluster, published through
//! [`EpochCell`](crate::swap::EpochCell). Queries are lookups against
//! whatever snapshot is current; they never touch the window, the queue,
//! or the LP engine. The snapshot's canonical byte encoding exists so
//! determinism can be asserted end to end (the determinism test compares
//! snapshots produced under different engine shard counts byte for byte).

use glp_gpusim::KernelCounters;
use std::sync::Arc;

/// The service's answer for one user.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// Member of a flagged cluster.
    Flagged {
        /// Suspicion score in [0, 1] of the user's cluster.
        score: f64,
        /// Canonical cluster label: the minimum user id among the
        /// cluster's members, a property of the cluster's user set alone
        /// (independent of vertex numbering, engine shard count, and
        /// service shard count).
        cluster: u32,
    },
    /// Present in the window, not in any flagged cluster.
    Clean,
    /// Not seen in the current window at all.
    Unknown,
}

/// One immutable scoring of the window: everything a query needs,
/// pre-resolved to plain user ids.
#[derive(Clone, Debug, Default)]
pub struct VerdictSnapshot {
    /// Exclusive end day of the window this snapshot scored.
    pub window_end: u32,
    /// Micro-batches applied when the recluster snapshotted the window
    /// (staleness = current batch count minus this).
    pub as_of_batch: u64,
    /// Users present in the scored window, ascending.
    pub known_users: Vec<u32>,
    /// Flagged users as `(user, canonical cluster label, score)`,
    /// ascending by user; the label is the cluster's minimum member
    /// user id (see [`Verdict::Flagged`]).
    pub flagged: Vec<(u32, u32, f64)>,
    /// Window graph size at scoring time.
    pub graph_vertices: usize,
    /// Window graph directed edge count at scoring time.
    pub graph_edges: u64,
    /// LP iterations the recluster ran.
    pub lp_iterations: u32,
    /// GPU event counters of the recluster's LP run.
    pub gpu_counters: KernelCounters,
}

impl VerdictSnapshot {
    /// Looks up one user against this snapshot.
    pub fn verdict(&self, user: u32) -> Verdict {
        if let Ok(i) = self.flagged.binary_search_by_key(&user, |&(u, _, _)| u) {
            let (_, cluster, score) = self.flagged[i];
            return Verdict::Flagged { score, cluster };
        }
        if self.known_users.binary_search(&user).is_ok() {
            Verdict::Clean
        } else {
            Verdict::Unknown
        }
    }

    /// Users flagged in this snapshot.
    pub fn num_flagged(&self) -> usize {
        self.flagged.len()
    }

    /// Canonical byte encoding of the *scoring outcome* — window end,
    /// known users, and flagged `(user, cluster, score)` triples with
    /// scores as IEEE-754 bits. Deliberately excludes timing, counters,
    /// and batch bookkeeping so two runs that cluster identically encode
    /// identically even if their wall clocks differ.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 * self.known_users.len() + 16 * self.flagged.len());
        out.extend_from_slice(&self.window_end.to_le_bytes());
        out.extend_from_slice(&(self.known_users.len() as u32).to_le_bytes());
        for u in &self.known_users {
            out.extend_from_slice(&u.to_le_bytes());
        }
        for &(u, c, s) in &self.flagged {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
            out.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        out
    }
}

/// The in-process scoring interface. Plain trait, no network: callers
/// hold a [`QueryHandle`](crate::service::QueryHandle) (or anything else
/// implementing this) and ask about users.
pub trait FraudScorer {
    /// Verdict for `user` against the freshest published snapshot.
    fn score(&self, user: u32) -> Verdict;

    /// The freshest published snapshot itself (for batch consumers that
    /// want one consistent view across many lookups).
    fn snapshot(&self) -> Arc<VerdictSnapshot>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VerdictSnapshot {
        VerdictSnapshot {
            window_end: 30,
            known_users: vec![1, 2, 5, 9],
            flagged: vec![(2, 40, 0.8), (9, 41, 0.6)],
            ..Default::default()
        }
    }

    #[test]
    fn verdict_lookup_covers_all_three_cases() {
        let s = sample();
        assert_eq!(
            s.verdict(2),
            Verdict::Flagged {
                score: 0.8,
                cluster: 40
            }
        );
        assert_eq!(s.verdict(5), Verdict::Clean);
        assert_eq!(s.verdict(7), Verdict::Unknown);
    }

    #[test]
    fn canonical_bytes_reflect_outcome_not_bookkeeping() {
        let a = sample();
        let mut b = sample();
        b.as_of_batch = 99;
        b.lp_iterations = 7;
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        let mut c = sample();
        c.flagged[0].2 = 0.81;
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }
}
