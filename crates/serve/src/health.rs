//! The service health state machine.
//!
//! An always-on scorer cannot answer "are you OK?" with a boolean: a
//! worker that panicked once and restarted is *serving but suspect*, a
//! crash-looping worker is *shedding to protect itself*, and a worker
//! past its restart budget is *down but still answering from its last
//! good snapshot*. Those are four distinct operational states with four
//! distinct contracts:
//!
//! ```text
//!              crash                 crash ≥ S             crash ≥ N
//!   Healthy ──────────▶ Degraded ──────────▶ Shedding ──────────▶ Down
//!      ▲                   │                     │                 (sticky)
//!      └──── progress ─────┴───── progress ──────┘
//! ```
//!
//! * **Healthy** — everything normal.
//! * **Degraded** — a supervised worker crashed recently (or verdicts
//!   have staled past the configured bound); queries are still served,
//!   from the last good snapshot, stamped with its staleness.
//! * **Shedding** — the crash streak reached the shedding threshold; the
//!   ingest gate refuses new transactions (counted) while supervision
//!   keeps restarting the worker with backoff.
//! * **Down** — the streak reached the restart budget; supervision gives
//!   up (a crash loop is a bug, not weather), ingest stays closed, and
//!   queries keep answering from the last published snapshot. Sticky:
//!   only a restart (or [`recover`](crate::FraudService::recover)) leaves
//!   it.
//!
//! Transitions are driven by exactly two events — `record_crash` from the
//! supervisor and `record_progress` from a worker completing real work —
//! so the machine is trivially deterministic under fault injection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

/// The four operational states, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum HealthState {
    /// Everything normal.
    Healthy = 0,
    /// Serving, but a worker crashed recently or verdicts are stale.
    Degraded = 1,
    /// Crash streak ongoing: ingest refuses new work (counted).
    Shedding = 2,
    /// Restart budget exhausted: ingest closed, queries answer from the
    /// last good snapshot. Sticky.
    Down = 3,
}

impl HealthState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Healthy,
            1 => Self::Degraded,
            2 => Self::Shedding,
            _ => Self::Down,
        }
    }

    /// Lower-case label for telemetry and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Shedding => "shedding",
            Self::Down => "down",
        }
    }
}

/// Crash-streak thresholds (see [`ServeConfig`](crate::ServeConfig)).
#[derive(Clone, Copy, Debug)]
pub struct HealthThresholds {
    /// Consecutive crashes at which the gate starts shedding.
    pub shedding_after: u32,
    /// Consecutive crashes at which supervision gives up (the restart
    /// budget `N`).
    pub down_after: u32,
}

/// Shared crash/health bookkeeping: written by the supervisor and the
/// workers, read by the ingest gate on every submit and by `health()`.
///
/// Crash streaks are **per worker** and the service state derives from
/// the *worst* streak: one worker making progress must not mask another
/// worker's crash loop (a reclustering service whose batcher panics on
/// every batch is broken, however many snapshots it publishes).
#[derive(Debug)]
pub struct HealthMonitor {
    state: AtomicU8,
    streaks: Mutex<HashMap<&'static str, u32>>,
    thresholds: HealthThresholds,
    last_panic: Mutex<Option<String>>,
    engine_tier: Mutex<Option<&'static str>>,
    burst: AtomicBool,
}

impl HealthMonitor {
    /// A monitor starting `Healthy`.
    pub fn new(thresholds: HealthThresholds) -> Self {
        assert!(
            thresholds.shedding_after >= 1 && thresholds.down_after > thresholds.shedding_after,
            "need 1 <= shedding_after < down_after"
        );
        Self {
            state: AtomicU8::new(HealthState::Healthy as u8),
            streaks: Mutex::new(HashMap::new()),
            thresholds,
            last_panic: Mutex::new(None),
            engine_tier: Mutex::new(None),
            burst: AtomicBool::new(false),
        }
    }

    /// Current crash-driven state (staleness overlays are applied by
    /// [`ServiceCore::health`](crate::ServiceCore::health)).
    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Whether the service is permanently down.
    pub fn is_down(&self) -> bool {
        self.state() == HealthState::Down
    }

    /// The worst current crash streak across all workers.
    pub fn consecutive_crashes(&self) -> u32 {
        self.streaks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Records which engine tier produced the most recent recluster — the
    /// recluster worker reports it after every LP run, so operators can
    /// see at a glance whether scoring currently runs on the GPU or has
    /// degraded down the ladder (see
    /// [`ResilientEngine`](glp_core::ResilientEngine)).
    pub fn set_engine_tier(&self, tier: &'static str) {
        *self.engine_tier.lock().unwrap_or_else(|e| e.into_inner()) = Some(tier);
    }

    /// The engine tier of the most recent recluster (`None` before the
    /// first snapshot is published).
    pub fn engine_tier(&self) -> Option<&'static str> {
        *self.engine_tier.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Raised and cleared by the burst detector (see
    /// [`BurstState`](crate::ingest::BurstState)): while set, `health()`
    /// overlays the crash-driven state to at least
    /// [`HealthState::Degraded`] — the service is serving, but shedding
    /// a burst flood and draining in tightened batches. The overlay never
    /// reaches `Shedding`, so it cannot feed back into admission.
    pub fn set_burst(&self, active: bool) {
        self.burst.store(active, Ordering::Release);
    }

    /// Whether the burst overlay is currently raised.
    pub fn burst_overlay(&self) -> bool {
        self.burst.load(Ordering::Acquire)
    }

    /// The panic message of the most recent worker crash, if any.
    pub fn last_panic(&self) -> Option<String> {
        self.last_panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn severity(&self, streak: u32) -> HealthState {
        if streak >= self.thresholds.down_after {
            HealthState::Down
        } else if streak >= self.thresholds.shedding_after {
            HealthState::Shedding
        } else if streak >= 1 {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    }

    /// Called by the supervisor for every caught panic of `worker`.
    /// Returns the state after the transition (the supervisor stops
    /// restarting on [`HealthState::Down`]).
    pub fn record_crash(&self, worker: &'static str, panic_msg: &str) -> HealthState {
        *self.last_panic.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(format!("{worker}: {panic_msg}"));
        let streak = {
            let mut s = self.streaks.lock().unwrap_or_else(|e| e.into_inner());
            let entry = s.entry(worker).or_insert(0);
            *entry += 1;
            *entry
        };
        // Never downgrade severity on a crash (Down is sticky).
        self.state
            .fetch_max(self.severity(streak) as u8, Ordering::AcqRel);
        self.state()
    }

    /// Called by `worker` after completing real work (a batch applied, a
    /// snapshot published): ends *its* crash streak and lowers the
    /// service state to the severity of the worst *remaining* streak —
    /// back to `Healthy` when no other worker is crashing, but never out
    /// of `Down`, which only a process restart (or
    /// [`recover`](crate::FraudService::recover)) clears.
    pub fn record_progress(&self, worker: &'static str) {
        if self.is_down() {
            return;
        }
        let target = {
            let mut s = self.streaks.lock().unwrap_or_else(|e| e.into_inner());
            s.insert(worker, 0);
            self.severity(s.values().copied().max().unwrap_or(0))
        };
        // Lower the state to `target`, never raising it and never
        // leaving Down. Racing with record_crash's fetch_max: the worst
        // outcome is one extra submit shed before the next progress tick.
        let mut cur = self.state.load(Ordering::Acquire);
        while cur > target as u8
            && cur != HealthState::Down as u8
            && self
                .state
                .compare_exchange_weak(cur, target as u8, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            cur = self.state.load(Ordering::Acquire);
        }
    }

    /// Re-admits a service after failover: clears every crash streak and
    /// forces the state back to `Healthy`. This is the *only* exit from
    /// [`HealthState::Down`] short of a process restart, and it is
    /// reserved for the fleet's failover path
    /// ([`FleetCore::failover_shard`](crate::router::FleetCore::failover_shard)),
    /// which calls it strictly *after* the shard's state has been rebuilt
    /// from its checkpoint plus journal replay — reviving a shard whose
    /// window is still wrong would serve bad verdicts, not heal anything.
    pub fn revive(&self) {
        self.streaks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.state
            .store(HealthState::Healthy as u8, Ordering::Release);
    }
}

/// One observation of service health, as returned by
/// [`ServiceCore::health`](crate::ServiceCore::health): the effective
/// state plus everything an operator (or a shedding decision) needs to
/// interpret it.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Effective state: the crash-driven state, raised to at least
    /// `Degraded` while verdicts are staler than the configured bound.
    pub state: HealthState,
    /// Current worker crash streak.
    pub consecutive_crashes: u32,
    /// Batches applied since the served snapshot was materialized.
    pub staleness_batches: u64,
    /// Epoch of the snapshot queries are currently served from.
    pub snapshot_epoch: u64,
    /// Panic message of the most recent worker crash, if any.
    pub last_panic: Option<String>,
    /// Engine tier the last recluster ran on (`None` before the first),
    /// e.g. `"GLP"` when healthy or `"Sequential-BSP"` after the full
    /// degradation ladder.
    pub engine_tier: Option<&'static str>,
}

impl HealthReport {
    /// `{state, consecutive_crashes, staleness_batches, ...}` as JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "state": self.state.as_str(),
            "consecutive_crashes": self.consecutive_crashes,
            "staleness_batches": self.staleness_batches,
            "snapshot_epoch": self.snapshot_epoch,
            "last_panic": self.last_panic.clone().unwrap_or_default(),
            "engine_tier": self.engine_tier.unwrap_or(""),
        })
    }
}

/// Combines the router's own state with per-shard states into the
/// fleet-level state the sharded service reports (see
/// [`FleetCore::health`](crate::router::FleetCore::health)).
///
/// The ladder is deliberately asymmetric: a single sick or dead shard
/// only *degrades* the fleet — its keyspace sheds while the surviving
/// shards keep serving theirs — because partial answers from a
/// partitioned keyspace are the whole point of sharding. The fleet is
/// `Down` only when the router itself is down or *every* shard is, i.e.
/// when no keyspace is served at all.
pub fn fleet_state(router: HealthState, shards: &[HealthState]) -> HealthState {
    let overlay = if !shards.is_empty() && shards.iter().all(|&s| s == HealthState::Down) {
        HealthState::Down
    } else if shards.iter().any(|&s| s > HealthState::Healthy) {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    };
    router.max(overlay)
}

/// One shard core's health, as seen in a [`FleetHealthReport`].
#[derive(Clone, Debug)]
pub struct ShardHealthReport {
    /// Shard index in the fleet.
    pub shard: usize,
    /// The shard's own crash-driven state.
    pub state: HealthState,
    /// The shard's worst current crash streak.
    pub consecutive_crashes: u32,
    /// Panics of this shard's workers caught by supervision.
    pub worker_panics: u64,
    /// Restarts of this shard's workers performed by supervision.
    pub worker_restarts: u64,
    /// Panic message of this shard's most recent crash, if any.
    pub last_panic: Option<String>,
}

impl ShardHealthReport {
    /// One JSON row per shard for the fleet health document.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "shard": self.shard,
            "state": self.state.as_str(),
            "consecutive_crashes": self.consecutive_crashes,
            "worker_panics": self.worker_panics,
            "worker_restarts": self.worker_restarts,
            "last_panic": self.last_panic.clone().unwrap_or_default(),
        })
    }
}

/// Fleet-level health: the service state plus one row per shard, so an
/// operator can tell *which* shard is sick and how it got there.
#[derive(Clone, Debug)]
pub struct FleetHealthReport {
    /// Effective fleet state (see [`fleet_state`]).
    pub state: HealthState,
    /// The router's own crash-driven state.
    pub router: HealthState,
    /// Per-shard health rows, indexed by shard id.
    pub shards: Vec<ShardHealthReport>,
    /// Epoch of the fleet snapshot queries are served from.
    pub snapshot_epoch: u64,
}

impl FleetHealthReport {
    /// `{state, router, shards: [...], snapshot_epoch}` as JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "state": self.state.as_str(),
            "router": self.router.as_str(),
            "shards": self.shards.iter().map(|s| s.to_json()).collect::<Vec<_>>(),
            "snapshot_epoch": self.snapshot_epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthThresholds {
            shedding_after: 3,
            down_after: 5,
        })
    }

    #[test]
    fn crashes_walk_the_severity_ladder() {
        let m = monitor();
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.record_crash("w", "p1"), HealthState::Degraded);
        assert_eq!(m.record_crash("w", "p2"), HealthState::Degraded);
        assert_eq!(m.record_crash("w", "p3"), HealthState::Shedding);
        assert_eq!(m.record_crash("w", "p4"), HealthState::Shedding);
        assert_eq!(m.record_crash("w", "p5"), HealthState::Down);
        assert_eq!(m.last_panic().as_deref(), Some("w: p5"));
    }

    #[test]
    fn progress_ends_the_streak_and_restores_healthy() {
        let m = monitor();
        m.record_crash("w", "p");
        m.record_crash("w", "p");
        assert_eq!(m.consecutive_crashes(), 2);
        m.record_progress("w");
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.consecutive_crashes(), 0);
        // The streak restarts from scratch.
        assert_eq!(m.record_crash("w", "p"), HealthState::Degraded);
    }

    #[test]
    fn engine_tier_is_reported_once_set() {
        let m = monitor();
        assert_eq!(m.engine_tier(), None);
        m.set_engine_tier("GLP");
        assert_eq!(m.engine_tier(), Some("GLP"));
        m.set_engine_tier("Sequential-BSP");
        assert_eq!(m.engine_tier(), Some("Sequential-BSP"));
    }

    #[test]
    fn burst_overlay_flag_raises_and_clears() {
        let m = monitor();
        assert!(!m.burst_overlay());
        m.set_burst(true);
        assert!(m.burst_overlay());
        // The crash-driven state is untouched — the overlay is applied by
        // the core's `health()`, not stored in the machine.
        assert_eq!(m.state(), HealthState::Healthy);
        m.set_burst(false);
        assert!(!m.burst_overlay());
    }

    #[test]
    fn down_is_sticky() {
        let m = monitor();
        for _ in 0..5 {
            m.record_crash("w", "loop");
        }
        assert!(m.is_down());
        m.record_progress("w");
        assert!(m.is_down(), "progress must not resurrect a Down service");
    }

    #[test]
    fn revive_is_the_one_exit_from_down() {
        let m = monitor();
        for _ in 0..5 {
            m.record_crash("w", "loop");
        }
        assert!(m.is_down());
        m.revive();
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.consecutive_crashes(), 0, "streaks cleared");
        // The ladder works again from scratch after re-admission.
        assert_eq!(m.record_crash("w", "p"), HealthState::Degraded);
    }

    #[test]
    fn fleet_state_degrades_on_one_dead_shard_downs_on_all() {
        use HealthState::*;
        // All healthy.
        assert_eq!(fleet_state(Healthy, &[Healthy, Healthy]), Healthy);
        // One sick or dead shard: Degraded, never Down.
        assert_eq!(fleet_state(Healthy, &[Healthy, Degraded]), Degraded);
        assert_eq!(fleet_state(Healthy, &[Down, Healthy, Healthy]), Degraded);
        assert_eq!(fleet_state(Healthy, &[Down, Shedding, Healthy]), Degraded);
        // Every shard dead: nothing served, Down.
        assert_eq!(fleet_state(Healthy, &[Down, Down]), Down);
        // The router's own state always floors the result.
        assert_eq!(fleet_state(Shedding, &[Healthy, Healthy]), Shedding);
        assert_eq!(fleet_state(Down, &[Healthy, Healthy]), Down);
        // No shards (degenerate): router state alone.
        assert_eq!(fleet_state(Healthy, &[]), Healthy);
    }

    #[test]
    fn one_workers_progress_does_not_mask_anothers_crash_loop() {
        let m = monitor();
        // Worker `a` crash-loops while worker `b` keeps making progress:
        // `b`'s progress must not reset `a`'s streak, so `a` still walks
        // the ladder all the way to Down.
        m.record_crash("a", "p1");
        m.record_progress("b");
        assert_eq!(m.state(), HealthState::Degraded, "a's streak persists");
        m.record_crash("a", "p2");
        m.record_crash("a", "p3");
        m.record_progress("b");
        assert_eq!(m.state(), HealthState::Shedding);
        assert_eq!(m.consecutive_crashes(), 3);
        m.record_crash("a", "p4");
        m.record_crash("a", "p5");
        assert!(m.is_down());
        // And a's own progress *would* have cleared it (fresh monitor).
        let m2 = monitor();
        m2.record_crash("a", "p");
        m2.record_progress("a");
        assert_eq!(m2.state(), HealthState::Healthy);
    }
}
