//! The sharded fleet: a community-aware router fanning micro-batches to
//! N shard cores, with periodic cross-shard label exchange.
//!
//! Two layers, mirroring [`service`](crate::service):
//!
//! * [`FleetCore`] — the synchronous heart: validate and stamp a
//!   micro-batch, fan it out by
//!   [`Partitioner`](crate::partition::Partitioner), recluster shards,
//!   run an exchange round, look up a verdict, checkpoint/restore the
//!   whole fleet. No threads; the determinism suite and the scaling
//!   bench drive it step by step.
//! * [`ShardRouter`] — the threaded shell: one supervised **router**
//!   worker drains the ingest queue and fans batches out, one supervised
//!   **recluster** worker per shard refreshes that shard's local
//!   verdicts, and one supervised **exchange** worker reconciles
//!   boundary components into the fleet snapshot.
//!
//! **Routing and validation.** The router is the fleet's single
//! authority on validity and ordering: it filters non-finite amounts and
//! day regressions against the running global watermark, stamps each
//! accepted transaction with a fleet-wide monotone sequence number, and
//! hands every shard its sub-batch *plus* the new watermark — so all
//! shard windows expire in lockstep even on batches where they receive
//! nothing.
//!
//! **Partial failure.** A shard whose apply panics is crash-tracked by
//! its own [`HealthMonitor`]; until its streak reaches `Down` the next
//! routed batch simply retries it, and after that its keyspace is shed
//! (counted in `shed_unhealthy`) while every other shard keeps serving —
//! the fleet reports [`Degraded`](HealthState::Degraded), not `Down`
//! (see [`fleet_state`]). Queries for a dead shard's users fall back to
//! the last reconciled fleet snapshot.
//!
//! **Durability.** Each shard checkpoints its own window (with sequence
//! stamps) to `<base>.shard<i>`; [`FleetCore::restore`] brings the whole
//! fleet back and [`FleetCore::migrate_from_single`] splits a
//! single-core checkpoint across a fleet — both ending with an exchange
//! round so the first query already sees reconciled verdicts.
//!
//! **Journal + failover.** With `wal_dir` configured, the router
//! journals every validated, seq-stamped micro-batch to a write-ahead
//! log ([`crate::wal`]) *before* fan-out. That single ordering decision
//! buys three recovery paths:
//!
//! * **Automatic shard failover** — a shard that reaches `Down` is no
//!   longer shed forever: the next batch routed its way triggers
//!   [`FleetCore::failover_shard`], which rebuilds the shard's window
//!   from its last checkpoint plus journal replay of the batches after
//!   it (restricted to its keyspace, in router sequence order),
//!   re-admits it via [`HealthMonitor::revive`], and resumes serving —
//!   byte-identical to a fleet that never lost the shard.
//! * **Zero-loss crash-restart** — [`FleetCore::restore`] follows the
//!   checkpoints with [`FleetCore::sync_from_wal`], so every journaled
//!   batch the crash interrupted lands exactly once; a missing or
//!   corrupt shard checkpoint downgrades to a journal-only rebuild of
//!   that shard instead of failing the whole restore.
//! * **The write-ahead crash window** — a crash *between* journal
//!   append and fan-out leaves a batch durable but unapplied;
//!   `router_loop` replays it on worker restart before accepting new
//!   traffic, again exactly once.
//!
//! Checkpoints bound the journal: after each fleet checkpoint the
//! segments every shard's durable image already covers are deleted
//! (`wal_truncate_on_checkpoint`).

use crate::config::FleetConfig;
use crate::exchange::{reconcile_with, BoundaryCache, ExchangeReport, FleetSnapshot};
#[cfg(feature = "fault-injection")]
use crate::faults::FaultPlan;
use crate::health::{
    fleet_state, FleetHealthReport, HealthMonitor, HealthState, HealthThresholds, ShardHealthReport,
};
use crate::ingest::{ingest_pair, Batcher, BurstState, Closed, IngestGate, Submitted};
use crate::partition::Partitioner;
use crate::query::{FraudScorer, Verdict, VerdictSnapshot};
use crate::recluster::{ReclusterMode, ReclusterRun};
use crate::shard::ShardCore;
use crate::supervisor::{
    panic_message, supervise, RestartPolicy, WorkerExit, WorkerOutcome, WorkerStatus,
};
use crate::swap::EpochCell;
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::wal::{FleetWal, WalError};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use glp_fraud::checkpoint::{CheckpointError, WindowCheckpoint};
use glp_fraud::{IncrementalWindow, Transaction};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What one [`FleetCore::exchange_now`] round cost and found.
#[derive(Clone, Debug)]
pub struct ExchangeOutcome {
    /// What each shard's pre-exchange local recluster ran (a down shard
    /// contributes a zero-wall, zero-frontier `Full` placeholder). On
    /// real hardware the shards recluster in parallel, so the modeled
    /// parallel cost of the round is the max of the shard walls — the
    /// accounting the scaling bench uses.
    pub shard_runs: Vec<ReclusterRun>,
    /// What the boundary recluster ran, when one was needed (`None`
    /// when no component spans shards).
    pub boundary_run: Option<ReclusterRun>,
    /// Wall seconds of the boundary reconciliation itself (union-find,
    /// merge, boundary LP, assembly).
    pub exchange_wall: f64,
    /// What the round found.
    pub report: ExchangeReport,
}

/// Why a whole-fleet recovery ([`FleetCore::restore`] /
/// [`ShardRouter::recover`]) failed.
#[derive(Debug)]
pub enum FleetRecoveryError {
    /// A shard checkpoint was unreadable and no journal was configured
    /// to rebuild that shard from.
    Checkpoint(CheckpointError),
    /// The write-ahead journal itself was unreadable, or replay hit a
    /// gap (e.g. a checkpoint was deleted *and* the covering segments
    /// were already truncated).
    Wal(WalError),
}

impl std::fmt::Display for FleetRecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "fleet recovery: checkpoint: {e}"),
            Self::Wal(e) => write!(f, "fleet recovery: journal: {e}"),
        }
    }
}

impl std::error::Error for FleetRecoveryError {}

impl From<CheckpointError> for FleetRecoveryError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<WalError> for FleetRecoveryError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

/// Why a shard failover ([`FleetCore::failover_shard`]) failed.
#[derive(Debug)]
pub enum FailoverError {
    /// The fleet has no write-ahead journal configured; a dead shard's
    /// post-checkpoint history is unrecoverable and its keyspace stays
    /// shed (the pre-journal behaviour).
    NoJournal,
    /// The journal could not supply the shard's missing history.
    Wal(WalError),
}

impl std::fmt::Display for FailoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoJournal => write!(f, "failover: no write-ahead journal configured"),
            Self::Wal(e) => write!(f, "failover: {e}"),
        }
    }
}

impl std::error::Error for FailoverError {}

/// One completed shard failover, as recorded in
/// [`FleetCore::failover_events`] — the chaos bench derives MTTR
/// (kill → re-admitted) from these.
#[derive(Clone, Debug)]
pub struct FailoverEvent {
    /// Which shard was rebuilt.
    pub shard: usize,
    /// Journal records replayed on top of the base image.
    pub replayed_batches: u64,
    /// Whether a checkpoint supplied the base image (`false` = the
    /// shard was rebuilt from the journal alone).
    pub from_checkpoint: bool,
    /// Wall time of the rebuild (checkpoint read + replay + swap +
    /// recluster).
    pub wall: Duration,
    /// When the shard was re-admitted.
    pub completed_at: Instant,
}

/// The merged fleet telemetry document: every core's counters and
/// histograms folded into one [`TelemetrySnapshot`], plus the
/// fleet-level facts no single core owns.
#[derive(Clone, Debug)]
pub struct FleetTelemetry {
    /// Router telemetry plus every shard's, counters summed and
    /// histograms merged bucket-wise.
    pub merged: TelemetrySnapshot,
    /// Effective fleet health state at snapshot time.
    pub fleet_state: HealthState,
    /// Completed failovers per shard, indexed by shard id.
    pub shard_failovers: Vec<u64>,
}

impl FleetTelemetry {
    /// The named merged counter's value (see [`TelemetrySnapshot::counter`]).
    pub fn counter(&self, name: &str) -> u64 {
        self.merged.counter(name)
    }

    /// The merged snapshot's JSON document extended with `fleet_state`
    /// and `shard_failovers` keys.
    pub fn to_json(&self) -> serde_json::Value {
        let mut doc = match self.merged.to_json() {
            serde_json::Value::Object(pairs) => pairs,
            _ => unreachable!("snapshot JSON is always an object"),
        };
        doc.push((
            "fleet_state".to_string(),
            serde_json::json!(self.fleet_state.as_str()),
        ));
        doc.push((
            "shard_failovers".to_string(),
            serde_json::Value::Array(
                self.shard_failovers
                    .iter()
                    .map(|&v| serde_json::json!(v))
                    .collect(),
            ),
        ));
        serde_json::Value::Object(doc)
    }
}

/// The synchronous sharded fleet (see module docs).
pub struct FleetCore {
    cfg: FleetConfig,
    partitioner: Partitioner,
    /// The fleet's live blacklist seeds; churned via
    /// [`Self::update_blacklist`], which fans the change out to every
    /// shard and resets the boundary cache (its prefix check, like the
    /// shard memo's, compares window lineage only — not seed sets).
    blacklist: Mutex<Vec<u32>>,
    shards: Vec<Arc<ShardCore>>,
    fleet: EpochCell<FleetSnapshot>,
    /// Router-level telemetry (ingest, routing, exchange); shard cores
    /// have their own blocks, merged by [`Self::fleet_telemetry`].
    telemetry: Arc<Telemetry>,
    /// Router-level health; per-shard monitors live in the shard cores.
    health: Arc<HealthMonitor>,
    batches_applied: AtomicU64,
    /// Global day watermark, mirrored for the ingest gate.
    window_end: Arc<AtomicU32>,
    /// Next fleet-wide sequence stamp.
    next_seq: AtomicU64,
    /// The write-ahead batch journal (None = journaling off). Locked
    /// only on the router thread's append and the (rare) recovery
    /// reads; never on the query path.
    wal: Option<Mutex<FleetWal>>,
    /// Per-shard durable progress: the `batches_applied` of each
    /// shard's newest on-disk checkpoint. `min` over these is the
    /// journal-truncation watermark — a Down shard pins its last good
    /// image here, so the journal retains exactly what its failover
    /// will need.
    durable: Vec<AtomicU64>,
    /// Completed failovers, in completion order.
    failover_log: Mutex<Vec<FailoverEvent>>,
    /// Set when a shard's failover hit a permanent journal gap: retrying
    /// every batch would fail identically, so the shard stays shed until
    /// a process-level recovery.
    failover_blocked: Vec<AtomicBool>,
    /// Carry-over state of the boundary recluster, letting consecutive
    /// exchange rounds go incremental when the spanning set only grew
    /// (see [`BoundaryCache`]). A stale cache is safe — its prefix check
    /// falls back to a full boundary recluster — so recovery paths never
    /// need to reset it.
    boundary: Mutex<BoundaryCache>,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<FaultPlan>>,
}

/// Opens the configured journal, if any.
fn open_wal(cfg: &FleetConfig) -> Result<Option<FleetWal>, WalError> {
    cfg.wal_dir
        .as_ref()
        .map(|dir| FleetWal::open(dir, cfg.wal_segment_bytes))
        .transpose()
}

impl FleetCore {
    /// A fleet of `cfg.shards` empty shard cores.
    pub fn new(cfg: FleetConfig, partitioner: Partitioner, blacklist: Vec<u32>) -> Self {
        assert_eq!(
            partitioner.shards(),
            cfg.shards,
            "partitioner and fleet disagree on shard count"
        );
        let wal = open_wal(&cfg).expect("the configured journal directory must be openable");
        let shards = (0..cfg.shards)
            .map(|i| Arc::new(ShardCore::new(i, cfg.shard.clone(), blacklist.clone())))
            .collect();
        Self::assemble(cfg, partitioner, blacklist, shards, wal)
    }

    /// Restores a whole fleet from its per-shard checkpoints
    /// (`<base>.shard<i>` for every `i`) plus, when a journal is
    /// configured, a replay of every journaled batch the checkpoints
    /// don't cover — so a crash loses nothing that reached the journal.
    /// With a journal, a missing or corrupt shard checkpoint downgrades
    /// to rebuilding that shard from the journal alone (which requires
    /// the journal to still hold its full history — see
    /// `wal_truncate_on_checkpoint`). Ends with one exchange round so
    /// queries see reconciled verdicts before any new traffic.
    pub fn restore(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
    ) -> Result<Self, FleetRecoveryError> {
        assert_eq!(partitioner.shards(), cfg.shards);
        let wal = open_wal(&cfg)?;
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut durables = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let restored = match cfg.shard_checkpoint_path(i) {
                None => Err(CheckpointError::Invalid("no checkpoint path configured")),
                Some(path) => WindowCheckpoint::read(&path).and_then(|ckpt| {
                    let durable = ckpt.batches_applied;
                    ShardCore::restore(i, cfg.shard.clone(), blacklist.clone(), &ckpt)
                        .map(|core| (core, durable))
                }),
            };
            match restored {
                Ok((core, durable)) => {
                    shards.push(Arc::new(core));
                    durables.push(durable);
                }
                Err(e) if wal.is_none() => return Err(e.into()),
                Err(_) => {
                    // Unreadable image, journal available: start this
                    // shard empty and let `sync_from_wal` replay its
                    // entire history from the journal.
                    shards.push(Arc::new(ShardCore::new(
                        i,
                        cfg.shard.clone(),
                        blacklist.clone(),
                    )));
                    durables.push(0);
                }
            }
        }
        let core = Self::assemble(cfg, partitioner, blacklist, shards, wal);
        for (cell, durable) in core.durable.iter().zip(durables) {
            cell.store(durable, Ordering::Relaxed);
        }
        core.sync_from_wal()?;
        core.exchange_now();
        Ok(core)
    }

    /// Splits one single-core checkpoint (written by
    /// [`ServiceCore`](crate::service::ServiceCore)) across a fleet: the
    /// window partitions by routed buyer, sequence stamps fall back to
    /// log positions when the image predates stamps (a single log is
    /// already in arrival order), and an exchange round reconciles
    /// before anything is served — the scale-out migration path.
    pub fn migrate_from_single(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
        ckpt: &WindowCheckpoint,
    ) -> Result<Self, CheckpointError> {
        assert_eq!(partitioner.shards(), cfg.shards);
        let wal = open_wal(&cfg).expect("the configured journal directory must be openable");
        if ckpt.days != cfg.shard.window_days {
            return Err(CheckpointError::Invalid(
                "checkpoint window length disagrees with the configuration",
            ));
        }
        let window = ckpt.restore_window()?;
        let seqs: Vec<u64> = if ckpt.seqs.is_empty() {
            (0..window.num_transactions() as u64).collect()
        } else {
            ckpt.seqs.clone()
        };
        let parts = window.partition_by(cfg.shards, |u| partitioner.shard_of(u));
        let mut seqs_per: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.shards];
        for (pos, t) in window.transactions().enumerate() {
            seqs_per[partitioner.shard_of(t.buyer)].push_back(seqs[pos]);
        }
        let shards: Vec<Arc<ShardCore>> = parts
            .into_iter()
            .zip(seqs_per)
            .enumerate()
            .map(|(i, (w, sq))| {
                // Monotonic counters describe the single core's whole
                // history; shard 0 inherits them so the fleet total is
                // continuous rather than N-fold.
                let counters: &[u64] = if i == 0 { &ckpt.counters } else { &[] };
                Arc::new(ShardCore::from_state(
                    i,
                    cfg.shard.clone(),
                    blacklist.clone(),
                    w,
                    sq,
                    ckpt.batches_applied,
                    ckpt.snapshot_epoch,
                    counters,
                ))
            })
            .collect();
        let core = Self::assemble(cfg, partitioner, blacklist, shards, wal);
        core.exchange_now();
        Ok(core)
    }

    fn assemble(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
        shards: Vec<Arc<ShardCore>>,
        wal: Option<FleetWal>,
    ) -> Self {
        let window_end = shards.iter().map(|s| s.window_end()).max().unwrap_or(0);
        let batches = shards
            .iter()
            .map(|s| s.batches_applied())
            .max()
            .unwrap_or(0);
        let next_seq = shards
            .iter()
            .filter_map(|s| s.last_seq())
            .max()
            .map_or(0, |m| m + 1);
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: cfg.shard.shedding_after_crashes,
            down_after: cfg.shard.down_after_crashes,
        }));
        let durable = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        let failover_blocked = (0..shards.len()).map(|_| AtomicBool::new(false)).collect();
        let boundary = Mutex::new(BoundaryCache::new(cfg.shard.window_days));
        Self {
            cfg,
            partitioner,
            blacklist: Mutex::new(blacklist),
            shards,
            fleet: EpochCell::new(FleetSnapshot::default()),
            telemetry: Arc::new(Telemetry::new()),
            health,
            batches_applied: AtomicU64::new(batches),
            window_end: Arc::new(AtomicU32::new(window_end)),
            next_seq: AtomicU64::new(next_seq),
            wal: wal.map(Mutex::new),
            durable,
            failover_log: Mutex::new(Vec::new()),
            failover_blocked,
            boundary,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Attaches a fault plan (feature `fault-injection`): the routed
    /// apply consults [`FaultPlan::maybe_panic_shard`] per shard per
    /// fleet batch.
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The shard cores, indexed by shard id.
    pub fn shards(&self) -> &[Arc<ShardCore>] {
        &self.shards
    }

    /// The router's partitioner.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The router's own telemetry block (see [`Self::fleet_telemetry`]
    /// for the merged fleet view).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The fleet's current blacklist seeds (sorted, deduplicated).
    pub fn blacklist(&self) -> Vec<u32> {
        self.blacklist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Applies blacklist churn fleet-wide: the fleet's own seed set
    /// changes, every shard's does too (resetting each shard's warm
    /// memo), and the boundary cache is reset — its prefix check
    /// compares sequence-stamp lineage, not seed sets, so a churned
    /// blacklist would otherwise let an exchange round go incremental
    /// against labels a retracted seed already propagated. Returns
    /// whether the seed set changed; counted in `blacklist_revisions`
    /// (router block).
    pub fn update_blacklist(&self, add: &[u32], remove: &[u32]) -> bool {
        let changed = {
            let mut bl = self.blacklist.lock().unwrap_or_else(|e| e.into_inner());
            let before = bl.clone();
            bl.extend_from_slice(add);
            bl.sort_unstable();
            bl.dedup();
            bl.retain(|u| !remove.contains(u));
            *bl != before
        };
        if changed {
            self.telemetry
                .blacklist_revisions
                .fetch_add(1, Ordering::Relaxed);
            for s in &self.shards {
                s.update_blacklist(add, remove);
            }
            *self.boundary.lock().unwrap_or_else(|e| e.into_inner()) =
                BoundaryCache::new(self.cfg.shard.window_days);
        }
        changed
    }

    /// Fleet micro-batches applied so far.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied.load(Ordering::Relaxed)
    }

    /// The global day watermark.
    pub fn window_end(&self) -> u32 {
        self.window_end.load(Ordering::Acquire)
    }

    /// The last reconciled fleet snapshot (empty before the first
    /// exchange round).
    pub fn fleet_snapshot(&self) -> Arc<FleetSnapshot> {
        self.fleet.load()
    }

    /// Validates, stamps, routes, and fans out one micro-batch. The
    /// router is authoritative: shards receive only pre-validated
    /// transactions in global arrival order, plus the new watermark.
    /// With a journal configured the accepted batch is journaled
    /// *before* fan-out, and a down shard triggers an automatic
    /// failover ([`Self::failover_shard`]) instead of shedding; without
    /// one, a sub-batch routed to a down shard is shed (counted). A
    /// shard that panics mid-apply loses that sub-batch the same way,
    /// with the crash recorded on *its* monitor. Returns the fleet
    /// batch count.
    pub fn apply(&self, batch: &[Submitted]) -> u64 {
        if batch.is_empty() {
            return self.batches_applied();
        }
        let fleet_batch = self.batches_applied();
        let mut end = self.window_end.load(Ordering::Acquire);
        let mut invalid = 0u64;
        let mut accepted: Vec<(u64, Transaction)> = Vec::with_capacity(batch.len());
        for s in batch {
            let t = s.tx;
            // Same running-end filter as the single core's apply: days
            // must be monotone per accepted transaction, which is also
            // what keeps every shard sub-log day-sorted.
            if t.amount.is_finite() && t.day + 1 >= end {
                end = end.max(t.day + 1);
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                accepted.push((seq, t));
            } else {
                invalid += 1;
            }
        }
        // Journal first (even an all-invalid batch: record indices must
        // stay dense for replay), then fan out — a crash from here on
        // loses nothing that was accepted.
        self.journal(fleet_batch, end, &accepted);
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.faults {
            plan.maybe_crash_after_journal(fleet_batch);
        }
        let mut routed: Vec<Vec<(u64, Transaction)>> = vec![Vec::new(); self.shards.len()];
        for &(seq, t) in &accepted {
            routed[self.partitioner.shard_of(t.buyer)].push((seq, t));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let sub = std::mem::take(&mut routed[i]);
            if shard.health().is_down() {
                if self.try_auto_failover(i) {
                    // The rebuild replayed the journal through this very
                    // batch (journaled above, before fan-out) — applying
                    // `sub` now would double-count it.
                    continue;
                }
                if !sub.is_empty() {
                    self.telemetry
                        .shed_unhealthy
                        .fetch_add(sub.len() as u64, Ordering::Relaxed);
                }
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if let Some(plan) = &self.faults {
                    // Fires before the sub-batch lands: the shard window
                    // is untouched, the sub-batch is what's lost.
                    plan.maybe_panic_shard(i, fleet_batch);
                }
                shard.apply(&sub, end);
            }));
            match outcome {
                Ok(()) => shard.health().record_progress(shard.apply_worker()),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    shard
                        .telemetry()
                        .worker_panics
                        .fetch_add(1, Ordering::Relaxed);
                    let state = shard.health().record_crash(shard.apply_worker(), &msg);
                    if state == HealthState::Down && self.try_auto_failover(i) {
                        // Rebuilt through this batch, crash and all —
                        // nothing was lost, nothing to shed.
                        continue;
                    }
                    if state != HealthState::Down {
                        // The next routed batch retries this shard —
                        // count it like a supervisor restart.
                        shard
                            .telemetry()
                            .worker_restarts
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.telemetry
                        .shed_unhealthy
                        .fetch_add(sub.len() as u64, Ordering::Relaxed);
                }
            }
        }
        self.window_end.store(end, Ordering::Release);
        if invalid > 0 {
            self.telemetry
                .rejected_invalid
                .fetch_add(invalid, Ordering::Relaxed);
        }
        let applied = Instant::now();
        for s in batch {
            let lag = applied.duration_since(s.at).as_nanos() as u64;
            self.telemetry.ingest_lag.record(lag);
        }
        self.telemetry.batch_size.record(batch.len() as u64);
        self.telemetry.batches.fetch_add(1, Ordering::Relaxed);
        self.batches_applied.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stamps and applies raw transactions as one micro-batch
    /// (synchronous drivers: tests, the determinism suite, the bench).
    pub fn apply_transactions(&self, txs: &[Transaction]) -> u64 {
        let now = Instant::now();
        let batch: Vec<Submitted> = txs.iter().map(|&tx| Submitted { tx, at: now }).collect();
        self.apply(&batch)
    }

    /// Triggers every live shard's local recluster synchronously,
    /// returning one [`ReclusterRun`] per shard — the fleet's analogue
    /// of [`ServiceCore::recluster_now`](crate::service::ServiceCore::recluster_now),
    /// sharing its name and per-run shape. A down shard contributes a
    /// zero-wall, zero-frontier `Full` placeholder. Shards run
    /// sequentially on this thread — each wall is measured in
    /// isolation, so a parallel deployment's round cost is modeled as
    /// `max` of the returned walls (the scaling bench's accounting).
    pub fn recluster_now(&self) -> Vec<ReclusterRun> {
        self.shards
            .iter()
            .map(|s| {
                if s.health().is_down() {
                    ReclusterRun {
                        mode: ReclusterMode::Full,
                        wall_seconds: 0.0,
                        frontier: 0,
                    }
                } else {
                    s.recluster_now()
                }
            })
            .collect()
    }

    /// One full exchange round: fresh local reclusters on every live
    /// shard, then boundary reconciliation, then publication of the
    /// fleet snapshot. Down shards contribute nothing — their keyspace
    /// is missing from the fleet snapshot until they are restored.
    pub fn exchange_now(&self) -> ExchangeOutcome {
        let shard_runs = self.recluster_now();
        let started = Instant::now();
        let mut frames = Vec::new();
        let mut locals: Vec<Arc<VerdictSnapshot>> = Vec::new();
        for s in &self.shards {
            if s.health().is_down() {
                continue;
            }
            frames.push(s.frame());
            locals.push(s.snapshot());
        }
        let end = self.window_end.load(Ordering::Acquire);
        let as_of = self.batches_applied();
        let blacklist = self.blacklist();
        let mut boundary = self.boundary.lock().unwrap_or_else(|e| e.into_inner());
        let r = reconcile_with(
            &frames,
            &locals,
            &self.cfg.shard,
            &blacklist,
            end,
            as_of,
            Some(&mut boundary),
        );
        drop(boundary);
        if let Some(run) = &r.boundary_run {
            self.telemetry.record_recluster_outcome(
                run.mode == ReclusterMode::Incremental,
                run.frontier as u64,
            );
        }
        if let Some((run, resilience)) = &r.lp {
            self.telemetry.merge_gpu(&run.gpu_counters);
            self.telemetry.merge_kernel_profile(&run.kernel_profile);
            self.telemetry
                .engine_retries
                .fetch_add(u64::from(resilience.retries), Ordering::Relaxed);
            self.telemetry
                .engine_degradations
                .fetch_add(u64::from(resilience.degradations), Ordering::Relaxed);
            self.telemetry
                .iterations_salvaged
                .fetch_add(resilience.iterations_salvaged, Ordering::Relaxed);
            if let Some(tier) = resilience.tier {
                self.health.set_engine_tier(tier);
            }
        }
        self.fleet.publish(FleetSnapshot {
            verdicts: Arc::new(r.snapshot),
            boundary_users: r.boundary_users,
        });
        self.telemetry.reclusters.fetch_add(1, Ordering::Relaxed);
        let exchange_wall = started.elapsed();
        self.telemetry
            .recluster_wall
            .record(exchange_wall.as_nanos() as u64);
        self.health.record_progress("exchange");
        ExchangeOutcome {
            shard_runs,
            boundary_run: r.boundary_run,
            exchange_wall: exchange_wall.as_secs_f64(),
            report: r.report,
        }
    }

    /// One verdict lookup, routed: boundary users answer from the
    /// reconciled fleet snapshot (their home shard's local view is
    /// incomplete by definition), interior users from their home
    /// shard's freshest local snapshot, and a down shard's users fall
    /// back to the last fleet snapshot.
    pub fn verdict(&self, user: u32) -> Verdict {
        let fleet = self.fleet.load();
        if fleet.boundary_users.binary_search(&user).is_ok() {
            return fleet.verdicts.verdict(user);
        }
        let shard = &self.shards[self.partitioner.shard_of(user)];
        if shard.health().is_down() {
            fleet.verdicts.verdict(user)
        } else {
            shard.snapshot().verdict(user)
        }
    }

    /// The fleet health document: effective state (see [`fleet_state`]),
    /// the router's own state, and one row per shard.
    pub fn health(&self) -> FleetHealthReport {
        let shards: Vec<ShardHealthReport> = self
            .shards
            .iter()
            .map(|s| ShardHealthReport {
                shard: s.id(),
                state: s.health().state(),
                consecutive_crashes: s.health().consecutive_crashes(),
                worker_panics: s.telemetry().worker_panics.load(Ordering::Relaxed),
                worker_restarts: s.telemetry().worker_restarts.load(Ordering::Relaxed),
                last_panic: s.health().last_panic(),
            })
            .collect();
        let states: Vec<HealthState> = shards.iter().map(|r| r.state).collect();
        let mut state = fleet_state(self.health.state(), &states);
        if self.health.burst_overlay() {
            // A burst flood at the fleet's gate degrades, never downs.
            state = state.max(HealthState::Degraded);
        }
        FleetHealthReport {
            state,
            router: self.health.state(),
            shards,
            snapshot_epoch: self.fleet.epoch(),
        }
    }

    /// One merged telemetry document for the whole fleet: the router's
    /// own block plus every shard's, counters summed and histograms
    /// merged bucket-wise, extended with the effective fleet state and
    /// per-shard failover counts — one JSON document per fleet.
    pub fn fleet_telemetry(&self) -> FleetTelemetry {
        let mut merged = self.telemetry.snapshot();
        let mut shard_failovers = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            merged.merge(&s.telemetry().snapshot());
            shard_failovers.push(s.telemetry().failovers.load(Ordering::Relaxed));
        }
        FleetTelemetry {
            merged,
            fleet_state: self.health().state,
            shard_failovers,
        }
    }

    /// Checkpoints every live shard to its `<base>.shard<i>` path. A
    /// down shard is skipped — its last good image on disk *is* its
    /// recovery point. Successful images advance the journal-truncation
    /// watermark and truncate the journal when configured. Returns the
    /// first error after attempting all.
    pub fn checkpoint_all(&self) -> Result<(), CheckpointError> {
        let mut first_err = None;
        for (i, s) in self.shards.iter().enumerate() {
            let Some(path) = self.cfg.shard_checkpoint_path(i) else {
                return Err(CheckpointError::Invalid("no checkpoint path configured"));
            };
            if s.health().is_down() {
                continue;
            }
            match s.checkpoint(&path) {
                Ok(durable) => self.durable[i].store(durable, Ordering::Relaxed),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        self.truncate_journal();
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Journals one validated fleet batch before fan-out. An append
    /// failure (injected or real) is loud — crash-tracked against the
    /// router's `wal-journal` worker, degrading the fleet — but does
    /// not stop the batch from being scored: availability over
    /// durability, never silently.
    fn journal(&self, fleet_batch: u64, watermark: u32, accepted: &[(u64, Transaction)]) {
        let Some(wal) = &self.wal else { return };
        #[cfg(feature = "fault-injection")]
        let injected = self
            .faults
            .as_ref()
            .is_some_and(|plan| plan.wal_append_fail_due(fleet_batch));
        #[cfg(not(feature = "fault-injection"))]
        let injected = false;
        let result = if injected {
            Err(WalError::Io(std::io::Error::other(
                "fault-injection: wal-append-fail",
            )))
        } else {
            wal.lock()
                .unwrap_or_else(|e| e.into_inner())
                .append(fleet_batch, watermark, accepted)
        };
        match result {
            Ok(()) => {
                self.telemetry
                    .wal_appended_batches
                    .fetch_add(1, Ordering::Relaxed);
                self.health.record_progress("wal-journal");
            }
            Err(e) => {
                self.health.record_crash("wal-journal", &e.to_string());
            }
        }
    }

    /// Drops journal segments every shard's durable checkpoint already
    /// covers (no-op when journaling or truncation is off).
    fn truncate_journal(&self) {
        if !self.cfg.wal_truncate_on_checkpoint {
            return;
        }
        let Some(wal) = &self.wal else { return };
        let durable = self
            .durable
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .min()
            .unwrap_or(0);
        if durable == 0 {
            return;
        }
        match wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .truncate_covered(durable)
        {
            Ok(removed) => {
                if removed > 0 {
                    self.telemetry
                        .wal_truncations
                        .fetch_add(removed, Ordering::Relaxed);
                }
            }
            Err(e) => {
                self.health.record_crash("wal-journal", &e.to_string());
            }
        }
    }

    /// Rebuilds shard `i` from its last checkpoint (if readable; from
    /// the journal alone otherwise) plus a replay of every journaled
    /// batch past it, restricted to its keyspace in router sequence
    /// order, then re-admits it ([`HealthMonitor::revive`]) and
    /// publishes a fresh local snapshot. The rebuild happens entirely
    /// off the shard's lock on a scratch window; the installed state is
    /// byte-identical to a shard that never died, because the journal
    /// holds exactly what the router would have fanned out.
    pub fn failover_shard(&self, i: usize) -> Result<FailoverEvent, FailoverError> {
        let Some(wal) = &self.wal else {
            return Err(FailoverError::NoJournal);
        };
        let started = Instant::now();
        let shard = &self.shards[i];
        let mut window = IncrementalWindow::empty(self.cfg.shard.window_days);
        let mut seqs: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        let mut from_checkpoint = false;
        if let Some(path) = self.cfg.shard_checkpoint_path(i) {
            // A missing, corrupt, or mismatched image is not fatal here:
            // the journal-alone path below covers it (and the journal
            // will be missing history only if truncation already deleted
            // it, which the gap check turns into a typed error).
            if let Ok(ckpt) = WindowCheckpoint::read(&path) {
                if ckpt.days == self.cfg.shard.window_days {
                    if let Ok(w) = ckpt.restore_window() {
                        seqs = if ckpt.seqs.is_empty() {
                            (0..w.num_transactions() as u64).collect()
                        } else {
                            ckpt.seqs.iter().copied().collect()
                        };
                        window = w;
                        next = ckpt.batches_applied;
                        from_checkpoint = true;
                    }
                }
            }
        }
        let records = wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records()
            .map_err(FailoverError::Wal)?;
        let mut replayed = 0u64;
        for rec in &records {
            if rec.batch < next {
                continue;
            }
            if rec.batch != next {
                return Err(FailoverError::Wal(WalError::Gap {
                    needed: next,
                    first: rec.batch,
                }));
            }
            let sub: Vec<(u64, Transaction)> = rec
                .txs
                .iter()
                .copied()
                .filter(|&(_, t)| self.partitioner.shard_of(t.buyer) == i)
                .collect();
            let txs: Vec<Transaction> = sub.iter().map(|&(_, t)| t).collect();
            window.apply_batch(&txs);
            window.advance_to(rec.watermark);
            for &(seq, _) in &sub {
                seqs.push_back(seq);
            }
            while seqs.len() > window.num_transactions() {
                seqs.pop_front();
            }
            next = rec.batch + 1;
            replayed += 1;
        }
        shard.rebuild_from(window, seqs, next);
        shard
            .telemetry()
            .wal_replayed_batches
            .fetch_add(replayed, Ordering::Relaxed);
        shard.telemetry().failovers.fetch_add(1, Ordering::Relaxed);
        shard.health().revive();
        shard.recluster_now();
        let event = FailoverEvent {
            shard: i,
            replayed_batches: replayed,
            from_checkpoint,
            wall: started.elapsed(),
            completed_at: Instant::now(),
        };
        self.failover_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
        Ok(event)
    }

    /// Completed failovers, in completion order.
    pub fn failover_events(&self) -> Vec<FailoverEvent> {
        self.failover_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The fan-out's failover trigger: false without a journal (the
    /// shard stays shed, the pre-journal contract) or after a permanent
    /// replay gap; otherwise attempts the rebuild, crash-tracking a
    /// failed attempt so the next batch retries it.
    fn try_auto_failover(&self, i: usize) -> bool {
        if self.wal.is_none() || self.failover_blocked[i].load(Ordering::Relaxed) {
            return false;
        }
        match self.failover_shard(i) {
            Ok(_) => true,
            Err(e) => {
                if matches!(e, FailoverError::Wal(WalError::Gap { .. })) {
                    // The journal will never grow the missing history
                    // back; retrying per batch would fail identically.
                    self.failover_blocked[i].store(true, Ordering::Relaxed);
                }
                self.shards[i]
                    .health()
                    .record_crash("failover", &e.to_string());
                false
            }
        }
    }

    /// Replays journaled batches that never reached the live shards —
    /// the crash-restart catch-up ([`Self::restore`] calls this after
    /// loading checkpoints) and the healer of the write-ahead crash
    /// window (the router worker calls it on every (re)start). Each live
    /// shard independently replays the records past its own progress
    /// cursor, so a batch lands exactly once however the crash
    /// interleaved with fan-out. Fleet-level cursors (batch count,
    /// watermark, next sequence stamp) advance past everything
    /// journaled. Returns the number of per-shard record applications.
    pub fn sync_from_wal(&self) -> Result<u64, WalError> {
        let Some(wal) = &self.wal else { return Ok(0) };
        let tail = wal.lock().unwrap_or_else(|e| e.into_inner()).tail_batch();
        let Some(tail) = tail else { return Ok(0) };
        let caught_up = |count: u64| count > tail;
        if caught_up(self.batches_applied())
            && self
                .shards
                .iter()
                .filter(|s| !s.health().is_down())
                .all(|s| caught_up(s.batches_applied()))
        {
            return Ok(0);
        }
        let records = wal.lock().unwrap_or_else(|e| e.into_inner()).records()?;
        let mut replayed = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.health().is_down() {
                continue;
            }
            let mut next = shard.batches_applied();
            for rec in &records {
                if rec.batch < next {
                    continue;
                }
                if rec.batch != next {
                    return Err(WalError::Gap {
                        needed: next,
                        first: rec.batch,
                    });
                }
                let sub: Vec<(u64, Transaction)> = rec
                    .txs
                    .iter()
                    .copied()
                    .filter(|&(_, t)| self.partitioner.shard_of(t.buyer) == i)
                    .collect();
                shard.apply(&sub, rec.watermark);
                shard
                    .telemetry()
                    .wal_replayed_batches
                    .fetch_add(1, Ordering::Relaxed);
                next = rec.batch + 1;
                replayed += 1;
            }
        }
        if let Some(last) = records.last() {
            self.batches_applied
                .fetch_max(last.batch + 1, Ordering::Relaxed);
            self.window_end.fetch_max(last.watermark, Ordering::AcqRel);
            if let Some(max_seq) = records
                .iter()
                .flat_map(|r| r.txs.iter().map(|&(seq, _)| seq))
                .max()
            {
                self.next_seq.fetch_max(max_seq + 1, Ordering::Relaxed);
            }
        }
        Ok(replayed)
    }

    fn restart_policy(&self) -> RestartPolicy {
        RestartPolicy {
            backoff_base: self.cfg.shard.restart_backoff,
            backoff_cap: self.cfg.shard.restart_backoff_cap,
        }
    }
}

/// A cloneable fleet-wide scoring handle (the sharded analogue of
/// [`QueryHandle`](crate::service::QueryHandle)).
#[derive(Clone)]
pub struct FleetHandle {
    core: Arc<FleetCore>,
}

impl FleetHandle {
    /// The current fleet health document.
    pub fn health(&self) -> FleetHealthReport {
        self.core.health()
    }
}

impl FraudScorer for FleetHandle {
    fn score(&self, user: u32) -> Verdict {
        let t0 = Instant::now();
        let v = self.core.verdict(user);
        self.core
            .telemetry
            .query_latency
            .record(t0.elapsed().as_nanos() as u64);
        self.core.telemetry.queries.fetch_add(1, Ordering::Relaxed);
        v
    }

    fn snapshot(&self) -> Arc<VerdictSnapshot> {
        Arc::clone(&self.core.fleet.load().verdicts)
    }
}

/// How [`ShardRouter::shutdown`] went.
pub struct FleetShutdownReport {
    /// The fleet core after the final exchange round.
    pub core: Arc<FleetCore>,
    /// How the router worker ended.
    pub router: WorkerOutcome,
    /// How each shard's recluster worker ended, by shard id.
    pub shards: Vec<WorkerOutcome>,
    /// How the exchange worker ended.
    pub exchange: WorkerOutcome,
    /// Fleet state at shutdown.
    pub state: HealthState,
}

impl FleetShutdownReport {
    /// Whether every worker exited cleanly without ever panicking.
    pub fn clean(&self) -> bool {
        let clean = WorkerOutcome::Clean { panics: 0 };
        self.router == clean && self.exchange == clean && self.shards.iter().all(|o| *o == clean)
    }
}

/// The threaded sharded service (see module docs).
pub struct ShardRouter {
    core: Arc<FleetCore>,
    gate: IngestGate,
    recluster_txs: Vec<Sender<()>>,
    exchange_tx: Sender<()>,
    router_worker: Option<JoinHandle<()>>,
    router_status: Arc<WorkerStatus>,
    shard_workers: Vec<Option<JoinHandle<()>>>,
    shard_statuses: Vec<Arc<WorkerStatus>>,
    exchange_worker: Option<JoinHandle<()>>,
    exchange_status: Arc<WorkerStatus>,
}

impl ShardRouter {
    /// Starts the fleet: one supervised router worker, one supervised
    /// recluster worker per shard, one supervised exchange worker.
    pub fn start(cfg: FleetConfig, partitioner: Partitioner, blacklist: Vec<u32>) -> Self {
        Self::start_on(Arc::new(FleetCore::new(cfg, partitioner, blacklist)))
    }

    /// Starts the fleet with a fault plan attached (feature
    /// `fault-injection`).
    #[cfg(feature = "fault-injection")]
    pub fn start_with_faults(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
        plan: Arc<FaultPlan>,
    ) -> Self {
        Self::start_on(Arc::new(
            FleetCore::new(cfg, partitioner, blacklist).with_faults(plan),
        ))
    }

    /// Resumes a fleet from its per-shard checkpoints plus journal
    /// replay (see [`FleetCore::restore`]).
    pub fn recover(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
    ) -> Result<Self, FleetRecoveryError> {
        Ok(Self::start_on(Arc::new(FleetCore::restore(
            cfg,
            partitioner,
            blacklist,
        )?)))
    }

    fn start_on(core: Arc<FleetCore>) -> Self {
        let cfg = core.cfg.clone();
        let burst = BurstState::from_config(
            &cfg.shard,
            Arc::clone(&core.health),
            Arc::clone(&core.telemetry),
        );
        let (gate, batch_rx) = ingest_pair(
            cfg.shard.queue_capacity,
            cfg.shard.shed_policy,
            cfg.shard.window_days,
            Arc::clone(&core.window_end),
            Arc::clone(&core.health),
            Arc::clone(&core.telemetry),
            burst.clone(),
        );

        // One capacity-1 poke channel per shard recluster worker plus
        // one for the exchange worker; requests coalesce (counted) like
        // the single service's.
        let mut recluster_txs = Vec::with_capacity(core.shards.len());
        let mut shard_workers = Vec::with_capacity(core.shards.len());
        let mut shard_statuses = Vec::with_capacity(core.shards.len());
        for shard in &core.shards {
            let (tx, rx): (Sender<()>, Receiver<()>) = bounded(1);
            recluster_txs.push(tx);
            let name: &'static str =
                Box::leak(format!("shard{}-recluster", shard.id()).into_boxed_str());
            let policy = core.restart_policy();
            let shard = Arc::clone(shard);
            let (worker, status) = supervise(
                name,
                Arc::clone(shard.health()),
                Arc::clone(shard.telemetry()),
                policy,
                move || shard_recluster_loop(&shard, &rx, name),
            );
            shard_workers.push(Some(worker));
            shard_statuses.push(status);
        }

        let (exchange_tx, exchange_rx): (Sender<()>, Receiver<()>) = bounded(1);
        let (exchange_worker, exchange_status) = {
            let core = Arc::clone(&core);
            let policy = core.restart_policy();
            let health = Arc::clone(&core.health);
            let telemetry = Arc::clone(&core.telemetry);
            supervise("exchange", health, telemetry, policy, move || {
                exchange_loop(&core, &exchange_rx)
            })
        };

        let (router_worker, router_status) = {
            let core = Arc::clone(&core);
            let policy = core.restart_policy();
            let health = Arc::clone(&core.health);
            let telemetry = Arc::clone(&core.telemetry);
            let recluster_txs = recluster_txs.clone();
            let exchange_tx = exchange_tx.clone();
            supervise("router", health, telemetry, policy, move || {
                let batcher = Batcher::new(
                    batch_rx.clone(),
                    cfg.shard.max_batch,
                    cfg.shard.batch_budget,
                )
                .with_burst(burst.clone());
                router_loop(&core, &batcher, &recluster_txs, &exchange_tx)
            })
        };

        Self {
            core,
            gate,
            recluster_txs,
            exchange_tx,
            router_worker: Some(router_worker),
            router_status,
            shard_workers,
            shard_statuses,
            exchange_worker: Some(exchange_worker),
            exchange_status,
        }
    }

    /// A producer-side submission gate (cloneable).
    pub fn gate(&self) -> IngestGate {
        self.gate.clone()
    }

    /// Submits one transaction through the fleet's gate.
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        self.gate.submit(tx)
    }

    /// A fleet-wide query handle (cloneable).
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// The synchronous fleet core.
    pub fn core(&self) -> &Arc<FleetCore> {
        &self.core
    }

    /// The current fleet health document.
    pub fn health(&self) -> FleetHealthReport {
        self.core.health()
    }

    /// Triggers every live shard's local recluster synchronously,
    /// returning one [`ReclusterRun`] per shard — the threaded shell's
    /// spelling of [`FleetCore::recluster_now`], sharing the fleet-wide
    /// trigger name and return shape. Each shard's warm-state lock
    /// serializes this with its recluster worker, so a forced run never
    /// races a scheduled one.
    pub fn recluster_now(&self) -> Vec<ReclusterRun> {
        self.core.recluster_now()
    }

    /// Asks the exchange worker for a reconciliation round now
    /// (coalesces if one is pending).
    pub fn force_exchange(&self) {
        request(&self.core, &self.exchange_tx);
    }

    /// Stops the fleet: closes the ingest queue, drains the router,
    /// joins every worker, runs one final exchange round so the last
    /// batches are scored fleet-wide, and writes final checkpoints when
    /// configured. Worker panics are reported, not re-thrown.
    pub fn shutdown(mut self) -> FleetShutdownReport {
        drop(self.gate);
        if let Some(h) = self.router_worker.take() {
            h.join().expect("supervisor threads do not panic");
        }
        drop(std::mem::take(&mut self.recluster_txs));
        for w in &mut self.shard_workers {
            if let Some(h) = w.take() {
                h.join().expect("supervisor threads do not panic");
            }
        }
        drop(self.exchange_tx);
        if let Some(h) = self.exchange_worker.take() {
            h.join().expect("supervisor threads do not panic");
        }
        self.core.exchange_now();
        if self.core.cfg.shard.checkpoint_path.is_some() {
            let _ = self.core.checkpoint_all();
        }
        FleetShutdownReport {
            state: self.core.health().state,
            router: self.router_status.outcome(),
            shards: self.shard_statuses.iter().map(|s| s.outcome()).collect(),
            exchange: self.exchange_status.outcome(),
            core: Arc::clone(&self.core),
        }
    }
}

fn request(core: &FleetCore, tx: &Sender<()>) {
    match tx.try_send(()) {
        Ok(()) | Err(TrySendError::Disconnected(())) => {}
        Err(TrySendError::Full(())) => {
            core.telemetry
                .reclusters_coalesced
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn router_loop(
    core: &FleetCore,
    batcher: &Batcher,
    recluster_txs: &[Sender<()>],
    exchange_tx: &Sender<()>,
) -> WorkerExit {
    // Heal the write-ahead crash window first: a batch journaled by a
    // previous incarnation of this worker but never fanned out (the
    // crash hit between append and fan-out) replays exactly once before
    // any new traffic is drained.
    if let Err(e) = core.sync_from_wal() {
        core.health.record_crash("wal-journal", &e.to_string());
    }
    loop {
        match batcher.next_batch() {
            Err(Closed) => return WorkerExit::Finished,
            Ok(batch) => {
                if batch.is_empty() {
                    continue; // idle tick
                }
                let applied = core.apply(&batch);
                core.health.record_progress("router");
                if applied.is_multiple_of(core.cfg.shard.recluster_every_batches) {
                    for (i, tx) in recluster_txs.iter().enumerate() {
                        if !core.shards[i].health().is_down() {
                            request(core, tx);
                        }
                    }
                }
                if applied.is_multiple_of(core.cfg.exchange_every_batches) {
                    request(core, exchange_tx);
                }
                if core.cfg.shard.checkpoint_path.is_some()
                    && applied.is_multiple_of(core.cfg.shard.checkpoint_every_batches)
                {
                    // Failures are counted per shard; the fleet keeps
                    // serving and previous images stay intact.
                    let _ = core.checkpoint_all();
                }
            }
        }
    }
}

fn shard_recluster_loop(shard: &ShardCore, rx: &Receiver<()>, name: &'static str) -> WorkerExit {
    while rx.recv().is_ok() {
        if shard.health().is_down() {
            // Skip, don't exit: a failover may revive this shard, and
            // its recluster worker must still be here when it does.
            continue;
        }
        shard.recluster_now();
        shard.health().record_progress(name);
    }
    WorkerExit::Finished
}

fn exchange_loop(core: &FleetCore, rx: &Receiver<()>) -> WorkerExit {
    while rx.recv().is_ok() {
        if core.health.is_down() {
            return WorkerExit::Finished;
        }
        core.exchange_now();
    }
    WorkerExit::Finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_fraud::{RegionalStream, RegionalTxConfig};

    fn stream() -> RegionalStream {
        RegionalStream::generate(&RegionalTxConfig {
            regions: 4,
            users_per_region: 250,
            items_per_region: 100,
            days: 10,
            tx_per_day: 1_000,
            cross_rings: 4,
            ring_size: 10,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.3,
            ..Default::default()
        })
    }

    fn fleet_cfg(shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            exchange_every_batches: 8,
            ..FleetConfig::default()
        }
        .with_window_days(8)
    }

    fn partitioner(s: &RegionalStream, shards: usize) -> Partitioner {
        Partitioner::with_communities(shards, 7, s.community_map())
    }

    #[test]
    fn fleet_core_routes_reclusters_and_answers() {
        let s = stream();
        let cfg = fleet_cfg(2);
        let core = FleetCore::new(cfg, partitioner(&s, 2), s.blacklist.clone());
        for day in 0..s.config.days {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            core.apply_transactions(&txs);
        }
        let outcome = core.exchange_now();
        assert!(outcome.report.spanning_components > 0);
        assert_eq!(outcome.shard_runs.len(), 2);
        assert!(
            outcome.boundary_run.is_some(),
            "spanning components need a boundary recluster"
        );
        let snap = core.fleet_snapshot();
        assert_eq!(snap.verdicts.window_end, s.config.days);
        assert!(snap.verdicts.num_flagged() > 0, "rings should be flagged");
        // Every flagged user answers Flagged through the routed path.
        for &(u, _, _) in &snap.verdicts.flagged {
            assert!(matches!(core.verdict(u), Verdict::Flagged { .. }));
        }
        let h = core.health();
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.shards.len(), 2);
        // The merged telemetry sees the routed batches and both shards'
        // reclusters.
        let t = core.fleet_telemetry();
        assert!(t.counter("batches") > 0);
        assert!(t.counter("reclusters") >= 3, "2 shards + exchange");
    }

    #[test]
    fn threaded_router_end_to_end() {
        let s = stream();
        let router = ShardRouter::start(fleet_cfg(2), partitioner(&s, 2), s.blacklist.clone());
        let handle = router.handle();
        for t in s.window(0, s.config.days) {
            router.submit(*t).expect("fleet accepts while running");
        }
        let report = router.shutdown();
        assert!(report.clean(), "no faults injected: clean outcomes");
        assert_eq!(report.state, HealthState::Healthy);
        let core = report.core;
        let snap = core.fleet_snapshot();
        assert_eq!(snap.verdicts.window_end, s.config.days);
        assert!(snap.verdicts.num_flagged() > 0);
        let flagged_user = snap.verdicts.flagged[0].0;
        assert!(matches!(
            handle.score(flagged_user),
            Verdict::Flagged { .. }
        ));
        let t = core.fleet_telemetry();
        assert_eq!(t.merged.worker_panics, 0);
        assert_eq!(t.fleet_state, HealthState::Healthy);
        assert_eq!(t.shard_failovers, vec![0, 0]);
        assert!(t.counter("batches") > 0);
    }

    #[test]
    fn invalid_traffic_is_shed_by_the_router() {
        let s = stream();
        let core = FleetCore::new(fleet_cfg(2), partitioner(&s, 2), s.blacklist.clone());
        let day0: Vec<Transaction> = s.window(0, 1).copied().collect();
        core.apply_transactions(&day0);
        let nan = Transaction {
            buyer: 1,
            item: 2,
            day: 0,
            amount: f32::NAN,
        };
        core.apply_transactions(&[nan]);
        assert_eq!(core.telemetry().rejected_invalid.load(Ordering::Relaxed), 1);
        // Shards only ever saw validated traffic.
        for shard in core.shards() {
            assert_eq!(
                shard.telemetry().rejected_invalid.load(Ordering::Relaxed),
                0
            );
        }
    }
}
