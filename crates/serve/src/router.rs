//! The sharded fleet: a community-aware router fanning micro-batches to
//! N shard cores, with periodic cross-shard label exchange.
//!
//! Two layers, mirroring [`service`](crate::service):
//!
//! * [`FleetCore`] — the synchronous heart: validate and stamp a
//!   micro-batch, fan it out by
//!   [`Partitioner`](crate::partition::Partitioner), recluster shards,
//!   run an exchange round, look up a verdict, checkpoint/restore the
//!   whole fleet. No threads; the determinism suite and the scaling
//!   bench drive it step by step.
//! * [`ShardRouter`] — the threaded shell: one supervised **router**
//!   worker drains the ingest queue and fans batches out, one supervised
//!   **recluster** worker per shard refreshes that shard's local
//!   verdicts, and one supervised **exchange** worker reconciles
//!   boundary components into the fleet snapshot.
//!
//! **Routing and validation.** The router is the fleet's single
//! authority on validity and ordering: it filters non-finite amounts and
//! day regressions against the running global watermark, stamps each
//! accepted transaction with a fleet-wide monotone sequence number, and
//! hands every shard its sub-batch *plus* the new watermark — so all
//! shard windows expire in lockstep even on batches where they receive
//! nothing.
//!
//! **Partial failure.** A shard whose apply panics is crash-tracked by
//! its own [`HealthMonitor`]; until its streak reaches `Down` the next
//! routed batch simply retries it, and after that its keyspace is shed
//! (counted in `shed_unhealthy`) while every other shard keeps serving —
//! the fleet reports [`Degraded`](HealthState::Degraded), not `Down`
//! (see [`fleet_state`]). Queries for a dead shard's users fall back to
//! the last reconciled fleet snapshot.
//!
//! **Durability.** Each shard checkpoints its own window (with sequence
//! stamps) to `<base>.shard<i>`; [`FleetCore::restore`] brings the whole
//! fleet back and [`FleetCore::migrate_from_single`] splits a
//! single-core checkpoint across a fleet — both ending with an exchange
//! round so the first query already sees reconciled verdicts.

use crate::config::FleetConfig;
use crate::exchange::{reconcile, ExchangeReport, FleetSnapshot};
#[cfg(feature = "fault-injection")]
use crate::faults::FaultPlan;
use crate::health::{
    fleet_state, FleetHealthReport, HealthMonitor, HealthState, HealthThresholds, ShardHealthReport,
};
use crate::ingest::{ingest_pair, Batcher, Closed, IngestGate, Submitted};
use crate::partition::Partitioner;
use crate::query::{FraudScorer, Verdict, VerdictSnapshot};
use crate::shard::ShardCore;
use crate::supervisor::{
    panic_message, supervise, RestartPolicy, WorkerExit, WorkerOutcome, WorkerStatus,
};
use crate::swap::EpochCell;
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use glp_fraud::checkpoint::{CheckpointError, WindowCheckpoint};
use glp_fraud::Transaction;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// What one [`FleetCore::exchange_now`] round cost and found.
#[derive(Clone, Debug)]
pub struct ExchangeOutcome {
    /// Wall seconds of each shard's pre-exchange local recluster (0 for
    /// a down shard). On real hardware the shards recluster in
    /// parallel, so the modeled parallel cost of the round is
    /// `max(shard_walls)` — the accounting the scaling bench uses.
    pub shard_walls: Vec<f64>,
    /// Wall seconds of the boundary reconciliation itself (union-find,
    /// merge, boundary LP, assembly).
    pub exchange_wall: f64,
    /// What the round found.
    pub report: ExchangeReport,
}

/// The synchronous sharded fleet (see module docs).
pub struct FleetCore {
    cfg: FleetConfig,
    partitioner: Partitioner,
    blacklist: Vec<u32>,
    shards: Vec<Arc<ShardCore>>,
    fleet: EpochCell<FleetSnapshot>,
    /// Router-level telemetry (ingest, routing, exchange); shard cores
    /// have their own blocks, merged by [`Self::fleet_telemetry`].
    telemetry: Arc<Telemetry>,
    /// Router-level health; per-shard monitors live in the shard cores.
    health: Arc<HealthMonitor>,
    batches_applied: AtomicU64,
    /// Global day watermark, mirrored for the ingest gate.
    window_end: Arc<AtomicU32>,
    /// Next fleet-wide sequence stamp.
    next_seq: AtomicU64,
    #[cfg(feature = "fault-injection")]
    faults: Option<Arc<FaultPlan>>,
}

impl FleetCore {
    /// A fleet of `cfg.shards` empty shard cores.
    pub fn new(cfg: FleetConfig, partitioner: Partitioner, blacklist: Vec<u32>) -> Self {
        assert_eq!(
            partitioner.shards(),
            cfg.shards,
            "partitioner and fleet disagree on shard count"
        );
        let shards = (0..cfg.shards)
            .map(|i| Arc::new(ShardCore::new(i, cfg.shard.clone(), blacklist.clone())))
            .collect();
        Self::assemble(cfg, partitioner, blacklist, shards)
    }

    /// Restores a whole fleet from its per-shard checkpoints
    /// (`<base>.shard<i>` for every `i`), then runs one exchange round
    /// so queries see reconciled verdicts before any new traffic.
    pub fn restore(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
    ) -> Result<Self, CheckpointError> {
        assert_eq!(partitioner.shards(), cfg.shards);
        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let path = cfg
                .shard_checkpoint_path(i)
                .ok_or(CheckpointError::Invalid("no checkpoint path configured"))?;
            let ckpt = WindowCheckpoint::read(&path)?;
            shards.push(Arc::new(ShardCore::restore(
                i,
                cfg.shard.clone(),
                blacklist.clone(),
                &ckpt,
            )?));
        }
        let core = Self::assemble(cfg, partitioner, blacklist, shards);
        core.exchange_now();
        Ok(core)
    }

    /// Splits one single-core checkpoint (written by
    /// [`ServiceCore`](crate::service::ServiceCore)) across a fleet: the
    /// window partitions by routed buyer, sequence stamps fall back to
    /// log positions when the image predates stamps (a single log is
    /// already in arrival order), and an exchange round reconciles
    /// before anything is served — the scale-out migration path.
    pub fn migrate_from_single(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
        ckpt: &WindowCheckpoint,
    ) -> Result<Self, CheckpointError> {
        assert_eq!(partitioner.shards(), cfg.shards);
        if ckpt.days != cfg.shard.window_days {
            return Err(CheckpointError::Invalid(
                "checkpoint window length disagrees with the configuration",
            ));
        }
        let window = ckpt.restore_window()?;
        let seqs: Vec<u64> = if ckpt.seqs.is_empty() {
            (0..window.num_transactions() as u64).collect()
        } else {
            ckpt.seqs.clone()
        };
        let parts = window.partition_by(cfg.shards, |u| partitioner.shard_of(u));
        let mut seqs_per: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.shards];
        for (pos, t) in window.transactions().enumerate() {
            seqs_per[partitioner.shard_of(t.buyer)].push_back(seqs[pos]);
        }
        let shards: Vec<Arc<ShardCore>> = parts
            .into_iter()
            .zip(seqs_per)
            .enumerate()
            .map(|(i, (w, sq))| {
                // Monotonic counters describe the single core's whole
                // history; shard 0 inherits them so the fleet total is
                // continuous rather than N-fold.
                let counters: &[u64] = if i == 0 { &ckpt.counters } else { &[] };
                Arc::new(ShardCore::from_state(
                    i,
                    cfg.shard.clone(),
                    blacklist.clone(),
                    w,
                    sq,
                    ckpt.batches_applied,
                    ckpt.snapshot_epoch,
                    counters,
                ))
            })
            .collect();
        let core = Self::assemble(cfg, partitioner, blacklist, shards);
        core.exchange_now();
        Ok(core)
    }

    fn assemble(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
        shards: Vec<Arc<ShardCore>>,
    ) -> Self {
        let window_end = shards.iter().map(|s| s.window_end()).max().unwrap_or(0);
        let batches = shards
            .iter()
            .map(|s| s.batches_applied())
            .max()
            .unwrap_or(0);
        let next_seq = shards
            .iter()
            .filter_map(|s| s.last_seq())
            .max()
            .map_or(0, |m| m + 1);
        let health = Arc::new(HealthMonitor::new(HealthThresholds {
            shedding_after: cfg.shard.shedding_after_crashes,
            down_after: cfg.shard.down_after_crashes,
        }));
        Self {
            cfg,
            partitioner,
            blacklist,
            shards,
            fleet: EpochCell::new(FleetSnapshot::default()),
            telemetry: Arc::new(Telemetry::new()),
            health,
            batches_applied: AtomicU64::new(batches),
            window_end: Arc::new(AtomicU32::new(window_end)),
            next_seq: AtomicU64::new(next_seq),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Attaches a fault plan (feature `fault-injection`): the routed
    /// apply consults [`FaultPlan::maybe_panic_shard`] per shard per
    /// fleet batch.
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The shard cores, indexed by shard id.
    pub fn shards(&self) -> &[Arc<ShardCore>] {
        &self.shards
    }

    /// The router's partitioner.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The router's own telemetry block (see [`Self::fleet_telemetry`]
    /// for the merged fleet view).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Fleet micro-batches applied so far.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied.load(Ordering::Relaxed)
    }

    /// The global day watermark.
    pub fn window_end(&self) -> u32 {
        self.window_end.load(Ordering::Acquire)
    }

    /// The last reconciled fleet snapshot (empty before the first
    /// exchange round).
    pub fn fleet_snapshot(&self) -> Arc<FleetSnapshot> {
        self.fleet.load()
    }

    /// Validates, stamps, routes, and fans out one micro-batch. The
    /// router is authoritative: shards receive only pre-validated
    /// transactions in global arrival order, plus the new watermark.
    /// A sub-batch routed to a down shard is shed (counted); a shard
    /// that panics mid-apply loses that sub-batch the same way, with the
    /// crash recorded on *its* monitor. Returns the fleet batch count.
    pub fn apply(&self, batch: &[Submitted]) -> u64 {
        if batch.is_empty() {
            return self.batches_applied();
        }
        let fleet_batch = self.batches_applied();
        let mut end = self.window_end.load(Ordering::Acquire);
        let mut invalid = 0u64;
        let mut routed: Vec<Vec<(u64, Transaction)>> = vec![Vec::new(); self.shards.len()];
        for s in batch {
            let t = s.tx;
            // Same running-end filter as the single core's apply: days
            // must be monotone per accepted transaction, which is also
            // what keeps every shard sub-log day-sorted.
            if t.amount.is_finite() && t.day + 1 >= end {
                end = end.max(t.day + 1);
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                routed[self.partitioner.shard_of(t.buyer)].push((seq, t));
            } else {
                invalid += 1;
            }
        }
        for (i, shard) in self.shards.iter().enumerate() {
            let sub = std::mem::take(&mut routed[i]);
            if shard.health().is_down() {
                if !sub.is_empty() {
                    self.telemetry
                        .shed_unhealthy
                        .fetch_add(sub.len() as u64, Ordering::Relaxed);
                }
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if let Some(plan) = &self.faults {
                    // Fires before the sub-batch lands: the shard window
                    // is untouched, the sub-batch is what's lost.
                    plan.maybe_panic_shard(i, fleet_batch);
                }
                shard.apply(&sub, end);
            }));
            match outcome {
                Ok(()) => shard.health().record_progress(shard.apply_worker()),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    shard
                        .telemetry()
                        .worker_panics
                        .fetch_add(1, Ordering::Relaxed);
                    let state = shard.health().record_crash(shard.apply_worker(), &msg);
                    if state != HealthState::Down {
                        // The next routed batch retries this shard —
                        // count it like a supervisor restart.
                        shard
                            .telemetry()
                            .worker_restarts
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.telemetry
                        .shed_unhealthy
                        .fetch_add(sub.len() as u64, Ordering::Relaxed);
                }
            }
        }
        let _ = fleet_batch;
        self.window_end.store(end, Ordering::Release);
        if invalid > 0 {
            self.telemetry
                .rejected_invalid
                .fetch_add(invalid, Ordering::Relaxed);
        }
        let applied = Instant::now();
        for s in batch {
            let lag = applied.duration_since(s.at).as_nanos() as u64;
            self.telemetry.ingest_lag.record(lag);
        }
        self.telemetry.batch_size.record(batch.len() as u64);
        self.telemetry.batches.fetch_add(1, Ordering::Relaxed);
        self.batches_applied.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stamps and applies raw transactions as one micro-batch
    /// (synchronous drivers: tests, the determinism suite, the bench).
    pub fn apply_transactions(&self, txs: &[Transaction]) -> u64 {
        let now = Instant::now();
        let batch: Vec<Submitted> = txs.iter().map(|&tx| Submitted { tx, at: now }).collect();
        self.apply(&batch)
    }

    /// Runs every live shard's local recluster, returning each wall
    /// time in seconds (0 for a down shard). Shards run sequentially on
    /// this thread — each wall is measured in isolation, so a parallel
    /// deployment's round cost is modeled as `max` of the returned
    /// walls (the scaling bench's accounting).
    pub fn recluster_shards_now(&self) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| {
                if s.health().is_down() {
                    0.0
                } else {
                    s.recluster_now()
                }
            })
            .collect()
    }

    /// One full exchange round: fresh local reclusters on every live
    /// shard, then boundary reconciliation, then publication of the
    /// fleet snapshot. Down shards contribute nothing — their keyspace
    /// is missing from the fleet snapshot until they are restored.
    pub fn exchange_now(&self) -> ExchangeOutcome {
        let shard_walls = self.recluster_shards_now();
        let started = Instant::now();
        let mut frames = Vec::new();
        let mut locals: Vec<Arc<VerdictSnapshot>> = Vec::new();
        for s in &self.shards {
            if s.health().is_down() {
                continue;
            }
            frames.push(s.frame());
            locals.push(s.snapshot());
        }
        let end = self.window_end.load(Ordering::Acquire);
        let as_of = self.batches_applied();
        let r = reconcile(
            &frames,
            &locals,
            &self.cfg.shard,
            &self.blacklist,
            end,
            as_of,
        );
        if let Some((run, resilience)) = &r.lp {
            self.telemetry.merge_gpu(&run.gpu_counters);
            self.telemetry.merge_kernel_profile(&run.kernel_profile);
            self.telemetry
                .engine_retries
                .fetch_add(u64::from(resilience.retries), Ordering::Relaxed);
            self.telemetry
                .engine_degradations
                .fetch_add(u64::from(resilience.degradations), Ordering::Relaxed);
            self.telemetry
                .iterations_salvaged
                .fetch_add(resilience.iterations_salvaged, Ordering::Relaxed);
            if let Some(tier) = resilience.tier {
                self.health.set_engine_tier(tier);
            }
        }
        self.fleet.publish(FleetSnapshot {
            verdicts: Arc::new(r.snapshot),
            boundary_users: r.boundary_users,
        });
        self.telemetry.reclusters.fetch_add(1, Ordering::Relaxed);
        let exchange_wall = started.elapsed();
        self.telemetry
            .recluster_wall
            .record(exchange_wall.as_nanos() as u64);
        self.health.record_progress("exchange");
        ExchangeOutcome {
            shard_walls,
            exchange_wall: exchange_wall.as_secs_f64(),
            report: r.report,
        }
    }

    /// One verdict lookup, routed: boundary users answer from the
    /// reconciled fleet snapshot (their home shard's local view is
    /// incomplete by definition), interior users from their home
    /// shard's freshest local snapshot, and a down shard's users fall
    /// back to the last fleet snapshot.
    pub fn verdict(&self, user: u32) -> Verdict {
        let fleet = self.fleet.load();
        if fleet.boundary_users.binary_search(&user).is_ok() {
            return fleet.verdicts.verdict(user);
        }
        let shard = &self.shards[self.partitioner.shard_of(user)];
        if shard.health().is_down() {
            fleet.verdicts.verdict(user)
        } else {
            shard.snapshot().verdict(user)
        }
    }

    /// The fleet health document: effective state (see [`fleet_state`]),
    /// the router's own state, and one row per shard.
    pub fn health(&self) -> FleetHealthReport {
        let shards: Vec<ShardHealthReport> = self
            .shards
            .iter()
            .map(|s| ShardHealthReport {
                shard: s.id(),
                state: s.health().state(),
                consecutive_crashes: s.health().consecutive_crashes(),
                worker_panics: s.telemetry().worker_panics.load(Ordering::Relaxed),
                worker_restarts: s.telemetry().worker_restarts.load(Ordering::Relaxed),
                last_panic: s.health().last_panic(),
            })
            .collect();
        let states: Vec<HealthState> = shards.iter().map(|r| r.state).collect();
        FleetHealthReport {
            state: fleet_state(self.health.state(), &states),
            router: self.health.state(),
            shards,
            snapshot_epoch: self.fleet.epoch(),
        }
    }

    /// One merged telemetry block for the whole fleet: the router's own
    /// plus every shard's, counters summed and histograms merged
    /// bucket-wise — one JSON document per fleet.
    pub fn fleet_telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.telemetry.snapshot();
        for s in &self.shards {
            snap.merge(&s.telemetry().snapshot());
        }
        snap
    }

    /// Checkpoints every live shard to its `<base>.shard<i>` path. A
    /// down shard is skipped — its last good image on disk *is* its
    /// recovery point. Returns the first error after attempting all.
    pub fn checkpoint_all(&self) -> Result<(), CheckpointError> {
        let mut first_err = None;
        for (i, s) in self.shards.iter().enumerate() {
            let Some(path) = self.cfg.shard_checkpoint_path(i) else {
                return Err(CheckpointError::Invalid("no checkpoint path configured"));
            };
            if s.health().is_down() {
                continue;
            }
            if let Err(e) = s.checkpoint(&path) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn restart_policy(&self) -> RestartPolicy {
        RestartPolicy {
            backoff_base: self.cfg.shard.restart_backoff,
            backoff_cap: self.cfg.shard.restart_backoff_cap,
        }
    }
}

/// A cloneable fleet-wide scoring handle (the sharded analogue of
/// [`QueryHandle`](crate::service::QueryHandle)).
#[derive(Clone)]
pub struct FleetHandle {
    core: Arc<FleetCore>,
}

impl FleetHandle {
    /// The current fleet health document.
    pub fn health(&self) -> FleetHealthReport {
        self.core.health()
    }
}

impl FraudScorer for FleetHandle {
    fn score(&self, user: u32) -> Verdict {
        let t0 = Instant::now();
        let v = self.core.verdict(user);
        self.core
            .telemetry
            .query_latency
            .record(t0.elapsed().as_nanos() as u64);
        self.core.telemetry.queries.fetch_add(1, Ordering::Relaxed);
        v
    }

    fn snapshot(&self) -> Arc<VerdictSnapshot> {
        Arc::clone(&self.core.fleet.load().verdicts)
    }
}

/// How [`ShardRouter::shutdown`] went.
pub struct FleetShutdownReport {
    /// The fleet core after the final exchange round.
    pub core: Arc<FleetCore>,
    /// How the router worker ended.
    pub router: WorkerOutcome,
    /// How each shard's recluster worker ended, by shard id.
    pub shards: Vec<WorkerOutcome>,
    /// How the exchange worker ended.
    pub exchange: WorkerOutcome,
    /// Fleet state at shutdown.
    pub state: HealthState,
}

impl FleetShutdownReport {
    /// Whether every worker exited cleanly without ever panicking.
    pub fn clean(&self) -> bool {
        let clean = WorkerOutcome::Clean { panics: 0 };
        self.router == clean && self.exchange == clean && self.shards.iter().all(|o| *o == clean)
    }
}

/// The threaded sharded service (see module docs).
pub struct ShardRouter {
    core: Arc<FleetCore>,
    gate: IngestGate,
    recluster_txs: Vec<Sender<()>>,
    exchange_tx: Sender<()>,
    router_worker: Option<JoinHandle<()>>,
    router_status: Arc<WorkerStatus>,
    shard_workers: Vec<Option<JoinHandle<()>>>,
    shard_statuses: Vec<Arc<WorkerStatus>>,
    exchange_worker: Option<JoinHandle<()>>,
    exchange_status: Arc<WorkerStatus>,
}

impl ShardRouter {
    /// Starts the fleet: one supervised router worker, one supervised
    /// recluster worker per shard, one supervised exchange worker.
    pub fn start(cfg: FleetConfig, partitioner: Partitioner, blacklist: Vec<u32>) -> Self {
        Self::start_on(Arc::new(FleetCore::new(cfg, partitioner, blacklist)))
    }

    /// Starts the fleet with a fault plan attached (feature
    /// `fault-injection`).
    #[cfg(feature = "fault-injection")]
    pub fn start_with_faults(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
        plan: Arc<FaultPlan>,
    ) -> Self {
        Self::start_on(Arc::new(
            FleetCore::new(cfg, partitioner, blacklist).with_faults(plan),
        ))
    }

    /// Resumes a fleet from its per-shard checkpoints (see
    /// [`FleetCore::restore`]).
    pub fn recover(
        cfg: FleetConfig,
        partitioner: Partitioner,
        blacklist: Vec<u32>,
    ) -> Result<Self, CheckpointError> {
        Ok(Self::start_on(Arc::new(FleetCore::restore(
            cfg,
            partitioner,
            blacklist,
        )?)))
    }

    fn start_on(core: Arc<FleetCore>) -> Self {
        let cfg = core.cfg.clone();
        let (gate, batch_rx) = ingest_pair(
            cfg.shard.queue_capacity,
            cfg.shard.shed_policy,
            cfg.shard.window_days,
            Arc::clone(&core.window_end),
            Arc::clone(&core.health),
            Arc::clone(&core.telemetry),
        );

        // One capacity-1 poke channel per shard recluster worker plus
        // one for the exchange worker; requests coalesce (counted) like
        // the single service's.
        let mut recluster_txs = Vec::with_capacity(core.shards.len());
        let mut shard_workers = Vec::with_capacity(core.shards.len());
        let mut shard_statuses = Vec::with_capacity(core.shards.len());
        for shard in &core.shards {
            let (tx, rx): (Sender<()>, Receiver<()>) = bounded(1);
            recluster_txs.push(tx);
            let name: &'static str =
                Box::leak(format!("shard{}-recluster", shard.id()).into_boxed_str());
            let policy = core.restart_policy();
            let shard = Arc::clone(shard);
            let (worker, status) = supervise(
                name,
                Arc::clone(shard.health()),
                Arc::clone(shard.telemetry()),
                policy,
                move || shard_recluster_loop(&shard, &rx, name),
            );
            shard_workers.push(Some(worker));
            shard_statuses.push(status);
        }

        let (exchange_tx, exchange_rx): (Sender<()>, Receiver<()>) = bounded(1);
        let (exchange_worker, exchange_status) = {
            let core = Arc::clone(&core);
            let policy = core.restart_policy();
            let health = Arc::clone(&core.health);
            let telemetry = Arc::clone(&core.telemetry);
            supervise("exchange", health, telemetry, policy, move || {
                exchange_loop(&core, &exchange_rx)
            })
        };

        let (router_worker, router_status) = {
            let core = Arc::clone(&core);
            let policy = core.restart_policy();
            let health = Arc::clone(&core.health);
            let telemetry = Arc::clone(&core.telemetry);
            let recluster_txs = recluster_txs.clone();
            let exchange_tx = exchange_tx.clone();
            supervise("router", health, telemetry, policy, move || {
                let batcher = Batcher::new(
                    batch_rx.clone(),
                    cfg.shard.max_batch,
                    cfg.shard.batch_budget,
                );
                router_loop(&core, &batcher, &recluster_txs, &exchange_tx)
            })
        };

        Self {
            core,
            gate,
            recluster_txs,
            exchange_tx,
            router_worker: Some(router_worker),
            router_status,
            shard_workers,
            shard_statuses,
            exchange_worker: Some(exchange_worker),
            exchange_status,
        }
    }

    /// A producer-side submission gate (cloneable).
    pub fn gate(&self) -> IngestGate {
        self.gate.clone()
    }

    /// Submits one transaction through the fleet's gate.
    pub fn submit(&self, tx: Transaction) -> Result<(), Transaction> {
        self.gate.submit(tx)
    }

    /// A fleet-wide query handle (cloneable).
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// The synchronous fleet core.
    pub fn core(&self) -> &Arc<FleetCore> {
        &self.core
    }

    /// The current fleet health document.
    pub fn health(&self) -> FleetHealthReport {
        self.core.health()
    }

    /// Asks the exchange worker for a reconciliation round now
    /// (coalesces if one is pending).
    pub fn force_exchange(&self) {
        request(&self.core, &self.exchange_tx);
    }

    /// Stops the fleet: closes the ingest queue, drains the router,
    /// joins every worker, runs one final exchange round so the last
    /// batches are scored fleet-wide, and writes final checkpoints when
    /// configured. Worker panics are reported, not re-thrown.
    pub fn shutdown(mut self) -> FleetShutdownReport {
        drop(self.gate);
        if let Some(h) = self.router_worker.take() {
            h.join().expect("supervisor threads do not panic");
        }
        drop(std::mem::take(&mut self.recluster_txs));
        for w in &mut self.shard_workers {
            if let Some(h) = w.take() {
                h.join().expect("supervisor threads do not panic");
            }
        }
        drop(self.exchange_tx);
        if let Some(h) = self.exchange_worker.take() {
            h.join().expect("supervisor threads do not panic");
        }
        self.core.exchange_now();
        if self.core.cfg.shard.checkpoint_path.is_some() {
            let _ = self.core.checkpoint_all();
        }
        FleetShutdownReport {
            state: self.core.health().state,
            router: self.router_status.outcome(),
            shards: self.shard_statuses.iter().map(|s| s.outcome()).collect(),
            exchange: self.exchange_status.outcome(),
            core: Arc::clone(&self.core),
        }
    }
}

fn request(core: &FleetCore, tx: &Sender<()>) {
    match tx.try_send(()) {
        Ok(()) | Err(TrySendError::Disconnected(())) => {}
        Err(TrySendError::Full(())) => {
            core.telemetry
                .reclusters_coalesced
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn router_loop(
    core: &FleetCore,
    batcher: &Batcher,
    recluster_txs: &[Sender<()>],
    exchange_tx: &Sender<()>,
) -> WorkerExit {
    loop {
        match batcher.next_batch() {
            Err(Closed) => return WorkerExit::Finished,
            Ok(batch) => {
                if batch.is_empty() {
                    continue; // idle tick
                }
                let applied = core.apply(&batch);
                core.health.record_progress("router");
                if applied.is_multiple_of(core.cfg.shard.recluster_every_batches) {
                    for (i, tx) in recluster_txs.iter().enumerate() {
                        if !core.shards[i].health().is_down() {
                            request(core, tx);
                        }
                    }
                }
                if applied.is_multiple_of(core.cfg.exchange_every_batches) {
                    request(core, exchange_tx);
                }
                if core.cfg.shard.checkpoint_path.is_some()
                    && applied.is_multiple_of(core.cfg.shard.checkpoint_every_batches)
                {
                    // Failures are counted per shard; the fleet keeps
                    // serving and previous images stay intact.
                    let _ = core.checkpoint_all();
                }
            }
        }
    }
}

fn shard_recluster_loop(shard: &ShardCore, rx: &Receiver<()>, name: &'static str) -> WorkerExit {
    while rx.recv().is_ok() {
        if shard.health().is_down() {
            return WorkerExit::Finished;
        }
        shard.recluster_now();
        shard.health().record_progress(name);
    }
    WorkerExit::Finished
}

fn exchange_loop(core: &FleetCore, rx: &Receiver<()>) -> WorkerExit {
    while rx.recv().is_ok() {
        if core.health.is_down() {
            return WorkerExit::Finished;
        }
        core.exchange_now();
    }
    WorkerExit::Finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use glp_fraud::{RegionalStream, RegionalTxConfig};

    fn stream() -> RegionalStream {
        RegionalStream::generate(&RegionalTxConfig {
            regions: 4,
            users_per_region: 250,
            items_per_region: 100,
            days: 10,
            tx_per_day: 1_000,
            cross_rings: 4,
            ring_size: 10,
            ring_tx_per_day: 30,
            blacklist_fraction: 0.3,
            ..Default::default()
        })
    }

    fn fleet_cfg(shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            exchange_every_batches: 8,
            ..FleetConfig::default()
        }
        .with_window_days(8)
    }

    fn partitioner(s: &RegionalStream, shards: usize) -> Partitioner {
        Partitioner::with_communities(shards, 7, s.community_map())
    }

    #[test]
    fn fleet_core_routes_reclusters_and_answers() {
        let s = stream();
        let cfg = fleet_cfg(2);
        let core = FleetCore::new(cfg, partitioner(&s, 2), s.blacklist.clone());
        for day in 0..s.config.days {
            let txs: Vec<Transaction> = s.window(day, day + 1).copied().collect();
            core.apply_transactions(&txs);
        }
        let outcome = core.exchange_now();
        assert!(outcome.report.spanning_components > 0);
        assert_eq!(outcome.shard_walls.len(), 2);
        let snap = core.fleet_snapshot();
        assert_eq!(snap.verdicts.window_end, s.config.days);
        assert!(snap.verdicts.num_flagged() > 0, "rings should be flagged");
        // Every flagged user answers Flagged through the routed path.
        for &(u, _, _) in &snap.verdicts.flagged {
            assert!(matches!(core.verdict(u), Verdict::Flagged { .. }));
        }
        let h = core.health();
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.shards.len(), 2);
        // The merged telemetry sees the routed batches and both shards'
        // reclusters.
        let t = core.fleet_telemetry();
        assert!(t.counter("batches") > 0);
        assert!(t.counter("reclusters") >= 3, "2 shards + exchange");
    }

    #[test]
    fn threaded_router_end_to_end() {
        let s = stream();
        let router = ShardRouter::start(fleet_cfg(2), partitioner(&s, 2), s.blacklist.clone());
        let handle = router.handle();
        for t in s.window(0, s.config.days) {
            router.submit(*t).expect("fleet accepts while running");
        }
        let report = router.shutdown();
        assert!(report.clean(), "no faults injected: clean outcomes");
        assert_eq!(report.state, HealthState::Healthy);
        let core = report.core;
        let snap = core.fleet_snapshot();
        assert_eq!(snap.verdicts.window_end, s.config.days);
        assert!(snap.verdicts.num_flagged() > 0);
        let flagged_user = snap.verdicts.flagged[0].0;
        assert!(matches!(
            handle.score(flagged_user),
            Verdict::Flagged { .. }
        ));
        let t = core.fleet_telemetry();
        assert_eq!(t.worker_panics, 0);
        assert!(t.counter("batches") > 0);
    }

    #[test]
    fn invalid_traffic_is_shed_by_the_router() {
        let s = stream();
        let core = FleetCore::new(fleet_cfg(2), partitioner(&s, 2), s.blacklist.clone());
        let day0: Vec<Transaction> = s.window(0, 1).copied().collect();
        core.apply_transactions(&day0);
        let nan = Transaction {
            buyer: 1,
            item: 2,
            day: 0,
            amount: f32::NAN,
        };
        core.apply_transactions(&[nan]);
        assert_eq!(core.telemetry().rejected_invalid.load(Ordering::Relaxed), 1);
        // Shards only ever saw validated traffic.
        for shard in core.shards() {
            assert_eq!(
                shard.telemetry().rejected_invalid.load(Ordering::Relaxed),
                0
            );
        }
    }
}
